"""Portfolio monitoring: composite events, contexts, and temporal rules.

A richer scenario in the domain the paper's examples live in — stock
trading. Demonstrates:

* the Snoop spec language driving the whole setup (pre-processor path),
* the SEQ and NOT operators,
* the same event detected in two parameter contexts at once,
* temporal events (P operator) against a simulated clock,
* rule priorities.

Run:  python examples/portfolio_monitoring.py
"""

from repro import Sentinel, SimulatedClock
from repro.snoop import build_spec


class Stock:
    """A plain class — the Snoop builder instruments it (post-processor)."""

    def __init__(self, symbol, price):
        self.symbol = symbol
        self.price = price

    def set_price(self, price):
        self.price = price

    def sell_stock(self, qty):
        return qty


SPEC = """
# Declared exactly like the paper's class-level interface.
class Stock : public REACTIVE {
    event begin(px) && end(px_done) void set_price(float price)
    event end(sold) int sell_stock(int qty)

    # a drop is a price change followed by a sale
    event drop_then_sell = px ; sold
    rule PanicSale(drop_then_sell, is_panic, report_panic, CHRONICLE, IMMEDIATE, 10)
}

# No sale between the end of one price update and the start of the
# next: a quiet market interval for the class.
event quiet = not(Stock.sold)[Stock.px_done, Stock.px]
rule QuietMarket(quiet, always_true, report_quiet, RECENT, IMMEDIATE, 1)
"""


def main():
    clock = SimulatedClock()
    system = Sentinel(name="portfolio", clock=clock)
    reports = []

    def is_panic(occ):
        return occ.params.value("qty") >= 100

    namespace = {
        "Stock": Stock,
        "is_panic": is_panic,
        "report_panic": lambda occ: reports.append(
            f"PANIC: {occ.params.value('qty')} shares dumped after a "
            f"price move to {occ.params.value('price')}"
        ),
        "always_true": lambda occ: True,
        "report_quiet": lambda occ: reports.append("quiet market interval"),
    }
    build_spec(SPEC, system.detector, namespace)

    # A second view of the SAME event expression in a different context:
    # the multi-context single-graph feature of the paper (§3.2.2).
    system.rule(
        "PanicAudit",
        system.event("Stock_drop_then_sell"),
        condition=lambda occ: True,
        action=lambda occ: reports.append(
            "audit: cumulative panic-window activity "
            f"({len(occ.params)} constituent events)"
        ),
        context="cumulative",
        priority=1,
    )

    # Heartbeat valuation every 10 virtual minutes while the market is
    # open: P(open, 10, close).
    system.explicit_event("market_open")
    system.explicit_event("market_close")
    ticker = system.detector.periodic(
        "market_open", 10.0, "market_close", name="valuation_tick"
    )
    system.rule(
        "Valuation", ticker, condition=lambda occ: True,
        action=lambda occ: reports.append(
            f"valuation snapshot at t={occ.params.value('time'):g}"
        ),
    )

    ibm = Stock("IBM", 100.0)
    with system.transaction():
        system.raise_event("market_open")

        ibm.set_price(95.0)  # px
        ibm.sell_stock(500)  # sold -> PanicSale + PanicAudit

        system.advance_time(25.0)  # two valuation ticks (t=10, t=20)

        ibm.set_price(94.0)
        ibm.set_price(93.5)  # px..px_done with no sale -> QuietMarket

        system.raise_event("market_close")

    print("reports, in rule-priority order within each event:")
    for line in reports:
        print("  -", line)

    expected_kinds = {"PANIC", "audit", "valuation", "quiet"}
    seen = {r.split()[0].rstrip(":") for r in reports}
    assert expected_kinds <= seen, (expected_kinds, seen)
    system.close()


if __name__ == "__main__":
    main()
