"""The rule debugger: traces, visualizations, and breakpoints.

Reproduces the Sentinel rule debugger's three views ("interaction among
rules, among events and rules, and among rules and database objects")
as text, plus breakpoint-driven stepping through a rule cascade.

Run:  python examples/rule_debugging.py
"""

from repro import Reactive, Sentinel, event
from repro.debugger import (
    BreakAction,
    BreakpointManager,
    TraceRecorder,
    render_event_graph,
    render_rule_interactions,
    render_timeline,
)


class Thermostat(Reactive):
    def __init__(self, room):
        self.room = room
        self.temperature = 20.0

    @event(end="reading")
    def report(self, temperature):
        self.temperature = temperature


class Hvac(Reactive):
    def __init__(self):
        self.cooling = False

    @event(end="cooling_started")
    def start_cooling(self):
        self.cooling = True


def main():
    system = Sentinel(name="building")
    thermostat_events = Thermostat.register_events(system.detector)
    hvac_events = Hvac.register_events(system.detector)
    hvac = Hvac()

    # Rule cascade: a hot reading starts cooling; cooling triggers an
    # audit entry — rule-triggers-rule, visible in the interaction graph.
    system.rule(
        "CoolDown", thermostat_events["reading"],
        condition=lambda occ: occ.params.value("temperature") > 28.0,
        action=lambda occ: hvac.start_cooling(),
        priority=10,
    )
    audit = []
    system.rule(
        "AuditCooling", hvac_events["cooling_started"],
        condition=lambda occ: True,
        action=lambda occ: audit.append("cooling event recorded"),
    )

    recorder = TraceRecorder(system.detector).attach()

    print("=== event graph ===")
    print(render_event_graph(system.graph))

    lobby = Thermostat("lobby")
    with system.transaction():
        lobby.report(22.0)  # condition false
        lobby.report(31.5)  # cascade: CoolDown -> AuditCooling

    print("=== execution timeline ===")
    print(render_timeline(recorder))
    print("=== rule interactions ===")
    print(render_rule_interactions(recorder))
    print(f"=== objects touched ===\n{recorder.objects_touched()}\n")
    assert ("CoolDown", "AuditCooling") in recorder.rule_edges()

    # Breakpoints: veto the next CoolDown without touching the rules.
    print("=== breakpoint: skipping the next CoolDown ===")
    manager = BreakpointManager(
        system.detector,
        handler=lambda ctx: (
            print(f"  breakpoint hit: {ctx.rule.name} at depth {ctx.depth}"),
            BreakAction.SKIP,
        )[1],
    ).attach()
    manager.break_on_rule("CoolDown", one_shot=True)
    hvac.cooling = False
    with system.transaction():
        lobby.report(35.0)  # would normally cool; breakpoint skips it
    print(f"  cooling after skipped rule: {hvac.cooling}")
    assert hvac.cooling is False

    manager.detach()
    recorder.detach()
    system.close()


if __name__ == "__main__":
    main()
