"""Many client processes, one shared active system.

The original Sentinel ran inside one Exodus client process; the
serving layer lifts that limit: ``repro serve`` (or
``Sentinel.serve()``) puts one shared detector behind a TCP wire
protocol, and any number of client processes define rules, raise
events, and receive detections through :class:`SentinelClient` — the
same :class:`SentinelAPI` surface a local ``Sentinel`` offers, down to
the exception types.

This example boots an in-process server with two tenants and shows:

* the unified API — the same pipeline function runs against a local
  system and against a remote client, returning identical detections;
* tenant isolation — both tenants use the same event and rule names
  without collision, and neither can touch the other's definitions;
* quotas — a rate-limited tenant gets a structured ``QuotaExceeded``
  while the other tenant keeps ingesting, undisturbed.

Run:  python examples/remote_clients.py
"""

from repro import Sentinel
from repro.errors import QuotaExceeded, UnknownEvent
from repro.serving import SentinelClient
from repro.serving.tenancy import Tenant, TenantQuota


def alarm_pipeline(api):
    """Written once against SentinelAPI; runs locally or remotely."""
    api.explicit_event("deposit")
    api.explicit_event("audit_flag")
    api.define("suspicious", "deposit >> audit_flag")
    api.watch("investigate", "suspicious")
    api.raise_event("deposit", account="ACC-1", amount=950_000)
    api.raise_event("audit_flag", by="compliance")
    return api.detections("investigate")


def main():
    # -- the same pipeline, local and remote ------------------------------
    local = Sentinel(name="local")
    local_hits = alarm_pipeline(local)

    shared = Sentinel(name="shared")
    server = shared.serve(tenants=[
        Tenant("bank_a", token="secret-a",
               quota=TenantQuota(events_per_sec=25, burst=25)),
        Tenant("bank_b", token="secret-b"),
    ])
    print(f"serving shared system on {server.address}")

    bank_a = SentinelClient(server.address, tenant="bank_a",
                            token="secret-a")
    remote_hits = alarm_pipeline(bank_a)

    assert len(local_hits) == len(remote_hits) == 1
    assert (remote_hits[0]["constituents"][0]["args"]
            == local_hits[0]["constituents"][0]["args"])
    print("unified API: local and remote pipelines detected the same "
          f"sequence ({remote_hits[0]['constituents'][0]['args']})")

    # -- tenant isolation --------------------------------------------------
    bank_b = SentinelClient(server.address, tenant="bank_b",
                            token="secret-b")
    bank_b_hits = alarm_pipeline(bank_b)  # same names, zero collision
    assert len(bank_b_hits) == 1
    try:
        bank_b.raise_event("only_bank_a_would_know")
    except UnknownEvent:
        pass
    # bank_a's one detection is still its own:
    assert len(bank_a.detections("investigate")) == 1
    print("isolation: both tenants defined 'suspicious'/'investigate' "
          "without collision")

    # -- quotas ------------------------------------------------------------
    throttled_after = None
    for i in range(200):
        try:
            bank_a.raise_event("deposit", account="ACC-2", amount=1)
        except QuotaExceeded as error:
            throttled_after = i
            print(f"quota: bank_a throttled after {i} rapid events "
                  f"({error})")
            break
    assert throttled_after is not None
    for i in range(50):  # bank_b is untouched by bank_a's throttling
        bank_b.raise_event("deposit", account="B-1", amount=i)
    assert bank_b.stats()["quota_rejections"] == 0
    print("quota: bank_b ingested 50 events while bank_a was throttled")

    per_tenant = {t.name: t.snapshot()["events"]
                  for t in server.tenants.all()}
    print(f"per-tenant event counters: {per_tenant}")

    bank_a.close()
    bank_b.close()
    server.close()
    shared.close()
    local.close()
    print("done")


if __name__ == "__main__":
    main()
