"""Batch (after-the-fact) detection over a stored event log.

The detector must support "detection of events as they happen (online)
when it is coupled to an application or over a stored event-log (in
batch mode)" (paper §2.1). This example records a day of trading
activity online, then — after the fact — replays the log through a
*different* rule set to hunt for a fraud pattern the online system
never looked for, in a different parameter context.

Run:  python examples/audit_batch_detection.py
"""

import tempfile
from pathlib import Path

from repro import Reactive, Sentinel, event
from repro.eventlog import EventLog, attach_logger, replay


class TradingDesk(Reactive):
    def __init__(self, trader):
        self.trader = trader

    @event(end="bought")
    def buy(self, symbol, qty):
        return qty

    @event(end="sold")
    def sell(self, symbol, qty):
        return qty

    @event(end="tipped")
    def receive_research(self, symbol):
        return symbol


def trading_day(log_path):
    """The online system: records everything, watches only big trades."""
    system = Sentinel(name="online")
    events = TradingDesk.register_events(system.detector)
    attach_logger(system.detector, EventLog(log_path))

    alerts = []
    system.rule(
        "BigTrade",
        (events["bought"] | events["sold"]),
        condition=lambda occ: occ.params.value("qty") > 10_000,
        action=lambda occ: alerts.append(occ.params.value("qty")),
    )

    desk = TradingDesk("mallory")
    with system.transaction():
        desk.receive_research("ACME")  # research tip arrives...
        desk.buy("ACME", 500)  # ...followed by a quiet buy
        desk.buy("OTHER", 200)
        desk.sell("ACME", 500)
        desk.buy("ACME", 800)  # and another
    print(f"online alerts (big trades only): {alerts}")
    system.close()
    return alerts


def audit(log_path):
    """The auditor: replays the log against a front-running detector."""
    system = Sentinel(name="audit")
    TradingDesk.register_events(system.detector)

    suspicious = []
    # Front-running pattern: research tip followed by a buy of the same
    # symbol — in RECENT context the tip is not consumed by detection,
    # so one tip exposes every later buy.
    tip_then_buy = system.detector.define("front_run", (system.detector.event('TradingDesk_tipped') >> system.detector.event('TradingDesk_bought')))
    system.rule(
        "FrontRunning",
        tip_then_buy,
        condition=lambda occ: occ.params.value("symbol", "TradingDesk_tipped")
        == occ.params.value("symbol", "TradingDesk_bought"),
        action=lambda occ: suspicious.append(
            (occ.params.value("symbol", "TradingDesk_bought"),
             occ.params.value("qty"))
        ),
        context="recent",
        trigger_mode="previous",  # historical occurrences are the point
    )

    report = replay(EventLog(log_path), system.detector, mode="execute")
    print(f"audit replayed {report.events_replayed} logged events")
    print(f"suspicious tip->buy pairs: {suspicious}")
    system.close()
    return suspicious


def main():
    log_path = Path(tempfile.mkdtemp()) / "trading.jsonl"
    alerts = trading_day(log_path)
    assert alerts == []  # nothing crossed the online threshold
    suspicious = audit(log_path)
    # The tip pairs with both later ACME buys (recent context keeps the
    # initiator) but not with the unrelated OTHER buy (the condition
    # filters by symbol).
    assert ("ACME", 500) in suspicious
    assert ("ACME", 800) in suspicious
    assert all(symbol == "ACME" for symbol, __ in suspicious)


if __name__ == "__main__":
    main()
