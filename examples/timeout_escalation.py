"""Timeouts and escalation: NOT + PLUS, the classic absence pattern.

Active databases answer "what if something *doesn't* happen?" — the
hardest pattern for passive polling systems. Here a support-desk app
escalates any ticket not acknowledged within its SLA window:

    timeout = not(acknowledged)[opened, plus(opened, SLA)]

Run:  python examples/timeout_escalation.py
"""

from repro import Reactive, Sentinel, SimulatedClock, event
from repro.core import conditions as when

SLA = 30.0  # virtual minutes


class Ticket(Reactive):
    def __init__(self, number):
        self.number = number
        self.state = "new"

    @event(end="opened")
    def open(self, severity):
        self.state = "open"

    @event(end="acknowledged")
    def acknowledge(self, agent):
        self.state = "acknowledged"


def main():
    system = Sentinel(name="helpdesk", clock=SimulatedClock())
    events = Ticket.register_events(system.detector)

    # The absence window: opened, then SLA minutes with no ack.
    deadline = system.detector.plus(events["opened"], SLA)
    timeout = system.detector.not_(
        events["opened"], events["acknowledged"], deadline, name="sla_miss"
    )

    escalations = []
    system.rule(
        "Escalate", timeout,
        condition=when.param_at_least("severity", 2),  # only sev-2 and up escalate
        action=lambda occ: escalations.append(
            f"ticket escalated (severity "
            f"{occ.params.value('severity')}) after {SLA:g}m silence"
        ),
        context="chronicle",
    )

    print("ticket 101 (severity 3): never acknowledged")
    t101 = Ticket(101)
    t101.open(severity=3)
    system.advance_time(SLA + 1)
    print(f"  escalations: {escalations}")
    assert len(escalations) == 1

    print("ticket 102 (severity 3): acknowledged in time")
    escalations.clear()
    t102 = Ticket(102)
    t102.open(severity=3)
    system.advance_time(10.0)
    t102.acknowledge(agent="amy")
    system.advance_time(SLA)
    print(f"  escalations: {escalations}")
    assert escalations == []

    print("ticket 103 (severity 1): ignored but below the policy bar")
    t103 = Ticket(103)
    t103.open(severity=1)
    system.advance_time(SLA + 1)
    print(f"  escalations: {escalations}")
    assert escalations == []

    system.close()


if __name__ == "__main__":
    main()
