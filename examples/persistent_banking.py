"""Persistent objects, rules over the OODB, abort semantics, recovery.

Shows the full stack of Figure 1: reactive objects that are also
*persistent* (stored through the Open OODB substrate over the
Exodus-style storage manager), an integrity rule that aborts the
transaction, and durability across a simulated crash.

Run:  python examples/persistent_banking.py
"""

import tempfile
from pathlib import Path

from repro import Persistent, Reactive, Sentinel, event
from repro.errors import RuleExecutionError


class Account(Reactive, Persistent):
    """Reactive (events) and persistent (stored with an OID)."""

    def __init__(self, owner, balance=0.0):
        self.owner = owner
        self.balance = balance

    @event(end="deposited")
    def deposit(self, amount):
        self.balance += amount

    @event(begin="withdrawing", end="withdrawn")
    def withdraw(self, amount):
        self.balance -= amount


class OverdraftForbidden(Exception):
    pass


def open_bank(directory):
    system = Sentinel(directory=directory, name="bank")
    system.register_class(Account)
    events = Account.register_events(system.detector)

    def no_overdraft(occurrence):
        # Condition: would this withdrawal overdraw? Runs with event
        # signaling suppressed, so probing the object fires no rules.
        return True

    def block(occurrence):
        amount = occurrence.params.value("amount")
        raise OverdraftForbidden(f"withdrawal of {amount} would overdraw")

    # Immediate rule on the BEGIN of withdraw: veto before mutation.
    system.rule(
        "NoOverdraft",
        events["withdrawing"],
        condition=lambda occ: occ.params.value("amount") > 1000,  # policy limit
        action=block,
        priority=100,
    )

    # Deferred audit: one summary row per transaction touching accounts.
    audit_rows = []
    system.rule(
        "Audit",
        (events["deposited"] | events["withdrawn"]),
        condition=lambda occ: True,
        action=lambda occ: audit_rows.append(
            f"txn touched {len(occ.params.instances())} account(s), "
            f"{sum(1 for p in occ.params if p.class_name == 'Account')} "
            f"movement(s)"
        ),
        context="cumulative",
        coupling="deferred",
    )
    return system, audit_rows


def main():
    directory = Path(tempfile.mkdtemp()) / "bankdb"

    system, audit_rows = open_bank(directory)
    print("transaction 1: open and fund two accounts")
    with system.transaction() as txn:
        alice = Account("alice")
        bob = Account("bob")
        txn.persist(alice, name="alice")
        txn.persist(bob, name="bob")
        alice.deposit(500.0)
        bob.deposit(300.0)
        txn.mark_dirty(alice)
        txn.mark_dirty(bob)
    print(f"  audit: {audit_rows[-1]}")

    print("transaction 2: a forbidden withdrawal aborts everything")
    try:
        with system.transaction() as txn:
            alice = txn.lookup("alice")
            alice.deposit(1.0)  # would be lost by the abort
            alice.withdraw(5000.0)  # NoOverdraft fires at method BEGIN
            txn.mark_dirty(alice)
    except RuleExecutionError as error:
        print(f"  aborted by rule: {error.cause}")

    print("transaction 3: balances are unscathed")
    with system.transaction() as txn:
        alice = txn.lookup("alice")
        print(f"  alice balance: {alice.balance}")
        assert alice.balance == 500.0

    print("simulating a crash (buffer pool and WAL tail lost)...")
    system.db.storage.simulate_crash()

    system2, __ = open_bank(directory)
    print("recovered; committed state is intact:")
    with system2.transaction() as txn:
        alice = txn.lookup("alice")
        bob = txn.lookup("bob")
        print(f"  alice={alice.balance}, bob={bob.balance}")
        assert alice.balance == 500.0
        assert bob.balance == 300.0
    system2.close()


if __name__ == "__main__":
    main()
