"""Live monitoring: the introspection endpoint over a running system.

The full observability loop in one script:

* start the monitor (`Sentinel.monitor`) on an OS-assigned port,
* run the stock-portfolio workload while scraping `/metrics`,
* read `/health`, `/spans`, `/graph`, and `/profile`,
* export the span stream as JSONL and re-render it offline,
* let the FlightRecorder dump the ring when a rule fails.

Run:  python examples/live_monitoring.py
"""

import json
import tempfile
import urllib.request
from pathlib import Path

from repro import FlightRecorder, Reactive, Sentinel, event
from repro.monitor import JsonlSpanExporter, load_events
from repro.telemetry import TraceLogProcessor


class Stock(Reactive):
    def __init__(self, symbol, price):
        self.symbol = symbol
        self.price = price

    @event(end="price_set")
    def set_price(self, price):
        self.price = price


def get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.read().decode()


def main():
    workdir = Path(tempfile.mkdtemp(prefix="sentinel-monitor-"))
    # abort_rule: a failing rule aborts its own subtransaction instead
    # of tearing down the enclosing transaction (we fail one on purpose).
    system = Sentinel(name="portfolio", error_policy="abort_rule")
    events = system.register_class(Stock)

    spikes = []
    system.rule(
        "SpikeAlert", events["price_set"],
        condition=lambda occ: occ.params.value("price") > 100,
        action=lambda occ: spikes.append(occ.params.value("price")),
    )

    def fragile_action(occ):
        raise ValueError("simulated downstream outage")

    system.rule("FragileSync", events["price_set"],
                condition=lambda occ: occ.params.value("price") < 0,
                action=fragile_action)

    # One call wires the introspection layer: span ring, profiler,
    # HTTP server. The recorder and exporter attach like any processor.
    server = system.monitor(port=0, slow_ms=25.0)
    recorder = system.telemetry.attach(
        FlightRecorder(workdir / "flight", hub=system.telemetry)
    )
    exporter = system.telemetry.attach(
        JsonlSpanExporter(workdir / "spans.jsonl")
    )
    print(f"monitor serving on {server.url}")

    stock = Stock("IBM", 95.0)
    for price in (98.0, 104.0, 101.5, 99.0, 120.0):
        with system.transaction():
            stock.set_price(price)
    assert spikes == [104.0, 101.5, 120.0]

    # --- /metrics: Prometheus text exposition --------------------------
    metrics = get(server.url + "/metrics")
    assert "sentinel_rules_executions_total" in metrics
    assert ('sentinel_rule_outcomes_total{rule="SpikeAlert",'
            'outcome="completed"} 3') in metrics
    assert 'sentinel_graph_detections_by_context_total' in metrics
    print("scraped /metrics:", len(metrics.splitlines()), "lines")

    # --- /health: liveness with storage + backlog detail ---------------
    health = json.loads(get(server.url + "/health"))
    assert health["healthy"] is True and health["status"] == "ok"
    print("health:", health["status"])

    # --- /spans: the same tree `repro trace` renders -------------------
    spans = json.loads(get(server.url + "/spans"))
    assert spans["buffered"] > 0
    assert "SpikeAlert" in spans["rendered"]
    print("spans buffered:", spans["buffered"], "of", spans["capacity"])

    # --- /graph: per-node occurrence counts per context ----------------
    graph = json.loads(get(server.url + "/graph"))
    nodes = {node["name"]: node for node in graph["nodes"]}
    assert nodes["Stock_price_set"]["detections"]["recent"] == 5
    assert "SpikeAlert" in nodes["Stock_price_set"]["rule_subscribers"]
    print("graph nodes:", len(graph["nodes"]))

    # --- /profile: per-rule wall time, split by phase ------------------
    profile = json.loads(get(server.url + "/profile"))
    by_rule = {entry["rule"]: entry for entry in profile["rules"]}
    assert set(by_rule["SpikeAlert"]["phases"]) == {
        "condition", "action", "commit"
    }
    print("profiled rules:", sorted(by_rule))

    # --- flight recorder: a failing rule dumps the span ring -----------
    with system.transaction():
        stock.set_price(-1.0)  # FragileSync's condition holds -> raise
    assert recorder.dumps, "rule failure should have dumped the ring"
    dumped = load_events(recorder.dumps[0])
    print("flight dump:", recorder.dumps[0].name, f"({len(dumped)} events)")

    # --- offline replay of the exported span stream --------------------
    exporter.close()
    offline = load_events(workdir / "spans.jsonl")
    rendered = TraceLogProcessor().render(offline)
    assert "SpikeAlert" in rendered
    print("offline replay:", len(offline), "spans re-rendered")

    system.close()
    assert not server.running
    print("closed cleanly; monitor stopped")


if __name__ == "__main__":
    main()
