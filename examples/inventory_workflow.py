"""Cooperative workflow across applications: the global event detector.

The paper motivates inter-application (global) events with "cooperative
transactions and workflow applications". Here an *orders* application
and a *warehouse* application run as separate Sentinel instances (each
an Exodus client with its own local detector, Fig. 2); a global
composite event — an order placed in one application AND a stock-out
recorded in the other — triggers a detached procurement rule back in
the warehouse.

Run:  python examples/inventory_workflow.py
"""

from repro import Reactive, Sentinel, event, set_current_detector
from repro.globaldet import GlobalEventDetector


class OrderBook(Reactive):
    def __init__(self):
        self.orders = []

    @event(end="order_placed")
    def place_order(self, sku, qty):
        self.orders.append((sku, qty))


class Warehouse(Reactive):
    def __init__(self):
        self.stock = {}

    @event(end="stock_out")
    def record_stock_out(self, sku):
        self.stock[sku] = 0

    @event(end="restocked")
    def restock(self, sku, qty):
        self.stock[sku] = self.stock.get(sku, 0) + qty


def main():
    ged = GlobalEventDetector()
    orders_app = Sentinel(name="orders", activate=False)
    warehouse_app = Sentinel(name="warehouse", activate=False)

    # Local event interfaces.
    set_current_detector(orders_app.detector)
    order_events = OrderBook.register_events(orders_app.detector)
    warehouse_events = Warehouse.register_events(warehouse_app.detector)

    # Register both applications with the global detector and export
    # the events that participate in the inter-application rule.
    orders_ep = ged.register(orders_app)
    warehouse_ep = ged.register(warehouse_app)
    g_order = orders_ep.export_event("OrderBook_order_placed")
    g_stockout = warehouse_ep.export_event("Warehouse_stock_out")

    # Global composite: an order and a stock-out (any order of arrival).
    shortage = ged.define("shortage", (ged.event(g_order) & ged.event(g_stockout)))

    # Deliver detections into the warehouse app as a local explicit
    # event, and react there with a DETACHED rule (its own top-level
    # transaction, independent of whoever triggered it).
    warehouse_ep.subscribe_global(shortage, "procurement_needed")

    procurement_log = []

    def procure(occurrence):
        sku = occurrence.params.value("sku")
        warehouse.restock(sku, 100)
        procurement_log.append(sku)
        print(f"    [warehouse] detached procurement: +100 units of {sku}")

    set_current_detector(warehouse_app.detector)
    warehouse_app.rule(
        "Procure", "procurement_needed", condition=lambda occ: True, action=procure,
        coupling="detached",
    )

    # --- the cooperating applications at work -------------------------------
    book = OrderBook()
    warehouse = Warehouse()

    print("orders app: customer orders 5 of SKU-7")
    set_current_detector(orders_app.detector)
    with orders_app.transaction():
        book.place_order("SKU-7", 5)

    print("warehouse app: picker reports SKU-7 shelf empty")
    set_current_detector(warehouse_app.detector)
    with warehouse_app.transaction():
        warehouse.record_stock_out("SKU-7")

    print("global detector: pumping inter-application events")
    ged.run_to_fixpoint()
    warehouse_app.wait_detached()

    print(f"procurement log: {procurement_log}")
    print(f"warehouse stock after workflow: {warehouse.stock}")
    assert procurement_log == ["SKU-7"]
    assert warehouse.stock["SKU-7"] == 100

    orders_app.close()
    warehouse_app.close()
    ged.shutdown()


if __name__ == "__main__":
    main()
