"""Quickstart: the paper's STOCK example, end to end.

Reproduces §3.1-3.2 of the ICDE'95 paper: the STOCK class declares
primitive events on its methods, a composite event ``e4 = e1 ^ e2`` is
defined, and rule R1 is attached in the CUMULATIVE context with
DEFERRED coupling and priority 10 — so it runs once, at commit,
seeing every constituent occurrence of the transaction.

Run:  python examples/quickstart.py
"""

from repro import Reactive, Sentinel, event


class Stock(Reactive):
    """A reactive class: method events declared exactly as in the paper.

    ``event end(e1) int sell_stock(int qty)``
    ``event begin(e2) && end(e3) void set_price(float price)``
    """

    def __init__(self, symbol, price):
        self.symbol = symbol
        self.price = price

    @event(end="e1")
    def sell_stock(self, qty):
        print(f"    [app] sold {qty} shares of {self.symbol}")
        return qty

    @event(begin="e2", end="e3")
    def set_price(self, price):
        print(f"    [app] {self.symbol} price {self.price} -> {price}")
        self.price = price


def main():
    system = Sentinel(name="quickstart")
    events = system.register_class(Stock)  # Stock_e1, Stock_e2, Stock_e3

    # event e4 = e1 ^ e2  (both a sale and a price change, any order)
    e4 = system.detector.define("Stock_e4", (events["e1"] & events["e2"]))

    def cond1(occurrence):
        # Conditions are side-effect free; they see the parameter list.
        total_qty = sum(occurrence.params.values("qty"))
        print(f"    [R1 condition] cumulative quantity sold: {total_qty}")
        return total_qty > 0

    def action1(occurrence):
        symbols = occurrence.params.instances()
        prices = occurrence.params.values("price")
        print(f"    [R1 action] fired with prices={prices}, objects={symbols}")

    # rule R1(e4, cond1, action1, CUMULATIVE, DEFERRED, 10, NOW)
    system.rule("R1", e4, condition=cond1, action=action1,
                context="cumulative", coupling="deferred",
                priority=10, trigger_mode="now")

    print("transaction 1: trade IBM and DEC")
    ibm = Stock("IBM", 100.0)
    dec = Stock("DEC", 50.0)
    with system.transaction():
        ibm.sell_stock(300)
        ibm.set_price(101.5)
        dec.sell_stock(120)
        dec.set_price(49.0)
        print("    (R1 is deferred: nothing fired yet)")
    print("  -> commit ran R1 exactly once with the cumulative parameters\n")

    print("transaction 2: price changes only (no sale)")
    with system.transaction():
        ibm.set_price(102.0)
    print("  -> R1 did not fire: its event needs e1 ^ e2\n")

    print(f"rule R1 statistics: triggered={system.rules.get('R1').triggered_count}, "
          f"executed={system.rules.get('R1').executed_count}")
    system.close()


if __name__ == "__main__":
    main()
