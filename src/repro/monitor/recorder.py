"""Flight recorder: a bounded ring of recent spans, dumped on failure.

Production incidents are diagnosed after the fact; the
:class:`FlightRecorder` keeps the last ``capacity`` trace events in
memory (with a sampling knob for very hot systems) and writes them out
as JSONL the moment something goes wrong:

* a rule subtransaction fails (``RuleExecution`` with outcome
  ``failed`` or ``depth_exceeded``, or a ``SubtransactionBoundary``
  abort), or
* a telemetry processor raises (watched via the hub's ``dropped``
  counter, since a broken processor never sees its own exception).

Dumps are rate-limited by ``min_interval_s`` of the triggering event's
clock so a rule failing in a tight loop produces one snapshot per
window, not one per failure. Trigger events are always recorded,
sampling notwithstanding — the dump must contain the event that caused
it.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from pathlib import Path
from typing import Optional

from repro.monitor.exporter import event_to_dict
from repro.telemetry.events import (
    RuleExecution,
    SubtransactionBoundary,
    TraceEvent,
)
from repro.telemetry.hub import TelemetryHub
from repro.telemetry.processors import TelemetryProcessor


class FlightRecorder(TelemetryProcessor):
    """Bounded span ring with automatic JSONL dumps on failure."""

    def __init__(
        self,
        directory: str | os.PathLike,
        capacity: int = 2048,
        sample: int = 1,
        hub: Optional[TelemetryHub] = None,
        armed: bool = True,
        min_interval_s: float = 1.0,
    ):
        if sample < 1:
            raise ValueError("sample must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sample = sample
        #: disarm to keep recording without automatic dumps
        self.armed = armed
        self.min_interval_s = min_interval_s
        self.dumps: list[Path] = []
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._hub = hub
        self._dropped_seen = hub.dropped if hub is not None else 0
        self._seen = 0
        self._serial = 0
        self._last_dump_at: Optional[float] = None

    # -- intake ------------------------------------------------------------

    def handle(self, event: TraceEvent) -> None:
        trigger = self._trigger_reason(event)
        with self._lock:
            self._seen += 1
            if trigger is not None or self._seen % self.sample == 0:
                self._ring.append(event)
        if trigger is not None and self.armed:
            # Rate-limit on the event's *end* time: a span's ``at`` is
            # its entry timestamp, so a failed rule span closing right
            # after its abort-boundary point would otherwise look older
            # than the dump that point just caused and be swallowed.
            self._maybe_dump(trigger, event.at + event.duration_ms / 1000.0)

    def _trigger_reason(self, event: TraceEvent) -> Optional[str]:
        if isinstance(event, RuleExecution) and event.outcome not in (
            "completed", "rejected"
        ):
            return f"rule:{event.rule_name}:{event.outcome}"
        if isinstance(event, SubtransactionBoundary) and event.kind == "abort":
            return f"subtxn_abort:{event.label}"
        if self._hub is not None and self._hub.dropped > self._dropped_seen:
            self._dropped_seen = self._hub.dropped
            return "processor_error"
        return None

    # -- dumping -----------------------------------------------------------

    def _maybe_dump(self, reason: str, at: float) -> None:
        with self._lock:
            if (
                self._last_dump_at is not None
                and at - self._last_dump_at < self.min_interval_s
            ):
                return
            self._last_dump_at = at
        self.dump(reason)

    def events(self) -> list[TraceEvent]:
        with self._lock:
            return list(self._ring)

    def dump(self, reason: str = "manual",
             path: Optional[str | os.PathLike] = None) -> Path:
        """Write the ring to JSONL; returns the file written.

        The first line is a metadata record (not a trace event — the
        loader skips it); the rest are events, oldest first.
        """
        with self._lock:
            events = list(self._ring)
            self._serial += 1
            serial = self._serial
        target = Path(path) if path is not None else (
            self.directory / f"flight-{serial:04d}.jsonl"
        )
        with open(target, "w", encoding="utf-8") as stream:
            stream.write(json.dumps({
                "type": "FlightRecorderDump",
                "reason": reason,
                "events": len(events),
                "sample": self.sample,
            }, sort_keys=True) + "\n")
            for event in events:
                stream.write(
                    json.dumps(event_to_dict(event), sort_keys=True) + "\n"
                )
        self.dumps.append(target)
        return target
