"""JSONL span export and reload.

Every trace event serializes to one JSON line (``type`` plus the
dataclass fields — all simple types by construction), so an exported
stream is greppable, appendable, and cheap to ship. The loader
rebuilds real :class:`TraceEvent` objects, which is what lets
``repro trace --spans`` re-render a recorded run offline with the very
same tree renderer the live system uses.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import IO, Iterable, Iterator, Optional

from repro.telemetry.events import ALL_EVENT_TYPES, TraceEvent
from repro.telemetry.processors import TelemetryProcessor

_TYPES: dict[str, type[TraceEvent]] = {
    cls.__name__: cls for cls in ALL_EVENT_TYPES
}


def event_to_dict(event: TraceEvent) -> dict:
    """One event as a JSON-safe dict, its class name under ``type``."""
    data = dataclasses.asdict(event)
    data["type"] = type(event).__name__
    return data


def event_from_dict(data: dict) -> Optional[TraceEvent]:
    """Rebuild an event; None for unknown types (forward compatibility)."""
    cls = _TYPES.get(data.get("type", ""))
    if cls is None:
        return None
    fields = {f.name for f in dataclasses.fields(cls)}
    return cls(**{k: v for k, v in data.items() if k in fields})


def dump_events(events: Iterable[TraceEvent], stream: IO[str]) -> int:
    """Write events as JSONL; returns how many lines were written."""
    count = 0
    for event in events:
        stream.write(json.dumps(event_to_dict(event), sort_keys=True))
        stream.write("\n")
        count += 1
    return count


def load_events(path: str | os.PathLike) -> list[TraceEvent]:
    """Read an exported JSONL span file back into trace events.

    Blank lines and records of unknown type (e.g. a metadata header
    written by the flight recorder) are skipped.
    """
    events: list[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            event = event_from_dict(json.loads(line))
            if event is not None:
                events.append(event)
    return events


def iter_events(path: str | os.PathLike) -> Iterator[TraceEvent]:
    """Streaming variant of :func:`load_events`."""
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            event = event_from_dict(json.loads(line))
            if event is not None:
                yield event


class JsonlSpanExporter(TelemetryProcessor):
    """Streams every trace event to a JSONL file as it is emitted.

    ``sample`` keeps every Nth event (1 = all); span trees stay
    renderable under sampling because orphans render as roots. The
    file is line-buffered so a crashed process leaves whole records.
    """

    def __init__(self, path: str | os.PathLike, sample: int = 1):
        if sample < 1:
            raise ValueError("sample must be >= 1")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.sample = sample
        self.exported = 0
        self._seen = 0
        self._stream: Optional[IO[str]] = open(
            self.path, "a", encoding="utf-8", buffering=1
        )

    def handle(self, event: TraceEvent) -> None:
        if self._stream is None:
            return
        self._seen += 1
        if self._seen % self.sample:
            return
        self._stream.write(
            json.dumps(event_to_dict(event), sort_keys=True) + "\n"
        )
        self.exported += 1

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None
