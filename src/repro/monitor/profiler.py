"""Per-rule and per-node wall-time attribution with slow-rule detection.

The :class:`RuleProfiler` is a telemetry processor that answers the
operational questions the raw span stream only answers implicitly:

* *where does rule time go* — each ``RuleExecution`` span carries the
  phase breakdown the scheduler measured (``condition_ms``,
  ``commit_ms``; the remainder is action time), and the profiler
  accumulates per-rule histograms for each phase;
* *which rules are slow* — executions beyond ``slow_ms`` are kept in a
  bounded ring of :class:`SlowRuleRecord`\\ s and counted, with an
  optional callback for alerting;
* *where does event time go* — per-graph-node propagation latency
  (``GraphPropagation``) and per-context occurrence counts
  (``Detection``).

The profiler renders itself as labelled Prometheus families for the
monitor's ``/metrics``, as a dict for ``/profile``-style JSON use, and
as text for the CLI.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.telemetry.events import (
    Detection,
    GraphPropagation,
    RuleExecution,
    TraceEvent,
)
from repro.telemetry.processors import Histogram, TelemetryProcessor

#: phases a rule execution is split into
PHASES = ("condition", "action", "commit")


@dataclass
class SlowRuleRecord:
    """One execution that exceeded the slow threshold."""

    rule_name: str
    at: float
    duration_ms: float
    condition_ms: float
    action_ms: float
    commit_ms: float
    outcome: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_name,
            "at": self.at,
            "duration_ms": round(self.duration_ms, 4),
            "condition_ms": round(self.condition_ms, 4),
            "action_ms": round(self.action_ms, 4),
            "commit_ms": round(self.commit_ms, 4),
            "outcome": self.outcome,
        }


@dataclass
class RuleProfile:
    """Accumulated wall time for one rule, split by phase."""

    name: str
    executions: int = 0
    rejections: int = 0
    failures: int = 0
    slow: int = 0
    total: Histogram = field(default_factory=lambda: Histogram("total"))
    condition: Histogram = field(default_factory=lambda: Histogram("condition"))
    action: Histogram = field(default_factory=lambda: Histogram("action"))
    commit: Histogram = field(default_factory=lambda: Histogram("commit"))

    @property
    def total_ms(self) -> float:
        return self.total.total

    def phase(self, name: str) -> Histogram:
        return {"condition": self.condition, "action": self.action,
                "commit": self.commit}[name]

    def to_dict(self) -> dict:
        return {
            "rule": self.name,
            "executions": self.executions,
            "rejections": self.rejections,
            "failures": self.failures,
            "slow": self.slow,
            "total_ms": round(self.total.total, 4),
            "mean_ms": round(self.total.mean, 4),
            "max_ms": round(self.total.max, 4),
            "phases": {
                name: {
                    "total_ms": round(self.phase(name).total, 4),
                    "mean_ms": round(self.phase(name).mean, 4),
                }
                for name in PHASES
            },
        }


@dataclass
class NodeProfile:
    """Accumulated propagation time and occurrences for one graph node."""

    name: str
    operator: str = "EVENT"
    detections: dict[str, int] = field(default_factory=dict)
    propagation: Histogram = field(
        default_factory=lambda: Histogram("propagation")
    )

    def to_dict(self) -> dict:
        return {
            "event": self.name,
            "operator": self.operator,
            "detections": dict(sorted(self.detections.items())),
            "propagations": self.propagation.count,
            "propagation_ms": round(self.propagation.total, 4),
            "mean_ms": round(self.propagation.mean, 4),
        }


class RuleProfiler(TelemetryProcessor):
    """Attributes wall time to rules (by phase) and event-graph nodes.

    ``slow_ms`` sets the slow-rule threshold (None disables the
    detector); ``on_slow`` is called with each :class:`SlowRuleRecord`
    — it runs inside telemetry dispatch, so it must be cheap and must
    not signal events. The last ``max_slow`` slow records are kept.
    """

    def __init__(self, slow_ms: Optional[float] = None,
                 on_slow: Optional[Callable[[SlowRuleRecord], None]] = None,
                 max_slow: int = 256):
        self.slow_ms = slow_ms
        self.on_slow = on_slow
        self.rules: dict[str, RuleProfile] = {}
        self.nodes: dict[str, NodeProfile] = {}
        self.slow_records: deque[SlowRuleRecord] = deque(maxlen=max_slow)

    # -- event intake ------------------------------------------------------

    def handle(self, event: TraceEvent) -> None:
        if isinstance(event, RuleExecution):
            self._on_rule(event)
        elif isinstance(event, Detection):
            node = self._node(event.event_name, event.operator)
            node.detections[event.context] = (
                node.detections.get(event.context, 0) + 1
            )
        elif isinstance(event, GraphPropagation):
            node = self._node(event.event_name, event.operator)
            node.propagation.observe(event.duration_ms)

    def _node(self, name: str, operator: str) -> NodeProfile:
        node = self.nodes.get(name)
        if node is None:
            node = self.nodes[name] = NodeProfile(name, operator)
        return node

    def _on_rule(self, event: RuleExecution) -> None:
        profile = self.rules.get(event.rule_name)
        if profile is None:
            profile = self.rules[event.rule_name] = RuleProfile(
                event.rule_name
            )
        if event.outcome == "rejected":
            profile.rejections += 1
        elif event.outcome == "completed":
            profile.executions += 1
        else:
            profile.failures += 1
        action_ms = max(
            0.0, event.duration_ms - event.condition_ms - event.commit_ms
        )
        profile.total.observe(event.duration_ms)
        profile.condition.observe(event.condition_ms)
        profile.action.observe(action_ms)
        profile.commit.observe(event.commit_ms)
        if self.slow_ms is not None and event.duration_ms >= self.slow_ms:
            profile.slow += 1
            record = SlowRuleRecord(
                rule_name=event.rule_name,
                at=event.at,
                duration_ms=event.duration_ms,
                condition_ms=event.condition_ms,
                action_ms=action_ms,
                commit_ms=event.commit_ms,
                outcome=event.outcome,
            )
            self.slow_records.append(record)
            if self.on_slow is not None:
                self.on_slow(record)

    # -- views -------------------------------------------------------------

    def slowest(self, n: int = 5) -> list[RuleProfile]:
        """Rules ranked by accumulated wall time, heaviest first."""
        ranked = sorted(
            self.rules.values(), key=lambda p: p.total_ms, reverse=True
        )
        return ranked[:n]

    def to_dict(self) -> dict:
        return {
            "slow_ms": self.slow_ms,
            "rules": [p.to_dict() for p in self.slowest(len(self.rules))],
            "nodes": [
                self.nodes[name].to_dict() for name in sorted(self.nodes)
            ],
            "slow_records": [r.to_dict() for r in self.slow_records],
        }

    def report_text(self, n: int = 10) -> str:
        """Top rules by wall time with the per-phase breakdown."""
        lines = ["rule profile (total wall time, heaviest first):"]
        for profile in self.slowest(n):
            lines.append(
                f"  {profile.name}: {profile.total.total:.3f}ms over "
                f"{profile.total.count} run(s) "
                f"(mean {profile.total.mean:.3f}ms, "
                f"max {profile.total.max:.3f}ms)"
            )
            lines.append(
                "    condition {c:.3f}ms | action {a:.3f}ms | "
                "commit {m:.3f}ms".format(
                    c=profile.condition.total,
                    a=profile.action.total,
                    m=profile.commit.total,
                )
            )
        if self.slow_records:
            lines.append(
                f"slow executions (>= {self.slow_ms}ms), most recent last:"
            )
            for record in self.slow_records:
                lines.append(
                    f"  {record.rule_name}: {record.duration_ms:.3f}ms "
                    f"[{record.outcome}]"
                )
        return "\n".join(lines) + "\n"

    # -- prometheus --------------------------------------------------------

    def prometheus_lines(self, prefix: str = "sentinel") -> list[str]:
        """Labelled exposition families for the ``/metrics`` endpoint."""
        from repro.monitor.prometheus import (
            escape_label,
            render_histogram,
        )

        lines: list[str] = []
        outcome_family = f"{prefix}_rule_outcomes_total"
        if self.rules:
            lines.append(f"# TYPE {outcome_family} counter")
            for name in sorted(self.rules):
                profile = self.rules[name]
                rule = escape_label(name)
                for outcome, count in (
                    ("completed", profile.executions),
                    ("rejected", profile.rejections),
                    ("failed", profile.failures),
                ):
                    lines.append(
                        f'{outcome_family}{{rule="{rule}",'
                        f'outcome="{outcome}"}} {count}'
                    )
            phase_family = f"{prefix}_rule_phase_ms"
            declared = False
            for name in sorted(self.rules):
                profile = self.rules[name]
                for phase in PHASES:
                    lines.extend(render_histogram(
                        phase_family, profile.phase(phase),
                        labels={"rule": name, "phase": phase},
                        declare=not declared,
                    ))
                    declared = True
        if self.nodes:
            node_family = f"{prefix}_node_detections_total"
            lines.append(f"# TYPE {node_family} counter")
            for name in sorted(self.nodes):
                node = self.nodes[name]
                event = escape_label(name)
                for context, count in sorted(node.detections.items()):
                    lines.append(
                        f'{node_family}{{event="{event}",'
                        f'context="{context}"}} {count}'
                    )
        return lines
