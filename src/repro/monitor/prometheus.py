"""Prometheus text exposition rendered from a MetricsRegistry.

Stdlib-only: the registry already holds everything Prometheus needs
(monotonic counters and fixed-bucket latency histograms), so rendering
is pure string assembly in the text exposition format (version 0.0.4).

Naming: registry names are dotted stage paths (``rules.executions``,
``wal.flush.ms``); they become ``<prefix>_<name_with_underscores>``
with a ``_total`` suffix for counters. Histograms keep their ``_ms``
unit suffix — the registry measures milliseconds and converting to
Prometheus' preferred seconds would make the exposition disagree with
every other view of the same registry (``report()``, ``repro trace``).
Two families get labels instead of flattened names: per-context
detection counters (``graph.detections.<ctx>`` →
``..._detections_by_context_total{context="<ctx>"}``) and the
per-rule/per-event histograms of a ``TimingProcessor``-style registry
(``rule:<name>`` → ``..._rule_latency_ms{rule="<name>"}``).
"""

from __future__ import annotations

import re
from typing import Iterable, Optional

from repro.core.contexts import ParameterContext
from repro.telemetry.processors import Histogram, MetricsRegistry

_INVALID = re.compile(r"[^a-zA-Z0-9_]")

#: context spellings recognized in ``graph.detections.<ctx>`` counters
_CONTEXTS = tuple(ctx.value for ctx in ParameterContext)

#: ``<kind>:<instance>`` histogram families and their label names
_LABELED_FAMILIES = {
    "rule": ("rule_latency_ms", "rule"),
    "condition": ("condition_latency_ms", "rule"),
    "event": ("event_latency_ms", "event"),
}


def sanitize(name: str) -> str:
    """A registry name as a valid Prometheus metric-name fragment."""
    cleaned = _INVALID.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_value(value: float) -> str:
    """Numbers the exposition parsers accept (no float repr surprises)."""
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_counter(name: str, value: int | float,
                   help_text: Optional[str] = None) -> list[str]:
    lines = []
    if help_text:
        lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} counter")
    lines.append(f"{name} {format_value(value)}")
    return lines


def render_gauge(name: str, value: int | float,
                 help_text: Optional[str] = None) -> list[str]:
    lines = []
    if help_text:
        lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} gauge")
    lines.append(f"{name} {format_value(value)}")
    return lines


def render_histogram(name: str, histogram: Histogram,
                     labels: Optional[dict[str, str]] = None,
                     declare: bool = True) -> list[str]:
    """One histogram series (optionally labelled) as exposition lines."""
    label_text = ""
    if labels:
        pairs = ",".join(
            f'{key}="{escape_label(value)}"'
            for key, value in sorted(labels.items())
        )
        label_text = pairs
    lines = [f"# TYPE {name} histogram"] if declare else []
    cumulative = 0
    for bound, count in zip(histogram.BOUNDS, histogram.buckets):
        cumulative += count
        le = f'le="{format_value(float(bound))}"'
        joined = f"{label_text},{le}" if label_text else le
        lines.append(f"{name}_bucket{{{joined}}} {cumulative}")
    cumulative += histogram.buckets[-1]
    le = 'le="+Inf"'
    joined = f"{label_text},{le}" if label_text else le
    lines.append(f"{name}_bucket{{{joined}}} {cumulative}")
    brace = f"{{{label_text}}}" if label_text else ""
    lines.append(f"{name}_sum{brace} {format_value(histogram.total)}")
    lines.append(f"{name}_count{brace} {histogram.count}")
    return lines


def _context_split(name: str) -> Optional[tuple[str, str]]:
    """``graph.detections.recent`` → (``graph.detections``, ``recent``)."""
    for ctx in _CONTEXTS:
        suffix = f".{ctx}"
        if name.endswith(suffix):
            return name[: -len(suffix)], ctx
    return None


def render_registry(registry: MetricsRegistry,
                    prefix: str = "sentinel") -> list[str]:
    """Every counter and histogram of one registry, exposition-ready."""
    lines: list[str] = []

    labeled_counters: dict[str, list[tuple[str, int]]] = {}
    for name in sorted(registry.counters):
        value = registry.counters[name].value
        split = _context_split(name)
        if split is not None:
            base, ctx = split
            labeled_counters.setdefault(base, []).append((ctx, value))
            continue
        lines.extend(render_counter(f"{prefix}_{sanitize(name)}_total", value))

    for base in sorted(labeled_counters):
        family = f"{prefix}_{sanitize(base)}_by_context_total"
        lines.append(f"# TYPE {family} counter")
        for ctx, value in sorted(labeled_counters[base]):
            lines.append(
                f'{family}{{context="{escape_label(ctx)}"}} '
                f"{format_value(value)}"
            )

    declared: set[str] = set()
    for name in sorted(registry.histograms):
        histogram = registry.histograms[name]
        kind, _, instance = name.partition(":")
        if instance and kind in _LABELED_FAMILIES:
            family_suffix, label = _LABELED_FAMILIES[kind]
            family = f"{prefix}_{family_suffix}"
            lines.extend(render_histogram(
                family, histogram, labels={label: instance},
                declare=family not in declared,
            ))
            declared.add(family)
        else:
            lines.extend(render_histogram(
                f"{prefix}_{sanitize(name)}", histogram
            ))
    return lines


def render_metrics(registries: Iterable[MetricsRegistry] | MetricsRegistry,
                   prefix: str = "sentinel",
                   extra_lines: Iterable[str] = ()) -> str:
    """The full ``/metrics`` payload from one or more registries."""
    if isinstance(registries, MetricsRegistry):
        registries = (registries,)
    lines: list[str] = []
    for registry in registries:
        lines.extend(render_registry(registry, prefix=prefix))
    lines.extend(extra_lines)
    return "\n".join(lines) + ("\n" if lines else "")
