"""The monitoring endpoint: a stdlib HTTP server over live telemetry.

:class:`MonitorServer` serves four read-only views of a running active
system, each backed by state the telemetry layer already maintains:

* ``/metrics`` — Prometheus text exposition rendered from the metrics
  registry (plus the profiler's labelled families when one is wired);
* ``/health``  — liveness JSON (HTTP 200 while healthy, 503 once the
  system is closing), assembled by a caller-supplied callable;
* ``/spans``   — the trace ring's recent span trees as JSON, with the
  rendered ASCII form ``repro trace`` prints alongside;
* ``/graph``   — the event-graph snapshot (per-node occurrence counts
  per parameter context, subscriber lists, queue depths);
* ``/profile`` — the rule profiler's per-rule/per-node attribution;
* ``/trace/<trace_id>`` — one event's lifecycle reconstructed from the
  span ring: every span/point stamped with that trace id, as trees and
  rendered text.

The server is a ``ThreadingHTTPServer`` on a daemon thread: scrapes
never block rule execution, and an abandoned server cannot keep the
process alive. All handlers read snapshots; none mutate system state.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional
from urllib.parse import urlparse

from repro.monitor.profiler import RuleProfiler
from repro.monitor.prometheus import render_metrics
from repro.telemetry.processors import MetricsRegistry, TraceLogProcessor


class MonitorServer:
    """Serves the introspection endpoints for one active system."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        health: Optional[Callable[[], dict]] = None,
        trace: Optional[TraceLogProcessor] = None,
        graph: Optional[Callable[[], dict]] = None,
        profiler: Optional[RuleProfiler] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        prefix: str = "sentinel",
        extra_metrics: Optional[Callable[[], list[str]]] = None,
    ):
        self.registry = registry
        self.health = health
        self.trace = trace
        self.graph = graph
        self.profiler = profiler
        self.prefix = prefix
        #: callable returning extra exposition lines appended to
        #: ``/metrics`` at scrape time (per-shard and detached-queue
        #: families, which live outside the metrics registry)
        self.extra_metrics = extra_metrics
        monitor = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
                monitor._route(self)

            def log_message(self, *args) -> None:
                """Scrapes are high-frequency; stay quiet."""

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (the OS picks one when constructed with 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "MonitorServer":
        if self._closed:
            raise RuntimeError("monitor server already closed")
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name=f"sentinel-monitor:{self.port}",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MonitorServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- routing -----------------------------------------------------------

    def _route(self, request: BaseHTTPRequestHandler) -> None:
        path = urlparse(request.path).path.rstrip("/") or "/"
        try:
            if path == "/metrics":
                self._send(request, 200, self._metrics_text(),
                           "text/plain; version=0.0.4; charset=utf-8")
            elif path == "/health":
                data = self.health() if self.health is not None else {
                    "healthy": True
                }
                status = 200 if data.get("healthy", True) else 503
                self._send_json(request, status, data)
            elif path == "/spans":
                self._send_json(request, 200, self._spans())
            elif path.startswith("/trace/"):
                status, data = self._trace_view(path[len("/trace/"):])
                self._send_json(request, status, data)
            elif path == "/graph":
                if self.graph is None:
                    self._send_json(request, 404,
                                    {"error": "no event graph wired"})
                else:
                    self._send_json(request, 200, self.graph())
            elif path == "/profile":
                if self.profiler is None:
                    self._send_json(request, 404,
                                    {"error": "no profiler wired"})
                else:
                    self._send_json(request, 200, self.profiler.to_dict())
            elif path == "/":
                self._send_json(request, 200, {"endpoints": [
                    "/metrics", "/health", "/spans", "/graph", "/profile",
                    "/trace/<trace_id>",
                ]})
            else:
                self._send_json(request, 404, {"error": f"unknown {path}"})
        except Exception as error:  # a broken view must not kill the server
            try:
                self._send_json(request, 500, {"error": repr(error)})
            except Exception:
                pass

    def _metrics_text(self) -> str:
        registries = [self.registry] if self.registry is not None else []
        extra: list[str] = []
        if self.profiler is not None:
            extra.extend(self.profiler.prometheus_lines(self.prefix))
        if self.extra_metrics is not None:
            extra.extend(self.extra_metrics())
        return render_metrics(registries, prefix=self.prefix,
                              extra_lines=extra)

    def _spans(self) -> dict:
        if self.trace is None:
            return {"trees": [], "rendered": ""}
        events = self.trace.events()
        return {
            "trees": self.trace.trees(events),
            "rendered": self.trace.render(events),
            "buffered": len(events),
            "capacity": self.trace.capacity,
        }

    def _trace_view(self, trace_id: str) -> tuple[int, dict]:
        """One trace's lifecycle from the span ring (or 404)."""
        if self.trace is None:
            return 404, {"error": "no trace processor wired"}
        events = self.trace.for_trace(trace_id)
        if not events:
            return 404, {"error": f"no spans for trace {trace_id!r} "
                                  "(evicted from the ring, or never seen)"}
        return 200, {
            "trace_id": trace_id,
            "events": len(events),
            "trees": self.trace.trees(events),
            "rendered": self.trace.render(events),
        }

    # -- plumbing ----------------------------------------------------------

    @staticmethod
    def _send(request: BaseHTTPRequestHandler, status: int, body: str,
              content_type: str) -> None:
        payload = body.encode("utf-8")
        request.send_response(status)
        request.send_header("Content-Type", content_type)
        request.send_header("Content-Length", str(len(payload)))
        request.end_headers()
        request.wfile.write(payload)

    @classmethod
    def _send_json(cls, request: BaseHTTPRequestHandler, status: int,
                   data: dict) -> None:
        cls._send(request, status, json.dumps(data, sort_keys=True),
                  "application/json")
