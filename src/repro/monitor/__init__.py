"""Live introspection: metrics/health/span endpoints, profiler, recorder.

``repro.monitor`` turns the internal telemetry of PR 1 into something
you can point a scraper or a human at:

* :class:`MonitorServer` — stdlib HTTP endpoints (``/metrics`` in
  Prometheus text format, ``/health``, ``/spans``, ``/graph``,
  ``/profile``);
* :class:`RuleProfiler` — per-rule wall time split into
  condition/action/commit phases, per-node propagation latency,
  slow-rule detection;
* :class:`FlightRecorder` — a bounded ring of recent spans dumped as
  JSONL when a rule subtransaction aborts or a processor raises;
* :class:`JsonlSpanExporter` / :func:`load_events` — durable span
  streams replayable offline with ``repro trace --spans``.

Quickstart::

    from repro import Sentinel

    system = Sentinel(name="app")
    server = system.monitor(port=9464)   # scrape http://127.0.0.1:9464/metrics
    ...
    system.close()                       # also shuts the server down
"""

from repro.monitor.exporter import (
    JsonlSpanExporter,
    dump_events,
    event_from_dict,
    event_to_dict,
    iter_events,
    load_events,
)
from repro.monitor.profiler import (
    NodeProfile,
    RuleProfile,
    RuleProfiler,
    SlowRuleRecord,
)
from repro.monitor.prometheus import render_metrics, render_registry, sanitize
from repro.monitor.recorder import FlightRecorder
from repro.monitor.server import MonitorServer

__all__ = [
    "MonitorServer",
    "RuleProfiler",
    "RuleProfile",
    "NodeProfile",
    "SlowRuleRecord",
    "FlightRecorder",
    "JsonlSpanExporter",
    "load_events",
    "iter_events",
    "dump_events",
    "event_to_dict",
    "event_from_dict",
    "render_metrics",
    "render_registry",
    "sanitize",
]
