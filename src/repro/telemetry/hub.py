"""The telemetry hub: span bookkeeping and best-effort dispatch.

One :class:`TelemetryHub` is shared by every module of a Sentinel
instance (detector, event graph, scheduler, transaction manager,
storage). Instrumented code checks the hub's ``active`` flag — a plain
attribute, true iff at least one processor is attached — before doing
any tracing work, so with zero processors the emit path costs one
attribute read and a branch.

Dispatch is synchronous and best-effort: a processor that raises never
breaks event detection or rule execution; the exception is counted in
``hub.dropped`` and remembered in ``hub.last_error``.

Span parentage is tracked with a per-thread stack. Opening a span
pushes its id; closing pops it and emits the frozen event. Work handed
to another thread (detached rules, threaded executors) carries its
parent span id explicitly via the ``parent_id`` argument.

Trace context rides alongside: each thread has a current *trace id* —
an opaque hex string naming one end-to-end event lifecycle. A root
span (no trace current on its thread) mints a fresh trace id and owns
it for its duration; nested spans and points inherit it. Context can
be adopted explicitly — :meth:`TelemetryHub.trace_scope` for foreign
contexts arriving over the serving wire, or the ``trace_id`` argument
to :meth:`TelemetryHub.span` for activations replayed on detached
worker threads — so one detection renders as a single connected tree
no matter how many threads or processes it crossed. Span ids draw from
a process-global counter, so spans from different hubs (a client's and
a server's in the same process) never collide within a trace.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import threading
from time import perf_counter
from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.telemetry.events import TraceEvent

if TYPE_CHECKING:
    from repro.telemetry.processors import TelemetryProcessor

#: sentinel distinguishing "inherit parent from this thread's stack"
#: from an explicit parent (including an explicit ``None`` root).
INHERIT: Any = object()

#: process-global span-id source shared by every hub (see module docs).
_SPAN_IDS = itertools.count(1)


def new_trace_id() -> str:
    """A fresh 64-bit trace id as 16 hex chars."""
    return os.urandom(8).hex()


class TelemetrySpan:
    """An open scope; emits its frozen event when closed.

    Usable as a context manager or closed manually (``open_span`` /
    ``close``) for scopes that straddle method calls, like a top-level
    transaction. Extra event fields may be filled in while the span is
    open with :meth:`set`.
    """

    __slots__ = (
        "_hub", "_cls", "_fields", "span_id", "parent_span_id",
        "trace_id", "started", "_open", "_owns_trace", "_trace_restore",
    )

    def __init__(self, hub: "TelemetryHub", cls: type[TraceEvent],
                 parent_id: Any, fields: dict, trace_id: Any = INHERIT):
        self._hub = hub
        self._cls = cls
        self._fields = fields
        self.span_id = next(hub._ids)
        stack = hub._stack()
        if parent_id is INHERIT:
            self.parent_span_id = stack[-1] if stack else None
        else:
            self.parent_span_id = parent_id
        local = hub._local
        current = getattr(local, "trace", None)
        if trace_id is INHERIT or trace_id is None:
            if current is None:
                # Root of a new lifecycle: mint a trace and own it.
                self.trace_id = new_trace_id()
                local.trace = self.trace_id
                self._owns_trace = True
                self._trace_restore = None
            else:
                self.trace_id = current
                self._owns_trace = False
                self._trace_restore = None
        else:
            # Explicit adoption (detached replay, cross-thread handoff).
            self.trace_id = trace_id
            self._owns_trace = trace_id != current
            self._trace_restore = current
            if self._owns_trace:
                local.trace = trace_id
        stack.append(self.span_id)
        self._open = True
        self.started = perf_counter()

    def set(self, **fields: Any) -> "TelemetrySpan":
        """Update stage-specific fields before the span closes."""
        self._fields.update(fields)
        return self

    def close(self, **fields: Any) -> None:
        """Pop the span and emit its event (idempotent)."""
        if not self._open:
            return
        self._open = False
        elapsed_ms = (perf_counter() - self.started) * 1000.0
        stack = self._hub._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        else:  # unbalanced close (error paths); drop our frame anyway
            try:
                stack.remove(self.span_id)
            except ValueError:
                pass
        if self._owns_trace:
            self._hub._local.trace = self._trace_restore
        if fields:
            self._fields.update(fields)
        self._hub.dispatch(self._cls(
            span_id=self.span_id,
            parent_span_id=self.parent_span_id,
            at=self.started,
            duration_ms=elapsed_ms,
            trace_id=self.trace_id,
            **self._fields,
        ))

    def __enter__(self) -> "TelemetrySpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class TelemetryHub:
    """Dispatches trace events to attached processors."""

    def __init__(self) -> None:
        #: fast-path flag: instrumented code reads this before tracing
        self.active = False
        #: processor exceptions swallowed so far (best-effort dispatch)
        self.dropped = 0
        self.last_error: Optional[BaseException] = None
        self._processors: list["TelemetryProcessor"] = []
        self._ids = _SPAN_IDS
        self._local = threading.local()

    # -- processors ----------------------------------------------------------

    @property
    def processors(self) -> tuple["TelemetryProcessor", ...]:
        return tuple(self._processors)

    def attach(self, processor: "TelemetryProcessor") -> "TelemetryProcessor":
        """Add a processor and enable the instrumented paths."""
        self._processors.append(processor)
        self.active = True
        return processor

    def detach(self, processor: "TelemetryProcessor") -> None:
        """Remove a processor; the hub goes dormant with none left."""
        try:
            self._processors.remove(processor)
        except ValueError:
            pass
        self.active = bool(self._processors)

    # -- span context --------------------------------------------------------

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span_id(self) -> Optional[int]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def current_trace_id(self) -> Optional[str]:
        """The trace this thread is currently inside, if any."""
        return getattr(self._local, "trace", None)

    @contextlib.contextmanager
    def trace_scope(self, trace_id: str,
                    parent_span_id: Optional[int] = None) -> Iterator[None]:
        """Adopt a foreign trace context for the duration of a block.

        Used by the serving layer when a request frame carries a
        ``ctx`` field: every span opened inside the block joins
        ``trace_id``, and — when ``parent_span_id`` is given — parents
        into the peer's wire span, stitching the client and server
        halves into one tree. Restores the prior context on exit.
        """
        local = self._local
        prior = getattr(local, "trace", None)
        local.trace = trace_id
        stack = self._stack()
        if parent_span_id is not None:
            stack.append(parent_span_id)
        try:
            yield
        finally:
            if parent_span_id is not None:
                if stack and stack[-1] == parent_span_id:
                    stack.pop()
                else:  # unbalanced inner close; drop our frame anyway
                    try:
                        stack.remove(parent_span_id)
                    except ValueError:
                        pass
            local.trace = prior

    # -- emission ------------------------------------------------------------

    def span(self, cls: type[TraceEvent], *, parent_id: Any = INHERIT,
             trace_id: Any = INHERIT, **fields: Any) -> TelemetrySpan:
        """Open a scope; use as ``with hub.span(Cls, ...) as sp:``."""
        return TelemetrySpan(self, cls, parent_id, fields, trace_id)

    # A long-lived scope (a transaction) opens here and closes later
    # with ``span.close(outcome=...)``.
    open_span = span

    def point(self, cls: type[TraceEvent], *, parent_id: Any = INHERIT,
              trace_id: Optional[str] = None,
              **fields: Any) -> Optional[TraceEvent]:
        """Emit an instantaneous event parented to the current span."""
        if not self.active:
            return None
        if parent_id is INHERIT:
            parent_id = self.current_span_id()
        if trace_id is None:
            trace_id = self.current_trace_id()
        event = cls(
            span_id=next(self._ids),
            parent_span_id=parent_id,
            at=perf_counter(),
            duration_ms=0.0,
            trace_id=trace_id,
            **fields,
        )
        self.dispatch(event)
        return event

    def dispatch(self, event: TraceEvent) -> None:
        """Deliver ``event`` to every processor, isolating failures."""
        for processor in self._processors:
            try:
                processor.handle(event)
            except Exception as error:  # a processor must never break rules
                self.dropped += 1
                self.last_error = error
