"""The telemetry hub: span bookkeeping and best-effort dispatch.

One :class:`TelemetryHub` is shared by every module of a Sentinel
instance (detector, event graph, scheduler, transaction manager,
storage). Instrumented code checks the hub's ``active`` flag — a plain
attribute, true iff at least one processor is attached — before doing
any tracing work, so with zero processors the emit path costs one
attribute read and a branch.

Dispatch is synchronous and best-effort: a processor that raises never
breaks event detection or rule execution; the exception is counted in
``hub.dropped`` and remembered in ``hub.last_error``.

Span parentage is tracked with a per-thread stack. Opening a span
pushes its id; closing pops it and emits the frozen event. Work handed
to another thread (detached rules, threaded executors) carries its
parent span id explicitly via the ``parent_id`` argument.
"""

from __future__ import annotations

import itertools
import threading
from time import perf_counter
from typing import TYPE_CHECKING, Any, Optional

from repro.telemetry.events import TraceEvent

if TYPE_CHECKING:
    from repro.telemetry.processors import TelemetryProcessor

#: sentinel distinguishing "inherit parent from this thread's stack"
#: from an explicit parent (including an explicit ``None`` root).
INHERIT: Any = object()


class TelemetrySpan:
    """An open scope; emits its frozen event when closed.

    Usable as a context manager or closed manually (``open_span`` /
    ``close``) for scopes that straddle method calls, like a top-level
    transaction. Extra event fields may be filled in while the span is
    open with :meth:`set`.
    """

    __slots__ = (
        "_hub", "_cls", "_fields", "span_id", "parent_span_id",
        "started", "_open",
    )

    def __init__(self, hub: "TelemetryHub", cls: type[TraceEvent],
                 parent_id: Any, fields: dict):
        self._hub = hub
        self._cls = cls
        self._fields = fields
        self.span_id = next(hub._ids)
        stack = hub._stack()
        if parent_id is INHERIT:
            self.parent_span_id = stack[-1] if stack else None
        else:
            self.parent_span_id = parent_id
        stack.append(self.span_id)
        self._open = True
        self.started = perf_counter()

    def set(self, **fields: Any) -> "TelemetrySpan":
        """Update stage-specific fields before the span closes."""
        self._fields.update(fields)
        return self

    def close(self, **fields: Any) -> None:
        """Pop the span and emit its event (idempotent)."""
        if not self._open:
            return
        self._open = False
        elapsed_ms = (perf_counter() - self.started) * 1000.0
        stack = self._hub._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        else:  # unbalanced close (error paths); drop our frame anyway
            try:
                stack.remove(self.span_id)
            except ValueError:
                pass
        if fields:
            self._fields.update(fields)
        self._hub.dispatch(self._cls(
            span_id=self.span_id,
            parent_span_id=self.parent_span_id,
            at=self.started,
            duration_ms=elapsed_ms,
            **self._fields,
        ))

    def __enter__(self) -> "TelemetrySpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class TelemetryHub:
    """Dispatches trace events to attached processors."""

    def __init__(self) -> None:
        #: fast-path flag: instrumented code reads this before tracing
        self.active = False
        #: processor exceptions swallowed so far (best-effort dispatch)
        self.dropped = 0
        self.last_error: Optional[BaseException] = None
        self._processors: list["TelemetryProcessor"] = []
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- processors ----------------------------------------------------------

    @property
    def processors(self) -> tuple["TelemetryProcessor", ...]:
        return tuple(self._processors)

    def attach(self, processor: "TelemetryProcessor") -> "TelemetryProcessor":
        """Add a processor and enable the instrumented paths."""
        self._processors.append(processor)
        self.active = True
        return processor

    def detach(self, processor: "TelemetryProcessor") -> None:
        """Remove a processor; the hub goes dormant with none left."""
        try:
            self._processors.remove(processor)
        except ValueError:
            pass
        self.active = bool(self._processors)

    # -- span context --------------------------------------------------------

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span_id(self) -> Optional[int]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- emission ------------------------------------------------------------

    def span(self, cls: type[TraceEvent], *, parent_id: Any = INHERIT,
             **fields: Any) -> TelemetrySpan:
        """Open a scope; use as ``with hub.span(Cls, ...) as sp:``."""
        return TelemetrySpan(self, cls, parent_id, fields)

    # A long-lived scope (a transaction) opens here and closes later
    # with ``span.close(outcome=...)``.
    open_span = span

    def point(self, cls: type[TraceEvent], *, parent_id: Any = INHERIT,
              **fields: Any) -> Optional[TraceEvent]:
        """Emit an instantaneous event parented to the current span."""
        if not self.active:
            return None
        if parent_id is INHERIT:
            parent_id = self.current_span_id()
        event = cls(
            span_id=next(self._ids),
            parent_span_id=parent_id,
            at=perf_counter(),
            duration_ms=0.0,
            **fields,
        )
        self.dispatch(event)
        return event

    def dispatch(self, event: TraceEvent) -> None:
        """Deliver ``event`` to every processor, isolating failures."""
        for processor in self._processors:
            try:
                processor.handle(event)
            except Exception as error:  # a processor must never break rules
                self.dropped += 1
                self.last_error = error
