"""Trace events: one frozen dataclass per lifecycle stage.

Every stage of Figure 1's control flow — a Notify arriving at the
detector, propagation through the event graph, a composite detection in
a parameter context, condition evaluation, the rule subtransaction, a
detached dispatch, the WAL flush, a buffer eviction — emits a typed,
immutable event carrying tracing context:

* ``span_id`` uniquely identifies the scope,
* ``parent_span_id`` links it into the enclosing scope (``None`` for
  roots), which is how detached rules stay attached to the trace tree
  of the transaction that triggered them,
* ``trace_id`` names the end-to-end lifecycle the scope belongs to —
  one trace covers a notification's whole journey, including across
  the serving wire and onto detached-rule worker threads,
* ``at`` is the ``perf_counter`` timestamp at scope *entry*,
* ``duration_ms`` is the scope's wall-clock duration (``0.0`` for
  instantaneous point events).

Span events are emitted when their scope *closes*, so in a trace log
children always precede their parents; processors that want a tree
(:class:`~repro.telemetry.processors.TraceLogProcessor`) rebuild it
from the parent links.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import ClassVar, Optional


@dataclass(frozen=True, kw_only=True)
class TraceEvent:
    """Base class: tracing context shared by every telemetry event."""

    #: short lifecycle-stage tag used by renderers and metric names
    stage: ClassVar[str] = "event"
    #: spans have a duration; point events are instantaneous
    is_span: ClassVar[bool] = False

    span_id: int
    parent_span_id: Optional[int]
    at: float
    duration_ms: float = 0.0
    trace_id: Optional[str] = None

    def summary(self) -> str:
        """The stage-specific fields as ``key=value`` text."""
        base = {"span_id", "parent_span_id", "at", "duration_ms", "trace_id"}
        parts = [
            f"{f.name}={getattr(self, f.name)!r}"
            for f in dataclasses.fields(self)
            if f.name not in base
        ]
        return " ".join(parts)


# =========================================================================
# Detector stages
# =========================================================================

@dataclass(frozen=True, kw_only=True)
class NotificationReceived(TraceEvent):
    """A Notify (method event or explicit raise) entered the detector.

    The span covers graph propagation *and* the immediate rules the
    notification transitively triggered, so rule spans nest inside it.
    """

    stage: ClassVar[str] = "notify"
    is_span: ClassVar[bool] = True

    class_name: str
    method_name: str
    modifier: str
    #: "method" for wrapper Notify calls, "explicit" for raise_event
    source: str = "method"
    #: primitive event nodes that matched (set when the span closes)
    matched: int = 0


@dataclass(frozen=True, kw_only=True)
class NotificationSuppressed(TraceEvent):
    """A Notify arrived while signaling was suppressed (condition eval)."""

    stage: ClassVar[str] = "suppressed"

    class_name: str
    method_name: str


@dataclass(frozen=True, kw_only=True)
class RuleTriggered(TraceEvent):
    """A detection matched a rule subscription (before scheduling)."""

    stage: ClassVar[str] = "trigger"

    rule_name: str
    event_name: str


@dataclass(frozen=True, kw_only=True)
class DetachedDispatch(TraceEvent):
    """A DETACHED-coupled activation was handed to the detached runner."""

    stage: ClassVar[str] = "detached"

    rule_name: str


@dataclass(frozen=True, kw_only=True)
class BatchIngested(TraceEvent):
    """A ``notify_batch`` / ``raise_events`` call entered the detector.

    One span per batch, in place of one ``NotificationReceived`` span
    per item — amortizing the tracing cost the same way the batch path
    amortizes shard-lock acquisition. ``size`` is the number of items
    ingested; ``matched`` counts the primitive occurrences generated.
    """

    stage: ClassVar[str] = "batch"
    is_span: ClassVar[bool] = True

    size: int
    source: str = "method"
    matched: int = 0


@dataclass(frozen=True, kw_only=True)
class DetachedQueueWait(TraceEvent):
    """A detached activation left the queue after waiting ``wait_ms``.

    Emitted on the worker thread just before the rule runs, parented
    (and trace-linked) back to the triggering notification so detached
    latency shows up inside the originating trace.
    """

    stage: ClassVar[str] = "detached.wait"

    rule_name: str
    wait_ms: float = 0.0


@dataclass(frozen=True, kw_only=True)
class DetachedOverflow(TraceEvent):
    """The bounded detached-rule queue hit capacity.

    ``policy`` names the overflow discipline that resolved it:
    ``drop_oldest`` (the oldest activation was discarded), ``spill``
    (the oldest activation was written to the spill sink), or
    ``block`` (the producer waited for room).
    """

    stage: ClassVar[str] = "detached.overflow"

    rule_name: str
    policy: str
    backlog: int = 0


# =========================================================================
# Event graph stages
# =========================================================================

@dataclass(frozen=True, kw_only=True)
class GraphPropagation(TraceEvent):
    """One primitive occurrence propagating through the event graph.

    The span covers ``node.occur`` — i.e. the full data-flow cascade
    that one source occurrence causes, composite detections included.
    """

    stage: ClassVar[str] = "propagate"
    is_span: ClassVar[bool] = True

    event_name: str
    operator: str


@dataclass(frozen=True, kw_only=True)
class Detection(TraceEvent):
    """An event node detected an occurrence in one parameter context."""

    stage: ClassVar[str] = "detect"

    event_name: str
    operator: str
    context: str


@dataclass(frozen=True, kw_only=True)
class ShardHop(TraceEvent):
    """A cross-shard edge delivery was drained from a shard channel.

    ``wait_ms`` is the time the entry spent buffered between the
    sending shard's ``fanout`` and the driver draining it on the
    receiving shard — the shard-hop stage of the lifecycle.
    """

    stage: ClassVar[str] = "shard.hop"

    shard: int
    wait_ms: float = 0.0


# =========================================================================
# Rule execution stages
# =========================================================================

@dataclass(frozen=True, kw_only=True)
class ConditionEvaluated(TraceEvent):
    """A rule condition ran (with event signaling suppressed)."""

    stage: ClassVar[str] = "condition"
    is_span: ClassVar[bool] = True

    rule_name: str
    satisfied: bool = False


@dataclass(frozen=True, kw_only=True)
class RuleExecution(TraceEvent):
    """One rule subtransaction (Fig. 3's ``cond_action``).

    ``outcome`` is ``completed`` (condition held, action ran),
    ``rejected`` (condition false) or ``failed`` (condition or action
    raised). For detached rules ``parent_span_id`` points back into the
    triggering transaction's trace tree. ``condition_ms`` and
    ``commit_ms`` break the total duration into phases (the remainder
    is action time); the profiler attributes per-rule wall time from
    them. ``lane`` records the execution lane — ``"sync"`` (serial or
    thread pool) or ``"async"`` (the asyncio lane), so action time can
    be attributed to the right latency stage.
    """

    stage: ClassVar[str] = "rule"
    is_span: ClassVar[bool] = True

    rule_name: str
    coupling: str
    depth: int
    outcome: str = "completed"
    condition_ms: float = 0.0
    commit_ms: float = 0.0
    lane: str = "sync"


@dataclass(frozen=True, kw_only=True)
class SubtransactionBoundary(TraceEvent):
    """A nested (rule) subtransaction began, committed, or aborted."""

    stage: ClassVar[str] = "subtxn"

    kind: str  # "begin" | "commit" | "abort"
    txn_id: int
    label: str
    depth: int


@dataclass(frozen=True, kw_only=True)
class TransactionSpan(TraceEvent):
    """A top-level Sentinel transaction — the root of a trace tree."""

    stage: ClassVar[str] = "txn"
    is_span: ClassVar[bool] = True

    txn_id: int
    outcome: str = "committed"


# =========================================================================
# Global (inter-application) stages
# =========================================================================

@dataclass(frozen=True, kw_only=True)
class GlobalEventSent(TraceEvent):
    """A local occurrence of an exported event left for the global
    detector (Fig. 2's uplink)."""

    stage: ClassVar[str] = "global.send"

    application: str
    event_name: str


@dataclass(frozen=True, kw_only=True)
class GlobalEventReceived(TraceEvent):
    """The global detector consumed one uplinked occurrence.

    The span covers the re-raise into the global event graph, so any
    global composite detections and delivery subscriptions it causes
    nest inside it. ``known`` is False when the event was exported but
    never imported (the occurrence is dropped).
    """

    stage: ClassVar[str] = "global.receive"
    is_span: ClassVar[bool] = True

    application: str
    event_name: str
    known: bool = True


@dataclass(frozen=True, kw_only=True)
class GlobalDetectionDelivered(TraceEvent):
    """A global detection was re-raised in a subscriber application.

    The span covers the local ``raise_event`` — i.e. the local rule
    cascade the delivery triggers (typically detached rules).
    """

    stage: ClassVar[str] = "global.deliver"
    is_span: ClassVar[bool] = True

    application: str
    event_name: str


@dataclass(frozen=True, kw_only=True)
class ChannelMessage(TraceEvent):
    """A message moved through an inter-application channel.

    ``kind`` is ``send`` (enqueued or delivered directly) or
    ``deliver`` (handed to the sink); ``pending`` is the queue depth
    after the operation, which is what the monitor's backlog gauges
    read.
    """

    stage: ClassVar[str] = "channel"

    channel: str
    kind: str
    pending: int = 0


# =========================================================================
# Serving stages
# =========================================================================

@dataclass(frozen=True, kw_only=True)
class WireRequest(TraceEvent):
    """One client request/response round-trip over the serving wire.

    Opened by :class:`~repro.serving.client.SentinelClient` around a
    call when the client carries a telemetry hub; the span's trace and
    span ids travel in the frame's ``ctx`` field, so server-side spans
    parent into this one and the whole detection renders as a single
    client→server→shard→action tree.
    """

    stage: ClassVar[str] = "wire"
    is_span: ClassVar[bool] = True

    op: str
    ok: bool = True


# =========================================================================
# Storage stages
# =========================================================================

@dataclass(frozen=True, kw_only=True)
class WalFlush(TraceEvent):
    """The write-ahead log forced buffered records to disk."""

    stage: ClassVar[str] = "wal.flush"
    is_span: ClassVar[bool] = True

    records: int
    flushed_lsn: int = -1


@dataclass(frozen=True, kw_only=True)
class BufferEviction(TraceEvent):
    """The buffer pool evicted a frame (write-back if it was dirty)."""

    stage: ClassVar[str] = "buffer.evict"

    page_id: int
    dirty: bool


ALL_EVENT_TYPES: tuple[type[TraceEvent], ...] = (
    NotificationReceived,
    NotificationSuppressed,
    RuleTriggered,
    DetachedDispatch,
    BatchIngested,
    DetachedQueueWait,
    DetachedOverflow,
    GraphPropagation,
    Detection,
    ShardHop,
    ConditionEvaluated,
    RuleExecution,
    SubtransactionBoundary,
    TransactionSpan,
    GlobalEventSent,
    GlobalEventReceived,
    GlobalDetectionDelivered,
    ChannelMessage,
    WireRequest,
    WalFlush,
    BufferEviction,
)
