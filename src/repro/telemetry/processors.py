"""Telemetry processors: the built-in consumers of trace events.

* :class:`CounterProcessor` — a metrics registry of counters and
  duration histograms; the single source the
  :meth:`~repro.sentinel.Sentinel.report` counters are read from.
* :class:`TraceLogProcessor` — a ring buffer of trace events plus a
  text renderer that rebuilds the span tree (CLI ``trace``).
* :class:`TimingProcessor` — per-rule / per-event latency histograms.

Processors are synchronous and must be cheap; the hub isolates their
failures, but a slow processor still slows the instrumented paths.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections import deque
from typing import Callable, Iterable, Optional

from repro.telemetry.events import (
    BatchIngested,
    BufferEviction,
    ChannelMessage,
    ConditionEvaluated,
    DetachedDispatch,
    DetachedOverflow,
    Detection,
    GlobalDetectionDelivered,
    GlobalEventReceived,
    GlobalEventSent,
    GraphPropagation,
    NotificationReceived,
    NotificationSuppressed,
    RuleExecution,
    RuleTriggered,
    SubtransactionBoundary,
    TraceEvent,
    TransactionSpan,
    WalFlush,
)


class TelemetryProcessor:
    """Base class: receives every event emitted by the hub."""

    def handle(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (files, sockets); the default has none."""


# =========================================================================
# Metrics registry
# =========================================================================

class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Latency summary: count/total/min/max plus log-scale buckets."""

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    #: upper bounds (ms) of the fixed buckets; the last is +inf
    BOUNDS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 1000.0)

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.buckets = [0] * (len(self.BOUNDS) + 1)

    def observe(self, value_ms: float) -> None:
        self.count += 1
        self.total += value_ms
        if value_ms < self.min:
            self.min = value_ms
        if value_ms > self.max:
            self.max = value_ms
        self.buckets[bisect_left(self.BOUNDS, value_ms)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        return {
            "count": self.count,
            "total_ms": round(self.total, 3),
            "mean_ms": round(self.mean, 4),
            "min_ms": round(self.min, 4) if self.count else 0.0,
            "max_ms": round(self.max, 4),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.3f}ms)"


class MetricsRegistry:
    """A flat namespace of named counters and histograms."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name)
        return histogram

    def value(self, name: str, default: int = 0) -> int:
        """A counter's current value (``default`` if never incremented)."""
        counter = self.counters.get(name)
        return counter.value if counter is not None else default

    def to_dict(self) -> dict:
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self.histograms.items())
            },
        }


# =========================================================================
# Built-in processors
# =========================================================================

class CounterProcessor(TelemetryProcessor):
    """Aggregates trace events into a :class:`MetricsRegistry`.

    This registry supersedes the scattered per-module stats objects
    (``DetectorStats``, ``SchedulerStats``, ...): every counter those
    structs maintained has a named equivalent here, derived from the
    same instrumentation points (see ``tests/telemetry/test_parity``).
    Span durations additionally land in per-stage histograms
    (``notify.ms``, ``rule.ms``, ``wal.flush.ms``, ...).
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self._handlers: dict[type, Callable] = {
            NotificationReceived: self._on_notification,
            NotificationSuppressed: self._on_suppressed,
            RuleTriggered: self._on_trigger,
            DetachedDispatch: self._on_detached,
            DetachedOverflow: self._on_detached_overflow,
            BatchIngested: self._on_batch,
            Detection: self._on_detection,
            ConditionEvaluated: self._on_condition,
            RuleExecution: self._on_rule,
            SubtransactionBoundary: self._on_subtxn,
            TransactionSpan: self._on_txn,
            WalFlush: self._on_wal_flush,
            BufferEviction: self._on_eviction,
            GlobalEventSent: self._on_global_sent,
            GlobalEventReceived: self._on_global_received,
            GlobalDetectionDelivered: self._on_global_delivered,
            ChannelMessage: self._on_channel,
        }

    def _on_notification(self, event: NotificationReceived) -> None:
        # Explicit raises are not Notify calls; DetectorStats counts
        # only the latter, and the registry mirrors that split.
        if event.source == "explicit":
            self.registry.counter("detector.raises").inc()
        else:
            self.registry.counter("detector.notifications").inc()
        self.registry.counter("detector.matched").inc(event.matched)

    def _on_suppressed(self, event: NotificationSuppressed) -> None:
        self.registry.counter("detector.notifications").inc()
        self.registry.counter("detector.suppressed").inc()

    def _on_trigger(self, event: RuleTriggered) -> None:
        self.registry.counter("rules.triggers").inc()

    def _on_detached(self, event: DetachedDispatch) -> None:
        self.registry.counter("detector.detached_dispatches").inc()

    def _on_detached_overflow(self, event: DetachedOverflow) -> None:
        self.registry.counter("detached.overflows").inc()
        self.registry.counter(f"detached.overflows.{event.policy}").inc()

    def _on_batch(self, event: BatchIngested) -> None:
        # A batch is N notifications ingested under one span; mirror the
        # per-item counters DetectorStats keeps, plus the batch count.
        self.registry.counter("detector.batches").inc()
        if event.source == "explicit":
            self.registry.counter("detector.raises").inc(event.size)
        else:
            self.registry.counter("detector.notifications").inc(event.size)
        self.registry.counter("detector.matched").inc(event.matched)

    def _on_detection(self, event: Detection) -> None:
        self.registry.counter("graph.detections").inc()
        self.registry.counter(f"graph.detections.{event.context}").inc()

    def _on_condition(self, event: ConditionEvaluated) -> None:
        self.registry.counter("rules.conditions_evaluated").inc()

    def _on_subtxn(self, event: SubtransactionBoundary) -> None:
        self.registry.counter(f"txn.sub_{event.kind}").inc()

    def _on_txn(self, event: TransactionSpan) -> None:
        self.registry.counter(f"txn.{event.outcome}").inc()

    def _on_wal_flush(self, event: WalFlush) -> None:
        self.registry.counter("wal.flushes").inc()
        self.registry.counter("wal.records").inc(event.records)

    def _on_eviction(self, event: BufferEviction) -> None:
        self.registry.counter("buffer.evictions").inc()

    def _on_global_sent(self, event: GlobalEventSent) -> None:
        self.registry.counter("global.sent").inc()

    def _on_global_received(self, event: GlobalEventReceived) -> None:
        self.registry.counter("global.received").inc()
        if not event.known:
            self.registry.counter("global.dropped").inc()

    def _on_global_delivered(self, event: GlobalDetectionDelivered) -> None:
        self.registry.counter("global.delivered").inc()

    def _on_channel(self, event: ChannelMessage) -> None:
        self.registry.counter(f"channel.{event.kind}").inc()

    def _on_rule(self, event: RuleExecution) -> None:
        r = self.registry
        if event.outcome == "completed":
            r.counter("rules.executions").inc()
        elif event.outcome == "rejected":
            r.counter("rules.condition_rejections").inc()
        elif event.outcome == "failed":
            r.counter("rules.failures").inc()

    def handle(self, event: TraceEvent) -> None:
        handler = self._handlers.get(type(event))
        if handler is not None:
            handler(event)
        if event.is_span:
            self.registry.histogram(f"{event.stage}.ms").observe(
                event.duration_ms
            )


class TimingProcessor(TelemetryProcessor):
    """Per-rule and per-event latency histograms.

    * ``rule:<name>`` — full subtransaction latency per rule;
    * ``condition:<name>`` — condition evaluation latency per rule;
    * ``event:<name>`` — propagation latency per source event node
      (the cost of the data-flow cascade one occurrence causes);
    * ``wal.flush`` — log force latency.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()

    def handle(self, event: TraceEvent) -> None:
        if isinstance(event, RuleExecution):
            self.registry.histogram(f"rule:{event.rule_name}").observe(
                event.duration_ms
            )
        elif isinstance(event, ConditionEvaluated):
            self.registry.histogram(f"condition:{event.rule_name}").observe(
                event.duration_ms
            )
        elif isinstance(event, GraphPropagation):
            self.registry.histogram(f"event:{event.event_name}").observe(
                event.duration_ms
            )
        elif isinstance(event, WalFlush):
            self.registry.histogram("wal.flush").observe(event.duration_ms)

    def rule_timings(self) -> dict[str, dict]:
        return {
            name[len("rule:"):]: hist.summary()
            for name, hist in self.registry.histograms.items()
            if name.startswith("rule:")
        }


class TraceLogProcessor(TelemetryProcessor):
    """Ring buffer of trace events with a span-tree text renderer.

    The buffer is a fixed-capacity ring: once full, appending a new
    event evicts the oldest one. Spans are emitted on close (children
    before parents), so eviction can orphan an event whose parent span
    closed long ago — orphans render as tree roots rather than
    disappearing. Readers snapshot the buffer exactly once under a
    lock, so rendering while rule threads are still appending never
    sees a half-updated ring.
    """

    def __init__(self, capacity: int = 4096):
        self._buffer: deque[TraceEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        return self._buffer.maxlen or 0

    def handle(self, event: TraceEvent) -> None:
        with self._lock:
            self._buffer.append(event)

    def events(self) -> list[TraceEvent]:
        with self._lock:
            return list(self._buffer)

    def for_trace(self, trace_id: str) -> list[TraceEvent]:
        """The buffered events belonging to one end-to-end trace."""
        return [e for e in self.events() if e.trace_id == trace_id]

    def clear(self) -> None:
        with self._lock:
            self._buffer.clear()

    # -- tree rendering ------------------------------------------------------

    def roots(self) -> list[TraceEvent]:
        """Events whose parent is absent from the buffer (tree roots)."""
        pool = self.events()
        present = {e.span_id for e in pool}
        return [
            e for e in pool
            if e.parent_span_id is None or e.parent_span_id not in present
        ]

    def trees(self, events: Optional[Iterable[TraceEvent]] = None) -> list[dict]:
        """The buffered events as parent-linked trees of plain dicts.

        Each node is the event's fields (via
        :func:`~repro.telemetry.events` dataclass introspection) plus
        ``type`` and ``children``; orphans whose parents were evicted
        out of the ring become roots. This is the ``/spans`` endpoint's
        payload and the JSONL exporter's in-memory shape.
        """
        import dataclasses

        pool = self.events() if events is None else list(events)
        children = self._group(pool)

        def node(event: TraceEvent) -> dict:
            data = dataclasses.asdict(event)
            data["type"] = type(event).__name__
            data["stage"] = event.stage
            data["children"] = [
                node(child) for child in children.get(event.span_id, ())
            ]
            return data

        return [node(root) for root in children.get(None, ())]

    def _group(
        self, pool: list[TraceEvent]
    ) -> dict[Optional[int], list[TraceEvent]]:
        """Group one snapshot by parent; evicted parents map to None.

        Works from a single snapshot so the ``present`` set and the
        grouping always agree — grouping against a live ring could file
        a child under a parent that only arrived after the snapshot,
        silently dropping it from the output.
        """
        children: dict[Optional[int], list[TraceEvent]] = {}
        present = {e.span_id for e in pool}
        for event in pool:
            parent = event.parent_span_id
            key = parent if parent in present else None
            children.setdefault(key, []).append(event)
        for siblings in children.values():
            siblings.sort(key=lambda e: e.span_id)
        return children

    def render(self, events: Optional[Iterable[TraceEvent]] = None) -> str:
        """The buffered events as an indented span tree.

        Spans are emitted on close (children first); the tree is rebuilt
        from parent links and printed in start order (span-id order).
        The walk is iterative, so a trace nested thousands of spans deep
        (a long rule cascade filling the whole ring) cannot blow the
        interpreter recursion limit.
        """
        pool = self.events() if events is None else list(events)
        children = self._group(pool)

        lines: list[str] = []
        stack: list[tuple[TraceEvent, int]] = [
            (root, 0) for root in reversed(children.get(None, ()))
        ]
        while stack:
            event, depth = stack.pop()
            duration = (
                f" [{event.duration_ms:.3f}ms]" if event.is_span else ""
            )
            summary = event.summary()
            summary = f" {summary}" if summary else ""
            lines.append(
                f"{'  ' * depth}{event.stage}#{event.span_id}"
                f"{summary}{duration}"
            )
            for child in reversed(children.get(event.span_id, ())):
                stack.append((child, depth + 1))
        return "\n".join(lines) + ("\n" if lines else "")
