"""Log-bucketed stage-latency histograms (HDR-style).

The fixed ten-bucket :class:`~repro.telemetry.processors.Histogram`
is fine for coarse per-stage means, but lifecycle stages span five
orders of magnitude — a wrapped ``notify`` costs ~1 µs while a
detached-queue wait under load is tens of milliseconds — so percentile
estimates need log-spaced buckets dense enough that the relative error
is bounded by the bucket ratio. :class:`LogHistogram` uses power-of-two
bounds from 1 µs to ~16 s (one bucket per octave, ≤2x relative error),
which keeps `observe` a single bisect and the memory per stage at a
few hundred bytes.

:class:`StageLatencyProcessor` maps trace events onto the canonical
lifecycle stages of the paper's Figure 2 chain:

======== ==============================================================
stage    fed by
======== ==============================================================
ingest   ``NotificationReceived`` / ``BatchIngested`` span duration
shard_hop ``ShardHop`` channel-buffering wait
detect   ``GraphPropagation`` span duration (operator DAG cascade)
condition ``ConditionEvaluated`` span duration
action   ``RuleExecution`` duration minus condition and commit phases
action_async same, for rules on the asyncio lane (``lane == "async"``)
commit   ``RuleExecution.commit_ms`` (subtransaction commit)
detached_wait ``DetachedQueueWait`` queue-residency wait
wire     ``WireRequest`` client round-trip duration
======== ==============================================================

Attach it to a hub (``Sentinel(metrics=True)`` does, alongside the
``CounterProcessor``) and the percentiles surface in ``health()`` /
``SystemReport`` and as Prometheus histogram families on ``/metrics``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable

from repro.telemetry.events import (
    BatchIngested,
    ConditionEvaluated,
    DetachedQueueWait,
    GraphPropagation,
    NotificationReceived,
    RuleExecution,
    ShardHop,
    TraceEvent,
    WireRequest,
)
from repro.telemetry.processors import TelemetryProcessor

#: canonical lifecycle stages, in pipeline order
STAGES = (
    "ingest",
    "shard_hop",
    "detect",
    "condition",
    "action",
    "action_async",
    "commit",
    "detached_wait",
    "wire",
)


class LogHistogram:
    """Latency summary with power-of-two buckets from 1 µs to ~16 s.

    Exposes the same attribute surface as
    :class:`~repro.telemetry.processors.Histogram` (``BOUNDS`` /
    ``buckets`` / ``count`` / ``total`` / ``min`` / ``max``), so the
    Prometheus renderer consumes either interchangeably, plus
    :meth:`percentile` estimation from the cumulative buckets.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    #: upper bounds (ms): 0.001 · 2^i for i in 0..24; the last is +inf
    BOUNDS = tuple(0.001 * 2.0 ** i for i in range(25))

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.buckets = [0] * (len(self.BOUNDS) + 1)

    def observe(self, value_ms: float) -> None:
        self.count += 1
        self.total += value_ms
        if value_ms < self.min:
            self.min = value_ms
        if value_ms > self.max:
            self.max = value_ms
        self.buckets[bisect_left(self.BOUNDS, value_ms)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (``0 < q <= 1``), estimated from buckets.

        Returns the upper bound of the bucket holding the target rank,
        clamped to the observed maximum — so the estimate never exceeds
        any value actually recorded, and the relative error is bounded
        by the octave bucket ratio (≤2x).
        """
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for bound, count in zip(self.BOUNDS, self.buckets):
            cumulative += count
            if cumulative >= target:
                return min(bound, self.max)
        return self.max

    def summary(self) -> dict:
        return {
            "count": self.count,
            "p50_ms": round(self.percentile(0.50), 4),
            "p95_ms": round(self.percentile(0.95), 4),
            "p99_ms": round(self.percentile(0.99), 4),
            "mean_ms": round(self.mean, 4),
            "max_ms": round(self.max, 4),
        }

    def __repr__(self) -> str:
        return (
            f"LogHistogram({self.name}, n={self.count}, "
            f"p50={self.percentile(0.5):.3f}ms)"
        )


class StageLatencyProcessor(TelemetryProcessor):
    """Aggregates trace events into per-stage :class:`LogHistogram`\\ s."""

    def __init__(self) -> None:
        self.histograms = {stage: LogHistogram(stage) for stage in STAGES}
        self._handlers: dict[type, Callable] = {
            NotificationReceived: self._on_ingest,
            BatchIngested: self._on_ingest,
            GraphPropagation: self._on_detect,
            ConditionEvaluated: self._on_condition,
            RuleExecution: self._on_rule,
            ShardHop: self._on_shard_hop,
            DetachedQueueWait: self._on_detached_wait,
            WireRequest: self._on_wire,
        }

    def _on_ingest(self, event: TraceEvent) -> None:
        self.histograms["ingest"].observe(event.duration_ms)

    def _on_detect(self, event: GraphPropagation) -> None:
        self.histograms["detect"].observe(event.duration_ms)

    def _on_condition(self, event: ConditionEvaluated) -> None:
        self.histograms["condition"].observe(event.duration_ms)

    def _on_rule(self, event: RuleExecution) -> None:
        action_ms = event.duration_ms - event.condition_ms - event.commit_ms
        stage = "action_async" if event.lane == "async" else "action"
        self.histograms[stage].observe(max(action_ms, 0.0))
        if event.commit_ms > 0.0:
            self.histograms["commit"].observe(event.commit_ms)

    def _on_shard_hop(self, event: ShardHop) -> None:
        self.histograms["shard_hop"].observe(event.wait_ms)

    def _on_detached_wait(self, event: DetachedQueueWait) -> None:
        self.histograms["detached_wait"].observe(event.wait_ms)

    def _on_wire(self, event: WireRequest) -> None:
        self.histograms["wire"].observe(event.duration_ms)

    def handle(self, event: TraceEvent) -> None:
        handler = self._handlers.get(type(event))
        if handler is not None:
            handler(event)

    def percentiles(self) -> dict[str, dict]:
        """p50/p95/p99 per stage, omitting stages with no samples."""
        return {
            stage: hist.summary()
            for stage, hist in self.histograms.items()
            if hist.count
        }

    def prometheus_lines(self, prefix: str = "sentinel") -> list[str]:
        """One labelled histogram family covering every sampled stage."""
        from repro.monitor.prometheus import render_histogram

        family = f"{prefix}_stage_latency_ms"
        lines: list[str] = []
        declared = False
        for stage in STAGES:
            hist = self.histograms[stage]
            if not hist.count:
                continue
            lines.extend(render_histogram(
                family, hist, labels={"stage": stage},
                declare=not declared,
            ))
            declared = True
        return lines
