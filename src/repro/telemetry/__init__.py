"""Unified telemetry: trace spans and a metrics registry.

The observability layer the paper's BEAST measurements presuppose:
every lifecycle stage of Figure 1 (notification, graph propagation,
composite detection, condition evaluation, rule subtransactions,
detached dispatch, WAL flush, buffer eviction) emits a frozen-dataclass
trace event through a :class:`TelemetryHub` to pluggable, best-effort
:class:`TelemetryProcessor`\\ s. With no processor attached the
instrumented paths reduce to a single flag check.

Quickstart::

    from repro import Sentinel
    from repro.telemetry import TraceLogProcessor

    system = Sentinel()
    trace = system.telemetry.attach(TraceLogProcessor())
    with system.transaction():
        ...                       # signal events, fire rules
    print(trace.render())         # the span tree of that transaction

See ``docs/observability.md`` for the event taxonomy and a processor
cookbook.
"""

from repro.telemetry.events import (
    ALL_EVENT_TYPES,
    BufferEviction,
    ChannelMessage,
    ConditionEvaluated,
    DetachedDispatch,
    DetachedQueueWait,
    Detection,
    GlobalDetectionDelivered,
    GlobalEventReceived,
    GlobalEventSent,
    GraphPropagation,
    NotificationReceived,
    NotificationSuppressed,
    RuleExecution,
    RuleTriggered,
    ShardHop,
    SubtransactionBoundary,
    TraceEvent,
    TransactionSpan,
    WalFlush,
    WireRequest,
)
from repro.telemetry.hub import (
    INHERIT,
    TelemetryHub,
    TelemetrySpan,
    new_trace_id,
)
from repro.telemetry.latency import (
    STAGES,
    LogHistogram,
    StageLatencyProcessor,
)
from repro.telemetry.processors import (
    Counter,
    CounterProcessor,
    Histogram,
    MetricsRegistry,
    TelemetryProcessor,
    TimingProcessor,
    TraceLogProcessor,
)

__all__ = [
    "TelemetryHub",
    "TelemetrySpan",
    "TelemetryProcessor",
    "CounterProcessor",
    "TimingProcessor",
    "TraceLogProcessor",
    "MetricsRegistry",
    "Counter",
    "Histogram",
    "LogHistogram",
    "StageLatencyProcessor",
    "STAGES",
    "new_trace_id",
    "TraceEvent",
    "ALL_EVENT_TYPES",
    "NotificationReceived",
    "NotificationSuppressed",
    "RuleTriggered",
    "DetachedDispatch",
    "DetachedQueueWait",
    "GraphPropagation",
    "Detection",
    "ShardHop",
    "WireRequest",
    "ConditionEvaluated",
    "RuleExecution",
    "SubtransactionBoundary",
    "TransactionSpan",
    "GlobalEventSent",
    "GlobalEventReceived",
    "GlobalDetectionDelivered",
    "ChannelMessage",
    "WalFlush",
    "BufferEviction",
    "INHERIT",
]
