"""Breakpoints on rule execution: the interactive half of the debugger.

The original Sentinel debugger let a developer pause and inspect rule
execution in a Motif GUI. As a library, the same capability is a hook:
a :class:`BreakpointManager` attached to a detector invokes a callback
whenever a matching rule is about to run, with full context (rule,
occurrence, depth). The callback decides how to proceed:

* ``CONTINUE`` — run the rule normally,
* ``SKIP`` — suppress this execution (condition/action do not run),
* ``ABORT`` — raise, aborting the rule's subtransaction.

Breakpoints can match a rule name, every rule on an event, or a
predicate over the occurrence.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.detector import LocalEventDetector
from repro.core.params import Occurrence
from repro.core.rules import Rule
from repro.errors import SentinelError


class BreakAction(enum.Enum):
    CONTINUE = "continue"
    SKIP = "skip"
    ABORT = "abort"


class BreakpointHit(SentinelError):
    """Raised inside the rule when the handler chooses ABORT."""


@dataclass
class Breakpoint:
    """One breakpoint definition."""

    rule_name: Optional[str] = None
    event_name: Optional[str] = None
    predicate: Optional[Callable[[Occurrence], bool]] = None
    one_shot: bool = False
    enabled: bool = True
    hits: int = 0

    def matches(self, rule: Rule, occurrence: Occurrence) -> bool:
        if not self.enabled:
            return False
        if self.rule_name is not None and rule.name != self.rule_name:
            return False
        if (self.event_name is not None
                and rule.event.display_name != self.event_name):
            return False
        if self.predicate is not None and not self.predicate(occurrence):
            return False
        return True


@dataclass
class BreakContext:
    """What the handler sees when a breakpoint fires."""

    rule: Rule
    occurrence: Occurrence
    depth: int
    breakpoint: Breakpoint


Handler = Callable[[BreakContext], BreakAction]


def _default_handler(context: BreakContext) -> BreakAction:
    return BreakAction.CONTINUE


class BreakpointManager:
    """Installs breakpoints by wrapping rule conditions at dispatch.

    Implementation: a scheduler listener sees the ``start`` phase of
    every execution; to *prevent* the condition/action from running we
    wrap the rule's condition transiently. Wrapping happens through the
    public condition attribute, so no scheduler changes are needed.
    """

    def __init__(self, detector: LocalEventDetector,
                 handler: Optional[Handler] = None):
        self._detector = detector
        self.handler: Handler = handler or _default_handler
        self.breakpoints: list[Breakpoint] = []
        self._lock = threading.Lock()
        self._attached = False
        self.history: list[BreakContext] = []

    # -- breakpoint management ----------------------------------------------------

    def break_on_rule(self, rule_name: str, one_shot: bool = False) -> Breakpoint:
        return self._add(Breakpoint(rule_name=rule_name, one_shot=one_shot))

    def break_on_event(self, event_name: str,
                       one_shot: bool = False) -> Breakpoint:
        return self._add(Breakpoint(event_name=event_name, one_shot=one_shot))

    def break_when(self, predicate: Callable[[Occurrence], bool],
                   rule_name: Optional[str] = None) -> Breakpoint:
        return self._add(Breakpoint(rule_name=rule_name, predicate=predicate))

    def _add(self, bp: Breakpoint) -> Breakpoint:
        with self._lock:
            self.breakpoints.append(bp)
        return bp

    def remove(self, bp: Breakpoint) -> None:
        with self._lock:
            if bp in self.breakpoints:
                self.breakpoints.remove(bp)

    def clear(self) -> None:
        with self._lock:
            self.breakpoints.clear()

    # -- attachment ---------------------------------------------------------------

    def attach(self) -> "BreakpointManager":
        if not self._attached:
            self._detector.scheduler.listeners.append(self._on_phase)
            self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self._detector.scheduler.listeners.remove(self._on_phase)
            self._attached = False

    def __enter__(self) -> "BreakpointManager":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- dispatch -------------------------------------------------------------------

    def _on_phase(self, phase: str, rule: Rule, occurrence: Occurrence,
                  info: dict) -> None:
        if phase != "start":
            return
        with self._lock:
            matching = [
                bp for bp in self.breakpoints if bp.matches(rule, occurrence)
            ]
        for bp in matching:
            bp.hits += 1
            if bp.one_shot:
                self.remove(bp)
            context = BreakContext(
                rule=rule,
                occurrence=occurrence,
                depth=info.get("depth", 0),
                breakpoint=bp,
            )
            self.history.append(context)
            action = self.handler(context)
            if action is BreakAction.SKIP:
                self._skip(rule)
            elif action is BreakAction.ABORT:
                self._abort(rule)

    @staticmethod
    def _skip(rule: Rule) -> None:
        """Suppress exactly one evaluation of the rule's condition."""
        original = rule.condition

        def skip_once(occurrence):
            rule.condition = original
            return False

        rule.condition = skip_once

    @staticmethod
    def _abort(rule: Rule) -> None:
        original = rule.condition

        def abort_once(occurrence):
            rule.condition = original
            raise BreakpointHit(
                f"rule {rule.name!r} aborted at breakpoint"
            )

        rule.condition = abort_once
