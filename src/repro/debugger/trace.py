"""Trace recording for the rule debugger.

Attaches to a detector's hook points and records a chronological trace
of everything the active system does: primitive occurrences, composite
detections (per node, per context), rule triggers (with the triggering
rule, capturing nested triggering), and rule executions with their
outcome.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.core.detector import LocalEventDetector


@dataclass(frozen=True)
class TraceEvent:
    """One step in the recorded trace."""

    seq: int
    kind: str  # occurrence | detection | trigger | start | condition | done | failed
    subject: str  # event or rule name
    detail: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"#{self.seq} {self.kind} {self.subject} {self.detail}"


class TraceRecorder:
    """Records a detector's activity until detached."""

    def __init__(self, detector: LocalEventDetector):
        self._detector = detector
        self.events: list[TraceEvent] = []
        self._seq = itertools.count(1)
        self._lock = threading.Lock()
        self._attached = False

    # -- lifecycle -------------------------------------------------------------

    def attach(self) -> "TraceRecorder":
        if self._attached:
            return self
        self._detector.occurrence_listeners.append(self._on_occurrence)
        self._detector.graph.observers.append(self._on_detection)
        self._detector.trigger_listeners.append(self._on_trigger)
        self._detector.scheduler.listeners.append(self._on_execution)
        self._attached = True
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        self._detector.occurrence_listeners.remove(self._on_occurrence)
        self._detector.graph.observers.remove(self._on_detection)
        self._detector.trigger_listeners.remove(self._on_trigger)
        self._detector.scheduler.listeners.remove(self._on_execution)
        self._attached = False

    def __enter__(self) -> "TraceRecorder":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    def clear(self) -> None:
        with self._lock:
            self.events.clear()

    # -- hooks -------------------------------------------------------------------

    def _record(self, kind: str, subject: str, **detail: Any) -> None:
        with self._lock:
            self.events.append(
                TraceEvent(next(self._seq), kind, subject, detail)
            )

    def _on_occurrence(self, occurrence) -> None:
        self._record(
            "occurrence",
            occurrence.event_name,
            at=occurrence.at,
            instance=occurrence.instance,
            args=dict(occurrence.arguments),
            txn=occurrence.txn_id,
        )

    def _on_detection(self, node, occurrence, ctx) -> None:
        self._record(
            "detection",
            node.display_name,
            operator=node.operator,
            context=ctx.value,
            interval=(occurrence.start, occurrence.end),
        )

    def _on_trigger(self, rule, occurrence) -> None:
        triggering = self._detector.scheduler.current_rule()
        self._record(
            "trigger",
            rule.name,
            by=triggering.name if triggering else None,
            event=rule.event.display_name,
        )

    def _on_execution(self, phase, rule, occurrence, info) -> None:
        self._record(phase, rule.name, **info)

    # -- queries -----------------------------------------------------------------------

    def of_kind(self, kind: str) -> list[TraceEvent]:
        with self._lock:
            return [e for e in self.events if e.kind == kind]

    def rule_edges(self) -> list[tuple[str, str]]:
        """(triggering rule, triggered rule) pairs from nested triggering."""
        edges = []
        for entry in self.of_kind("trigger"):
            if entry.detail.get("by"):
                edges.append((entry.detail["by"], entry.subject))
        return edges

    def objects_touched(self) -> dict[str, list[str]]:
        """instance identity -> event names it generated."""
        result: dict[str, list[str]] = {}
        for entry in self.of_kind("occurrence"):
            instance = entry.detail.get("instance")
            if instance is None:
                continue
            result.setdefault(str(instance), []).append(entry.subject)
        return result

    def __len__(self) -> int:
        with self._lock:
            return len(self.events)
