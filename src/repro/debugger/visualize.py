"""ASCII renderings for the rule debugger.

The original debugger drew the interactions "among rules, among events
and rules, and among rules and database objects" in a Motif GUI; here
the same three views render as text: the event graph (operator tree
with subscriber annotations), the execution timeline, and the rule
interaction graph.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.events.base import EventNode
from repro.core.events.graph import EventGraph
from repro.debugger.trace import TraceEvent, TraceRecorder


def render_event_graph(graph: EventGraph,
                       roots: Iterable[EventNode] | None = None) -> str:
    """Render the operator DAG as indented trees, one per root.

    Roots default to every node that has rule subscribers plus nodes
    with no event subscribers (tops of expressions). Shared
    sub-expressions are rendered once per parent with a ``(shared)``
    marker after their first appearance.
    """
    if roots is None:
        roots = [
            node for node in graph.nodes()
            if node.rule_subscribers or not node.event_subscribers
        ]
    lines: list[str] = []
    seen: set[int] = set()
    for root in roots:
        _render_node(root, "", lines, seen)
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _render_node(node: EventNode, indent: str, lines: list[str],
                 seen: set[int]) -> None:
    rules = ", ".join(r.name for r in node.rule_subscribers)
    annotations = []
    if rules:
        annotations.append(f"rules: {rules}")
    contexts = ", ".join(
        f"{ctx.value}({node.context_count(ctx)})"
        for ctx in node.active_contexts()
    )
    if contexts:
        annotations.append(f"contexts: {contexts}")
    shared = " (shared)" if id(node) in seen else ""
    seen.add(id(node))
    suffix = f"  [{'; '.join(annotations)}]" if annotations else ""
    lines.append(f"{indent}{node.operator}: {node.display_name}{shared}{suffix}")
    if not shared:
        for child in node.children:
            _render_node(child, indent + "    ", lines, seen)


def render_dot(graph: EventGraph) -> str:
    """Render the event graph in Graphviz DOT format.

    Primitive/explicit/temporal leaves are boxes, operators are
    ellipses, rules are house-shaped sinks. Paste into any DOT viewer.
    """
    lines = ["digraph sentinel_events {", "  rankdir=BT;"]
    node_ids: dict[int, str] = {}
    for index, node in enumerate(graph.nodes()):
        node_id = f"n{index}"
        node_ids[id(node)] = node_id
        shape = "box" if not node.children else "ellipse"
        label = node.display_name.replace('"', "'")
        lines.append(
            f'  {node_id} [label="{node.operator}\\n{label}" shape={shape}];'
        )
    rule_count = 0
    for node in graph.nodes():
        source = node_ids[id(node)]
        for child in node.children:
            lines.append(f"  {node_ids[id(child)]} -> {source};")
        for rule in node.rule_subscribers:
            rule_id = f"r{rule_count}"
            rule_count += 1
            lines.append(
                f'  {rule_id} [label="rule {rule.name}" shape=house '
                f"style=filled fillcolor=lightgrey];"
            )
            lines.append(f"  {source} -> {rule_id};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def render_timeline(trace: TraceRecorder | list[TraceEvent]) -> str:
    """Render the recorded trace as one line per step, nesting rule
    execution by depth."""
    events = trace.events if isinstance(trace, TraceRecorder) else trace
    lines = []
    for entry in events:
        depth = entry.detail.get("depth", 0)
        indent = "    " * depth
        if entry.kind == "occurrence":
            args = entry.detail.get("args", {})
            argtext = ", ".join(f"{k}={v!r}" for k, v in args.items())
            lines.append(f"{indent}! {entry.subject}({argtext})")
        elif entry.kind == "detection":
            lines.append(
                f"{indent}* {entry.subject} detected "
                f"[{entry.detail.get('context')}]"
            )
        elif entry.kind == "trigger":
            by = entry.detail.get("by")
            origin = f" by {by}" if by else ""
            lines.append(f"{indent}> rule {entry.subject} triggered{origin}")
        elif entry.kind == "start":
            lines.append(f"{indent}({entry.subject} begins")
        elif entry.kind == "condition":
            verdict = "true" if entry.detail.get("satisfied") else "false"
            lines.append(f"{indent} {entry.subject} condition -> {verdict}")
        elif entry.kind == "done":
            lines.append(f"{indent}){entry.subject} committed")
        elif entry.kind == "failed":
            lines.append(f"{indent})!{entry.subject} ABORTED")
    return "\n".join(lines) + ("\n" if lines else "")


def render_rule_interactions(trace: TraceRecorder) -> str:
    """Render the rule-triggers-rule graph as an adjacency listing."""
    edges = trace.rule_edges()
    executed = {e.subject for e in trace.of_kind("done")}
    triggered = {e.subject for e in trace.of_kind("trigger")}
    adjacency: dict[str, list[str]] = {}
    for source, target in edges:
        adjacency.setdefault(source, []).append(target)
    lines = ["rule interaction graph:"]
    roots = sorted(triggered - {t for __, t in edges})
    for name in roots:
        _render_interaction(name, adjacency, lines, "  ", set())
    orphans = sorted(executed - triggered)
    for name in orphans:
        lines.append(f"  {name}")
    return "\n".join(lines) + "\n"


def _render_interaction(name: str, adjacency: dict[str, list[str]],
                        lines: list[str], indent: str,
                        on_path: set[str]) -> None:
    cycle = " (cycle)" if name in on_path else ""
    lines.append(f"{indent}{name}{cycle}")
    if cycle:
        return
    for target in adjacency.get(name, []):
        _render_interaction(
            target, adjacency, lines, indent + "  -> ", on_path | {name}
        )
