"""Rule debugger: visualize event/rule/object interactions.

Reproduces the Sentinel rule debugger ([12] in the paper) as a trace
recorder plus text renderers:

* :mod:`repro.debugger.trace` — records notifications, detections,
  triggers, and executions from a live detector.
* :mod:`repro.debugger.visualize` — ASCII renderings of the event
  graph, the execution timeline, and the rule interaction graph.
"""

from repro.debugger.trace import TraceEvent, TraceRecorder
from repro.debugger.breakpoints import (
    BreakAction,
    BreakContext,
    Breakpoint,
    BreakpointHit,
    BreakpointManager,
)
from repro.debugger.visualize import (
    render_dot,
    render_event_graph,
    render_rule_interactions,
    render_timeline,
)

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "BreakAction",
    "BreakContext",
    "Breakpoint",
    "BreakpointHit",
    "BreakpointManager",
    "render_dot",
    "render_event_graph",
    "render_timeline",
    "render_rule_interactions",
]
