"""Bounded retry with exponential backoff.

Adopted by the paths where a *transient* failure should degrade
gracefully instead of killing a scheduler worker or dropping a
message: nested-lock acquisition, channel delivery, and the detached
rule queue's drain loop. By default only
:class:`~repro.faults.registry.InjectedFault` is retryable — real
errors (deadlocks, timeouts, application exceptions) propagate on the
first attempt.

``RetryPolicy.deterministic`` gives a jitter-free schedule (exact
exponential delays) so fault-injection tests replay identically;
production-style policies add ±``jitter`` fraction of uniform noise to
avoid thundering-herd wakeups.

Per-site counters feed the ``repro_retries_total`` metric family.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Tuple, Type, TypeVar

from repro.faults.registry import InjectedFault

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry a transient failure."""

    attempts: int = 3  # total tries, including the first
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.25
    jitter: float = 0.25  # ± fraction of the delay
    deterministic: bool = False  # jitter-free exponential schedule

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")

    def delay(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        raw = min(
            self.max_delay,
            self.base_delay * self.multiplier ** (attempt - 1),
        )
        if self.deterministic or self.jitter <= 0:
            return raw
        spread = raw * self.jitter
        return max(0.0, raw + random.uniform(-spread, spread))


DEFAULT_POLICY = RetryPolicy()
#: used by instrumented runtime paths: fast, deterministic, bounded
DETERMINISTIC_POLICY = RetryPolicy(
    attempts=4, base_delay=0.001, max_delay=0.05, deterministic=True
)

_lock = threading.Lock()
_counters: dict[str, dict[str, int]] = {}


def _bump(site: str, key: str) -> None:
    with _lock:
        row = _counters.setdefault(
            site, {"calls": 0, "retries": 0, "giveups": 0}
        )
        row[key] += 1


def retry_counters() -> dict[str, dict[str, int]]:
    """Per-site calls/retries/giveups (``repro_retries_total`` source)."""
    with _lock:
        return {site: dict(row) for site, row in _counters.items()}


def reset_counters() -> None:
    with _lock:
        _counters.clear()


def call_with_retry(
    fn: Callable[[], T],
    *,
    site: str = "default",
    policy: RetryPolicy = DEFAULT_POLICY,
    retry_on: Tuple[Type[BaseException], ...] = (InjectedFault,),
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn``; back off and re-try on a retryable failure.

    Exceptions outside ``retry_on`` propagate immediately; the last
    retryable failure propagates after ``policy.attempts`` tries.
    """
    _bump(site, "calls")
    attempt = 1
    while True:
        try:
            return fn()
        except retry_on:
            if attempt >= policy.attempts:
                _bump(site, "giveups")
                raise
            _bump(site, "retries")
            sleep(policy.delay(attempt))
            attempt += 1
