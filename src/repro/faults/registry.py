"""Process-wide deterministic fault-point registry.

Instrumented code declares named *fault points* (``wal.fsync.pre``,
``recovery.undo.clr``, ...) at import time and hits them at runtime.
Tests and the crash-sweep harness *arm* a point with a trigger policy —
nth-hit, every-kth, probability-with-seed — and an action:

* ``"fault"`` — raise :class:`InjectedFault`, a transient, retryable
  error (the kind :mod:`repro.faults.retry` absorbs);
* ``"crash"`` — raise :class:`InjectedCrash`, simulating process death
  (a ``BaseException`` so generic error handling cannot swallow it);
* any callable — invoked with the point name (e.g. to truncate a file
  before raising, simulating power loss of un-fsynced writes).

Zero overhead when disabled: instrumented call sites are gated on the
module-level :data:`ENABLED` flag (the same pattern as the telemetry
hub's ``active`` gate), so the disabled hot path costs one module
attribute read and a branch. ``ENABLED`` flips to true only while at
least one rule is armed.

All trigger policies are deterministic: hit counters are per armed
rule, and ``probability`` draws from a private ``random.Random(seed)``,
so a seeded run injects at exactly the same hits every time.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Union

from repro.errors import SentinelError

#: Module-level gate read by instrumented call sites
#: (``if registry.ENABLED: registry.fault_point(...)``). True iff at
#: least one rule is armed.
ENABLED = False


class InjectedFault(SentinelError):
    """A transient, retryable failure raised at an armed fault point."""

    def __init__(self, point: str):
        super().__init__(f"injected fault at {point!r}")
        self.point = point


class InjectedCrash(BaseException):
    """Simulated process death at a fault point.

    Deliberately *not* an :class:`Exception`: ``except Exception``
    error handling (rule schedulers, queue drain loops, telemetry
    dispatch) must not swallow a simulated crash — it has to unwind
    the whole stack exactly like ``kill -9`` would take the process.
    """

    def __init__(self, point: str):
        super().__init__(f"injected crash at {point!r}")
        self.point = point


@dataclass
class FaultRule:
    """One armed trigger policy + action at one point.

    Exactly one of ``nth`` (fire on that hit only), ``every`` (fire on
    every kth hit) or ``probability`` (seeded coin flip per hit) may be
    set; with none set the rule fires on every hit. ``times`` bounds
    the total number of injections (``None`` = unbounded).
    """

    point: str
    action: Union[str, Callable[[str], None]] = "fault"
    nth: Optional[int] = None
    every: Optional[int] = None
    probability: Optional[float] = None
    seed: int = 0
    times: Optional[int] = None
    exc: Optional[Callable[[str], BaseException]] = None
    hits: int = 0
    fired: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        chosen = [p for p in (self.nth, self.every, self.probability)
                  if p is not None]
        if len(chosen) > 1:
            raise ValueError(
                "arm one trigger policy: nth, every or probability"
            )
        if self.nth is not None and self.nth < 1:
            raise ValueError(f"nth must be >= 1, got {self.nth}")
        if self.every is not None and self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if isinstance(self.action, str) and self.action not in (
            "fault", "crash"
        ):
            raise ValueError(
                f"action must be 'fault', 'crash' or a callable, "
                f"got {self.action!r}"
            )
        self._rng = random.Random(self.seed)

    def decide(self) -> bool:
        """Count a hit; True iff the rule fires on it."""
        self.hits += 1
        if self.times is not None and self.fired >= self.times:
            return False
        if self.nth is not None:
            fire = self.hits == self.nth
        elif self.every is not None:
            fire = self.hits % self.every == 0
        elif self.probability is not None:
            fire = self._rng.random() < self.probability
        else:
            fire = True
        if fire:
            self.fired += 1
        return fire


_lock = threading.RLock()
_declared: dict[str, str] = {}  # point name -> group
_rules: dict[str, FaultRule] = {}
_hits: dict[str, int] = {}  # hits observed while injection was enabled
_injected: dict[str, int] = {}  # injections raised, per point


def declare(*names: str, group: str = "general") -> None:
    """Register fault-point site names (idempotent, import-time)."""
    with _lock:
        for name in names:
            _declared.setdefault(name, group)


def registered(group: Optional[str] = None) -> list[str]:
    """All declared point names, optionally filtered by group."""
    with _lock:
        if group is None:
            return sorted(_declared)
        return sorted(n for n, g in _declared.items() if g == group)


def _refresh_gate() -> None:
    global ENABLED
    ENABLED = bool(_rules)


def arm(
    point: str,
    *,
    action: Union[str, Callable[[str], None]] = "fault",
    nth: Optional[int] = None,
    every: Optional[int] = None,
    probability: Optional[float] = None,
    seed: int = 0,
    times: Optional[int] = None,
    exc: Optional[Callable[[str], BaseException]] = None,
) -> FaultRule:
    """Arm ``point`` with a trigger policy; enables the global gate."""
    rule = FaultRule(
        point=point, action=action, nth=nth, every=every,
        probability=probability, seed=seed, times=times, exc=exc,
    )
    with _lock:
        _declared.setdefault(point, "general")
        _rules[point] = rule
        _refresh_gate()
    return rule


def disarm(point: Optional[str] = None) -> None:
    """Remove one armed rule (or all of them); may disable the gate."""
    with _lock:
        if point is None:
            _rules.clear()
        else:
            _rules.pop(point, None)
        _refresh_gate()


def reset() -> None:
    """Disarm everything and zero all counters (test/harness hygiene)."""
    with _lock:
        _rules.clear()
        _hits.clear()
        _injected.clear()
        _refresh_gate()


def rules() -> dict[str, FaultRule]:
    with _lock:
        return dict(_rules)


def hit_counts() -> dict[str, int]:
    """Hits per point observed while the gate was enabled."""
    with _lock:
        return dict(_hits)


def injected_counts() -> dict[str, int]:
    """Injections (faults, crashes, callables) raised per point."""
    with _lock:
        return dict(_injected)


def fault_point(name: str) -> None:
    """An instrumented site: count the hit, apply any armed rule.

    Near-noop when nothing is armed; call sites additionally gate on
    :data:`ENABLED` so the disabled path never pays the function call.
    """
    if not ENABLED:
        return
    with _lock:
        _hits[name] = _hits.get(name, 0) + 1
        rule = _rules.get(name)
        if rule is None or not rule.decide():
            return
        _injected[name] = _injected.get(name, 0) + 1
        action = rule.action
        exc_factory = rule.exc
    if action == "crash":
        raise InjectedCrash(name)
    if action == "fault":
        raise exc_factory(name) if exc_factory else InjectedFault(name)
    action(name)


@contextmanager
def armed(point: str, **kwargs) -> Iterator[FaultRule]:
    """``with armed("wal.fsync.pre", action="crash"):`` — scoped arm."""
    rule = arm(point, **kwargs)
    try:
        yield rule
    finally:
        disarm(point)
