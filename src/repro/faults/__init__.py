"""Deterministic fault injection and crash-recovery torture tooling.

Three pieces:

* :mod:`repro.faults.registry` — named fault points wired through the
  storage stack, the nested-transaction commit/abort path, the
  detached-rule queue and globaldet channels, with deterministic
  trigger policies (nth-hit, every-kth, probability-with-seed);
* :mod:`repro.faults.retry` — bounded exponential-backoff retry used
  where transient injected faults must degrade gracefully;
* :mod:`repro.faults.harness` — the canonical workload, shadow-state
  oracle and crash-point sweep driven by ``tools/crash_sweep.py`` and
  ``tests/faults/``.

Instrumented call sites gate on ``registry.ENABLED`` (a module flag,
same pattern as the telemetry zero-processor guard), so the whole
subsystem is a near-noop unless a test or operator arms a point.
"""

from repro.faults.registry import (
    FaultRule,
    InjectedCrash,
    InjectedFault,
    arm,
    armed,
    declare,
    disarm,
    fault_point,
    hit_counts,
    injected_counts,
    registered,
    reset,
    rules,
)
from repro.faults.retry import (
    DEFAULT_POLICY,
    DETERMINISTIC_POLICY,
    RetryPolicy,
    call_with_retry,
    reset_counters,
    retry_counters,
)

__all__ = [
    "FaultRule",
    "InjectedCrash",
    "InjectedFault",
    "arm",
    "armed",
    "declare",
    "disarm",
    "fault_point",
    "hit_counts",
    "injected_counts",
    "registered",
    "reset",
    "rules",
    "DEFAULT_POLICY",
    "DETERMINISTIC_POLICY",
    "RetryPolicy",
    "call_with_retry",
    "reset_counters",
    "retry_counters",
]
