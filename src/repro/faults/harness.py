"""Crash-point sweep harness: one workload, every fault point, one oracle.

For each registered storage fault point the sweep runs a canonical
multi-transaction workload against a fresh :class:`StorageManager`,
crashes at the armed point (an :class:`InjectedCrash` at its first
hit), abandons the manager exactly as ``kill -9`` would, reopens the
directory so recovery runs — re-crashing if the point lives inside
recovery itself — and then checks the invariant oracle:

* **atomicity** — the visible state equals the shadow oracle's acked
  state, or acked state plus the one commit that was in flight at the
  crash (either outcome is correct; a torn transaction is not);
* **page-LSN sanity** — no page claims an LSN the durable log has
  never issued;
* **recovery idempotence** — closing cleanly and recovering again is a
  no-op: zero records undone, zero losers, identical state.

The workload is deliberately shaped to reach every storage point:
inserts, updates and deletes across several transactions; an explicit
abort (undo CLRs); a checkpoint (page flush + redo cut); enough padded
inserts to force buffer evictions through a 4-frame pool; and a loser
transaction whose mutations are WAL-durable but uncommitted, so every
reopen exercises analysis, redo and undo.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import SentinelError
from repro.faults import registry as faults
from repro.faults.registry import InjectedCrash
from repro.storage.manager import StorageManager

#: pool small enough that the padded inserts force evictions
POOL_SIZE = 4
_PAD = "x" * 700


class SweepViolation(SentinelError):
    """An invariant the crash sweep found broken after recovery."""


@dataclass
class SweepResult:
    """Outcome of sweeping one fault point."""

    point: str
    #: the armed point actually injected its crash
    fired: bool
    #: where the crash landed: "workload", "reopen" (i.e. during
    #: recovery), or "none" if the workload never hit the point
    crash_phase: str
    #: committed state visible after recovery
    state: dict[str, Any] = field(default_factory=dict)


class ShadowOracle:
    """In-memory mirror of what the database *must* show after a crash.

    Mutations are staged per transaction and applied to ``expected``
    only when the commit is acknowledged. While a commit is in flight
    (``begin_commit`` called, ack not yet recorded) the crash may land
    on either side of the durability point, so :meth:`candidates`
    returns both legal states; anything else is a torn transaction.
    """

    def __init__(self) -> None:
        self.expected: dict[str, Any] = {}
        self._staged: dict[int, list[tuple[str, str, Any]]] = {}
        self.inflight: Optional[int] = None

    def begin(self, txn_id: int) -> None:
        self._staged[txn_id] = []

    def stage(self, txn_id: int, op: str, key: str,
              value: Any = None) -> None:
        self._staged[txn_id].append((op, key, value))

    def begin_commit(self, txn_id: int) -> None:
        self.inflight = txn_id

    def ack_commit(self, txn_id: int) -> None:
        for op, key, value in self._staged.pop(txn_id, []):
            if op == "delete":
                self.expected.pop(key, None)
            else:
                self.expected[key] = value
        self.inflight = None

    def drop(self, txn_id: int) -> None:
        """The transaction aborted; its staged work never applies."""
        self._staged.pop(txn_id, None)

    def candidates(self) -> list[dict[str, Any]]:
        """Every state recovery is allowed to leave behind."""
        states = [dict(self.expected)]
        if self.inflight is not None and self.inflight in self._staged:
            alt = dict(self.expected)
            for op, key, value in self._staged[self.inflight]:
                if op == "delete":
                    alt.pop(key, None)
                else:
                    alt[key] = value
            states.append(alt)
        return states


def canonical_workload(manager: StorageManager,
                       oracle: ShadowOracle) -> None:
    """The fixed multi-transaction script every sweep point replays.

    Oracle staging always happens *after* the storage call returns, so
    a crash inside the call leaves the oracle reflecting only what was
    acknowledged — exactly the caller's view at a real crash.
    """
    rids: dict[str, Any] = {}

    def record(key: str, value: Any, pad: str = "") -> dict[str, Any]:
        return {"k": key, "v": value, "pad": pad}

    t1 = manager.begin()
    oracle.begin(t1.txn_id)
    for i in range(3):
        rids[f"a{i}"] = manager.insert(t1, record(f"a{i}", i))
        oracle.stage(t1.txn_id, "insert", f"a{i}", i)
    oracle.begin_commit(t1.txn_id)
    manager.commit(t1)
    oracle.ack_commit(t1.txn_id)

    t2 = manager.begin()
    oracle.begin(t2.txn_id)
    manager.update(t2, rids["a1"], record("a1", 10))
    oracle.stage(t2.txn_id, "update", "a1", 10)
    manager.delete(t2, rids["a2"])
    oracle.stage(t2.txn_id, "delete", "a2")
    rids["b0"] = manager.insert(t2, record("b0", 5))
    oracle.stage(t2.txn_id, "insert", "b0", 5)
    oracle.begin_commit(t2.txn_id)
    manager.commit(t2)
    oracle.ack_commit(t2.txn_id)

    # An aborted transaction: exercises the undo path and its CLRs.
    t3 = manager.begin()
    oracle.begin(t3.txn_id)
    manager.update(t3, rids["a0"], record("a0", 99))
    manager.insert(t3, record("c0", 1))
    manager.abort(t3)
    oracle.drop(t3.txn_id)

    manager.checkpoint()

    # Padded inserts overflow the 4-frame pool: ~5 records fit a 4 KiB
    # page, so 32 of them spread over 6+ pages and force evictions.
    t4 = manager.begin()
    oracle.begin(t4.txn_id)
    for i in range(32):
        rids[f"d{i}"] = manager.insert(t4, record(f"d{i}", i, pad=_PAD))
        oracle.stage(t4.txn_id, "insert", f"d{i}", i)
    oracle.begin_commit(t4.txn_id)
    manager.commit(t4)
    oracle.ack_commit(t4.txn_id)

    # The loser: WAL-durable mutations, never committed. Guarantees
    # every reopen has analysis, redo and undo work to do.
    t5 = manager.begin()
    oracle.begin(t5.txn_id)
    manager.update(t5, rids["a0"], record("a0", 777))
    manager.insert(t5, record("e0", 0))
    manager.wal.flush()


def abandon(manager: StorageManager) -> None:
    """Drop the manager the way ``kill -9`` would: nothing flushed."""
    manager.simulate_crash()


def snapshot_state(manager: StorageManager) -> dict[str, Any]:
    """The committed key->value view a fresh reader sees."""
    txn = manager.begin()
    state: dict[str, Any] = {}
    try:
        for _rid, value in manager.scan(txn):
            state[value["k"]] = value["v"]
    finally:
        manager.abort(txn)
    return state


def verify_invariants(directory, oracle: ShadowOracle,
                      durability: str = "fsync") -> dict[str, Any]:
    """Reopen ``directory`` and check the post-recovery invariants.

    Returns the recovered state. Raises :class:`SweepViolation` on any
    broken invariant. Injection must already be disarmed.
    """
    manager = StorageManager(directory, pool_size=POOL_SIZE,
                             durability=durability)
    try:
        state = snapshot_state(manager)
        legal = oracle.candidates()
        if state not in legal:
            raise SweepViolation(
                f"recovered state {state!r} matches none of the legal "
                f"outcomes {legal!r}"
            )
        next_lsn = manager.wal.next_lsn
        for page_id in manager._heap.pages:  # noqa: SLF001 - oracle access
            lsn = manager._heap.page_lsn(page_id)  # noqa: SLF001
            if lsn >= next_lsn:
                raise SweepViolation(
                    f"page {page_id} carries lsn {lsn} but the durable "
                    f"log only reaches {next_lsn - 1}"
                )
    finally:
        manager.close()

    # Recovery idempotence: a clean close leaves nothing to redo or
    # undo, and running recovery again must not change the state.
    again = StorageManager(directory, pool_size=POOL_SIZE,
                           durability=durability)
    try:
        report = again.last_recovery
        if report.undone != 0 or report.losers:
            raise SweepViolation(
                f"recovery is not idempotent: second pass undid "
                f"{report.undone} records, losers={report.losers}"
            )
        second = snapshot_state(again)
        if second != state:
            raise SweepViolation(
                f"second recovery changed the state: {state!r} -> "
                f"{second!r}"
            )
    finally:
        again.close()
    return state


def sweep_point(point: str, directory,
                durability: str = "fsync") -> SweepResult:
    """Crash at ``point``, recover, verify. ``directory`` must be fresh."""
    faults.reset()
    faults.arm(point, action="crash", nth=1)
    oracle = ShadowOracle()
    crash_phase = "none"
    try:
        try:
            manager = StorageManager(directory, pool_size=POOL_SIZE,
                                     durability=durability)
        except InjectedCrash:
            manager = None
            crash_phase = "open"
        if manager is not None:
            try:
                canonical_workload(manager, oracle)
            except InjectedCrash:
                crash_phase = "workload"
            abandon(manager)

        # Reopen until recovery gets through — a point inside recovery
        # crashes the first reopen (sometimes several, with richer
        # policies than nth=1), which is exactly the crash-during-
        # recovery case the CLR chain exists for.
        for _ in range(8):
            try:
                reopened = StorageManager(directory, pool_size=POOL_SIZE,
                                          durability=durability)
                break
            except InjectedCrash:
                crash_phase = "reopen"
        else:
            raise SweepViolation(
                f"recovery never completed while {point!r} was armed"
            )
        fired = faults.injected_counts().get(point, 0) > 0
        abandon(reopened)
    finally:
        faults.reset()

    state = verify_invariants(directory, oracle, durability=durability)
    return SweepResult(point=point, fired=fired, crash_phase=crash_phase,
                       state=state)
