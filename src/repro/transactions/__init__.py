"""Nested transactions for concurrent rule execution.

Sentinel layered its own nested transaction manager (Badani's thesis,
[2] in the paper) *above* Exodus: Exodus handles top-level transactions,
while each triggered rule's condition+action pair runs as a
*subtransaction* with locks managed by a dedicated nested lock manager
following Moss's rules (a subtransaction may acquire a lock its
ancestors hold; on commit its locks are inherited by the parent; on
abort they are released and its effects undone).

* :mod:`repro.transactions.locks` — the nested (ancestor-aware) lock
  manager.
* :mod:`repro.transactions.nested` — the transaction tree and manager.
"""

from repro.transactions.locks import NestedLockManager
from repro.transactions.nested import (
    NestedTransaction,
    NestedTransactionManager,
    TxnState,
)

__all__ = [
    "NestedLockManager",
    "NestedTransaction",
    "NestedTransactionManager",
    "TxnState",
]
