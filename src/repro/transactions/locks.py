"""Nested lock manager: Moss locking rules for transaction trees.

Differences from the flat storage-layer lock manager:

* A requester does not conflict with locks held by its *ancestors* —
  a rule subtransaction may freely touch objects its triggering
  transaction already locked.
* ``inherit_to_parent`` moves a committing subtransaction's locks up to
  its parent ("anti-inheritance"), so siblings still conflict until the
  whole tree commits.
* Deadlock handling is by timeout plus waits-for cycle detection, with
  the deepest transaction on the cycle chosen as victim (cheapest to
  redo).
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Optional

from repro.errors import DeadlockError, LockTimeout
from repro.faults import registry as faults
from repro.storage.locks import LockMode

if TYPE_CHECKING:
    from repro.transactions.nested import NestedTransaction

faults.declare("nlocks.acquire.pre", group="transactions")


def _compatible(held: LockMode, requested: LockMode) -> bool:
    return held is LockMode.SHARED and requested is LockMode.SHARED


@dataclass
class _ResourceState:
    holders: dict["NestedTransaction", LockMode] = field(default_factory=dict)


class NestedLockManager:
    """S/X locks over a transaction tree."""

    def __init__(self, timeout: float = 10.0):
        self._timeout = timeout
        self._mutex = threading.Lock()
        self._condition = threading.Condition(self._mutex)
        self._resources: dict[Hashable, _ResourceState] = defaultdict(_ResourceState)
        self._held: dict["NestedTransaction", set[Hashable]] = defaultdict(set)
        self._waits_for: dict["NestedTransaction", set["NestedTransaction"]] = {}
        self._victims: set["NestedTransaction"] = set()

    # -- acquisition -----------------------------------------------------------

    def acquire(
        self,
        txn: "NestedTransaction",
        resource: Hashable,
        mode: LockMode,
        timeout: Optional[float] = None,
    ) -> None:
        if faults.ENABLED:
            faults.fault_point("nlocks.acquire.pre")
        budget = self._timeout if timeout is None else timeout
        with self._condition:
            state = self._resources[resource]
            # Monotonic deadline (never wall-clock): a clock step must
            # not stretch or shrink the wait, and the waits-for graph
            # is re-checked after every wake — including the final one
            # — so an expiring timeout cannot mask a detectable
            # deadlock.
            deadline = time.monotonic() + budget
            while True:
                if txn in self._victims:
                    self._victims.discard(txn)
                    self._waits_for.pop(txn, None)
                    raise DeadlockError(
                        f"{txn} chosen as deadlock victim on {resource!r}"
                    )
                blockers = self._blockers(state, txn, mode)
                if not blockers:
                    self._grant(state, txn, resource, mode)
                    self._waits_for.pop(txn, None)
                    return
                self._waits_for[txn] = blockers
                victim = self._detect_cycle(txn)
                if victim is not None:
                    if victim is txn:
                        self._waits_for.pop(txn, None)
                        raise DeadlockError(
                            f"{txn} chosen as deadlock victim on {resource!r}"
                        )
                    self._victims.add(victim)
                    self._condition.notify_all()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._waits_for.pop(txn, None)
                    raise LockTimeout(
                        f"{txn} timed out waiting for {resource!r}"
                    )
                self._condition.wait(min(remaining, 0.05))

    def _blockers(
        self, state: _ResourceState, txn: "NestedTransaction", mode: LockMode
    ) -> set["NestedTransaction"]:
        """Holders that conflict with this request, ancestors excluded."""
        ancestors = txn.ancestry()
        blockers = set()
        for holder, held in state.holders.items():
            if holder is txn or holder in ancestors:
                continue
            if not _compatible(held, mode) or not _compatible(mode, held):
                if mode is LockMode.EXCLUSIVE or held is LockMode.EXCLUSIVE:
                    blockers.add(holder)
        return blockers

    def _grant(
        self,
        state: _ResourceState,
        txn: "NestedTransaction",
        resource: Hashable,
        mode: LockMode,
    ) -> None:
        held = state.holders.get(txn)
        if held is LockMode.EXCLUSIVE:
            pass
        elif held is LockMode.SHARED and mode is LockMode.EXCLUSIVE:
            state.holders[txn] = LockMode.EXCLUSIVE
        elif held is None:
            state.holders[txn] = mode
        self._held[txn].add(resource)

    # -- deadlock ---------------------------------------------------------------

    def _detect_cycle(
        self, start: "NestedTransaction"
    ) -> Optional["NestedTransaction"]:
        path: list["NestedTransaction"] = []
        on_path: set["NestedTransaction"] = set()

        def dfs(node):
            path.append(node)
            on_path.add(node)
            for nxt in self._waits_for.get(node, ()):
                if nxt in on_path:
                    return path[path.index(nxt):]
                found = dfs(nxt)
                if found is not None:
                    return found
            path.pop()
            on_path.discard(node)
            return None

        cycle = dfs(start)
        if cycle is None:
            return None
        # Deepest transaction is the cheapest victim (least work redone).
        return max(cycle, key=lambda t: (t.depth, t.txn_id))

    # -- release / inheritance -------------------------------------------------------

    def inherit_to_parent(self, txn: "NestedTransaction") -> None:
        """Move a committing subtransaction's locks to its parent."""
        parent = txn.parent
        if parent is None:
            self.release_all(txn)
            return
        with self._condition:
            for resource in self._held.pop(txn, set()):
                state = self._resources.get(resource)
                if state is None:
                    continue
                mode = state.holders.pop(txn, None)
                if mode is None:
                    continue
                parent_mode = state.holders.get(parent)
                if parent_mode is None or (
                    parent_mode is LockMode.SHARED and mode is LockMode.EXCLUSIVE
                ):
                    state.holders[parent] = mode
                self._held[parent].add(resource)
            self._waits_for.pop(txn, None)
            self._condition.notify_all()

    def release_all(self, txn: "NestedTransaction") -> None:
        with self._condition:
            for resource in self._held.pop(txn, set()):
                state = self._resources.get(resource)
                if state is None:
                    continue
                state.holders.pop(txn, None)
                if not state.holders:
                    del self._resources[resource]
            self._waits_for.pop(txn, None)
            self._victims.discard(txn)
            self._condition.notify_all()

    # -- introspection ------------------------------------------------------------------

    def holds(
        self, txn: "NestedTransaction", resource: Hashable
    ) -> Optional[LockMode]:
        with self._mutex:
            state = self._resources.get(resource)
            if state is None:
                return None
            return state.holders.get(txn)

    def retained_by(self, txn: "NestedTransaction") -> set[Hashable]:
        with self._mutex:
            return set(self._held.get(txn, set()))
