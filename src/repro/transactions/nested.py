"""Nested transaction trees for rule execution.

Each triggered rule's condition+action pair is packaged into a
*subtransaction* of the triggering transaction (paper, Fig. 3). The tree
supports arbitrary depth (nested rule triggering), per-subtransaction
locks via :class:`~repro.transactions.locks.NestedLockManager`, and
rollback of a subtransaction's in-memory object effects.

Subtransaction *recovery* against the storage manager was explicitly
future work in the paper ("Implementation of recovery for the nested
subtransactions requires considerable enhancements to the Exodus
storage manager"); we go one step further than the original and provide
object-level undo: ``protect(obj)`` snapshots an object's persistent
state so an aborting subtransaction restores it — enough for rules to
be all-or-nothing over the objects they touch.
"""

from __future__ import annotations

import enum
import itertools
import threading
from typing import Any, Callable, Hashable, Iterator, Optional

from repro.errors import InvalidTransactionState
from repro.faults import registry as faults
from repro.faults.retry import DETERMINISTIC_POLICY, call_with_retry
from repro.storage.locks import LockMode
from repro.telemetry.events import SubtransactionBoundary
from repro.telemetry.hub import TelemetryHub
from repro.transactions.locks import NestedLockManager

faults.declare("ntxn.commit.pre", "ntxn.abort.pre", group="transactions")


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class NestedTransaction:
    """A node in a transaction tree.

    The root corresponds to a top-level (Exodus/OODB) transaction; every
    other node is a rule subtransaction. A parent with live children
    must not commit — the scheduler joins rule threads first, and the
    manager enforces it.
    """

    def __init__(
        self,
        txn_id: int,
        manager: "NestedTransactionManager",
        parent: Optional["NestedTransaction"] = None,
        label: str = "",
        top_level_id: Optional[int] = None,
    ):
        self.txn_id = txn_id
        self.manager = manager
        self.parent = parent
        self.label = label
        self.top_level_id = top_level_id if top_level_id is not None else (
            parent.top_level_id if parent else txn_id
        )
        self.state = TxnState.ACTIVE
        self.children: list["NestedTransaction"] = []
        self.depth = 0 if parent is None else parent.depth + 1
        self._undo: list[Callable[[], None]] = []
        self._protected: dict[int, tuple[Any, dict]] = {}
        self._lock = threading.Lock()

    # -- tree ----------------------------------------------------------------

    def ancestry(self) -> set["NestedTransaction"]:
        """All strict ancestors of this transaction."""
        result = set()
        node = self.parent
        while node is not None:
            result.add(node)
            node = node.parent
        return result

    def root(self) -> "NestedTransaction":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def live_children(self) -> list["NestedTransaction"]:
        with self._lock:
            return [c for c in self.children if c.state is TxnState.ACTIVE]

    # -- locking ---------------------------------------------------------------

    def lock_shared(self, resource: Hashable) -> None:
        self.require_active()
        self._acquire(resource, LockMode.SHARED)

    def lock_exclusive(self, resource: Hashable) -> None:
        self.require_active()
        self._acquire(resource, LockMode.EXCLUSIVE)

    def _acquire(self, resource: Hashable, mode: LockMode) -> None:
        # Transient injected faults at the lock site are absorbed by a
        # bounded deterministic retry instead of killing the rule's
        # scheduler worker; real failures (deadlock, timeout) still
        # propagate on the first attempt. With injection disabled this
        # is the plain acquisition path — no wrapper, no closure.
        if faults.ENABLED:
            call_with_retry(
                lambda: self.manager.locks.acquire(self, resource, mode),
                site="nested.lock", policy=DETERMINISTIC_POLICY,
            )
        else:
            self.manager.locks.acquire(self, resource, mode)

    # -- undo ---------------------------------------------------------------------

    def record_undo(self, undo: Callable[[], None]) -> None:
        """Register a compensation to run if this subtransaction aborts."""
        self.require_active()
        with self._lock:
            self._undo.append(undo)

    def protect(self, obj: Any) -> None:
        """Snapshot ``obj`` so an abort restores its attributes.

        Uses ``persistent_state``/``load_state`` when available (all
        :class:`~repro.oodb.object_model.Persistent` objects), falling
        back to ``vars``.
        """
        self.require_active()
        key = id(obj)
        with self._lock:
            if key in self._protected:
                return
            if hasattr(obj, "persistent_state"):
                snapshot = dict(obj.persistent_state())
            else:
                snapshot = dict(vars(obj))
            self._protected[key] = (obj, snapshot)

    def _apply_undo(self) -> None:
        with self._lock:
            undo = list(self._undo)
            protected = list(self._protected.values())
            self._undo.clear()
            self._protected.clear()
        for undo_fn in reversed(undo):
            undo_fn()
        for obj, snapshot in protected:
            if hasattr(obj, "load_state"):
                # Drop attributes the transaction added, then restore.
                for key in [k for k in vars(obj) if not k.startswith("_")]:
                    if key not in snapshot:
                        delattr(obj, key)
                obj.load_state(snapshot)
            else:
                vars(obj).clear()
                vars(obj).update(snapshot)

    def _merge_into_parent(self) -> None:
        """On commit, effects move up: parent abort must undo them too."""
        if self.parent is None:
            return
        with self._lock:
            undo = list(self._undo)
            protected = dict(self._protected)
            self._undo.clear()
            self._protected.clear()
        with self.parent._lock:
            self.parent._undo.extend(undo)
            for key, (obj, snapshot) in protected.items():
                self.parent._protected.setdefault(key, (obj, snapshot))

    # -- completion -------------------------------------------------------------------

    def commit(self) -> None:
        self.manager.commit(self)

    def abort(self) -> None:
        self.manager.abort(self)

    def require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise InvalidTransactionState(f"{self} is {self.state.value}")

    def __repr__(self) -> str:
        tag = self.label or ("top" if self.parent is None else "sub")
        return f"ntxn({self.txn_id}:{tag}@d{self.depth})"


class NestedTransactionManager:
    """Creates and completes transaction trees."""

    def __init__(self, lock_timeout: float = 10.0,
                 telemetry: Optional[TelemetryHub] = None):
        self.locks = NestedLockManager(timeout=lock_timeout)
        self.telemetry = telemetry if telemetry is not None else TelemetryHub()
        self._ids = itertools.count(1)
        self._roots: dict[int, NestedTransaction] = {}
        self._mutex = threading.Lock()

    def _trace(self, kind: str, txn: NestedTransaction) -> None:
        self.telemetry.point(
            SubtransactionBoundary, kind=kind, txn_id=txn.txn_id,
            label=txn.label, depth=txn.depth,
        )

    # -- creation -----------------------------------------------------------------

    def begin_top(
        self, label: str = "", top_level_id: Optional[int] = None
    ) -> NestedTransaction:
        """Start a tree root (paired with a top-level OODB transaction)."""
        with self._mutex:
            txn = NestedTransaction(
                next(self._ids), self, parent=None, label=label,
                top_level_id=top_level_id,
            )
            self._roots[txn.txn_id] = txn
            return txn

    def begin_sub(
        self, parent: NestedTransaction, label: str = ""
    ) -> NestedTransaction:
        """Spawn a subtransaction (a rule execution) under ``parent``."""
        parent.require_active()
        with self._mutex:
            txn = NestedTransaction(next(self._ids), self, parent=parent, label=label)
        with parent._lock:
            parent.children.append(txn)
        if self.telemetry.active:
            self._trace("begin", txn)
        return txn

    # -- completion -----------------------------------------------------------------

    def commit(self, txn: NestedTransaction) -> None:
        txn.require_active()
        if faults.ENABLED:
            faults.fault_point("ntxn.commit.pre")
        live = txn.live_children()
        if live:
            raise InvalidTransactionState(
                f"{txn} cannot commit with live children {live}"
            )
        txn._merge_into_parent()
        txn.state = TxnState.COMMITTED
        self.locks.inherit_to_parent(txn)
        if txn.parent is None:
            with self._mutex:
                self._roots.pop(txn.txn_id, None)
        elif self.telemetry.active:
            self._trace("commit", txn)

    def abort(self, txn: NestedTransaction) -> None:
        txn.require_active()
        if faults.ENABLED:
            faults.fault_point("ntxn.abort.pre")
        # Abort cascades down: live children go first, deepest first.
        for child in txn.live_children():
            self.abort(child)
        txn._apply_undo()
        txn.state = TxnState.ABORTED
        self.locks.release_all(txn)
        if txn.parent is None:
            with self._mutex:
                self._roots.pop(txn.txn_id, None)
        elif self.telemetry.active:
            self._trace("abort", txn)

    # -- introspection ------------------------------------------------------------------

    def active_roots(self) -> list[NestedTransaction]:
        with self._mutex:
            return list(self._roots.values())

    def tree(self, root: NestedTransaction) -> Iterator[NestedTransaction]:
        """Depth-first walk of a transaction tree."""
        yield root
        for child in list(root.children):
            yield from self.tree(child)
