"""Workload generation for the benchmark harness.

The paper reports no quantitative evaluation, so the benchmarks adopt
the BEAST methodology (the designer's benchmark for active DBMSs from
the same research community): synthetic reactive schemas, event
streams, and rule populations with controllable shape. Everything here
is seeded and deterministic.
"""

from repro.bench.record import load, provenance, record
from repro.bench.workload import (
    EventStream,
    ReactiveSchema,
    RulePopulation,
    make_expression,
)

__all__ = [
    "ReactiveSchema",
    "EventStream",
    "RulePopulation",
    "make_expression",
    "record",
    "load",
    "provenance",
]
