"""The shared benchmark-result writer.

Every benchmark that persists numbers appends schema-versioned entries
to a ``BENCH_*.json`` file at the repo root through :func:`record`, so
all trajectory files carry the same shape and the same provenance —
git SHA, UTC timestamp, Python version, host — and the regression gate
(:mod:`repro.bench.trajectory`) can read any of them.

An entry::

    {
      "schema": 1,
      "recorded_at": "2026-08-08T12:00:00Z",
      "benchmark": "serving_loopback_throughput",
      "unit": "events_per_sec",
      "samples": {"single": 5876.3, "batch_32": 13012.1},
      "provenance": {"git_sha": "...", "python": "3.12.1",
                     "platform": "Linux-...", "host": "..."}
    }

Files written before the writer existed (schema-less entries) load
fine; :func:`load` returns them as-is.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Mapping, Optional, Union

#: bumped when the entry shape changes incompatibly
SCHEMA_VERSION = 1


def git_sha(cwd: Optional[Union[str, os.PathLike]] = None) -> Optional[str]:
    """The current commit SHA, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def provenance(cwd: Optional[Union[str, os.PathLike]] = None) -> dict:
    """Where/when/what produced a benchmark point."""
    return {
        "git_sha": git_sha(cwd),
        "python": platform.python_version(),
        "implementation": sys.implementation.name,
        "platform": platform.platform(),
        "host": platform.node(),
    }


def load(path: Union[str, os.PathLike]) -> list[dict]:
    """Every entry in a trajectory file (empty list when absent)."""
    path = Path(path)
    if not path.exists():
        return []
    data = json.loads(path.read_text())
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a JSON list of entries")
    return data


def record(
    path: Union[str, os.PathLike],
    benchmark: str,
    unit: str,
    samples: Mapping[str, Any],
    extra: Optional[Mapping[str, Any]] = None,
) -> dict:
    """Append one point to a trajectory file; returns the entry.

    ``samples`` maps sample names to numbers, all in ``unit``.
    ``extra`` merges additional top-level keys into the entry
    (e.g. workload parameters).
    """
    path = Path(path)
    entry: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "benchmark": benchmark,
        "unit": unit,
        "samples": dict(samples),
        "provenance": provenance(cwd=path.parent if path.parent.name else None),
    }
    if extra:
        entry.update(extra)
    trajectory = load(path)
    trajectory.append(entry)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return entry
