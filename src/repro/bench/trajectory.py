"""The bench-trajectory harness and its regression gate.

Two halves:

* :func:`run_quick` executes the core benchmark set inline — BEAST
  ED-1 (primitive detection overhead), ED-2 (composite operator
  detection), RM-1 (rule-fanout dispatch), and the serving loopback
  throughput — sized to finish in seconds, and appends one
  schema-versioned point per benchmark to a trajectory file
  (``BENCH_core.json`` at the repo root, via
  :func:`repro.bench.record.record`).

* :func:`check` reads a trajectory file back and compares the latest
  point of each benchmark against the **median of its prior points**,
  sample by sample. A sample regresses when it is worse than the
  median by more than ``tolerance`` (a multiplicative band — CI noise
  on shared runners is large, so the default band is wide; the gate
  catches order-of-magnitude cliffs, not 5% drift). Direction comes
  from the entry's unit: ``us_per_event`` is lower-is-better,
  ``events_per_sec`` higher-is-better.

``tools/bench_trajectory.py`` is the CLI over both halves; the CI
workflow runs it on every push and fails the build on regression.
"""

from __future__ import annotations

import os
import time
from functools import partial
from statistics import median
from typing import Any, Callable, Optional, Union

from repro.bench.record import load, record

#: the default trajectory file name at the repo root
CORE_TRAJECTORY = "BENCH_core.json"

#: unit -> which way is better; unknown units are never gated
UNIT_DIRECTION = {
    "us_per_event": "lower",
    "ms": "lower",
    "events_per_sec": "higher",
}


# =========================================================================
# The quick benchmark set
# =========================================================================

def _per_event_us(run: Callable[[], int]) -> float:
    """Run a workload once; microseconds per event it reports."""
    start = time.perf_counter()
    events = run()
    elapsed = time.perf_counter() - start
    return (elapsed / max(events, 1)) * 1e6


def run_ed1(events: int = 3000,
            dispatch: str = "interpreted") -> dict[str, float]:
    """ED-1: wrapped (Notify-inserted) method call cost, us/event."""
    from repro.bench.workload import ReactiveSchema
    from repro.core.detector import LocalEventDetector

    # Compiled dispatch builds its plan lazily on the first notify and
    # warms per-type caches; a short untimed prefix keeps the recorded
    # point at steady state (the interpreted path has no such ramp).
    warmup = events // 10 if dispatch == "compiled" else 0
    samples: dict[str, float] = {}
    schema = ReactiveSchema(n_classes=1, n_methods=1)

    det = LocalEventDetector(name="ed1-bare", dispatch=dispatch)
    schema.install(det)
    for __ in range(warmup):
        schema.signal(det, 0, 0)

    def no_rule() -> int:
        for __ in range(events):
            schema.signal(det, 0, 0)
        return events

    samples["no_rule"] = _per_event_us(no_rule)
    det.shutdown()

    det = LocalEventDetector(name="ed1-ruled", dispatch=dispatch)
    nodes = schema.install(det)
    det.rule("r", nodes[0], action=lambda occ: None)
    for __ in range(warmup):
        schema.signal(det, 0, 0)

    def with_rule() -> int:
        for __ in range(events):
            schema.signal(det, 0, 0)
        return events

    samples["with_rule"] = _per_event_us(with_rule)
    det.shutdown()
    return samples


def run_ed2(length: int = 1500,
            dispatch: str = "interpreted") -> dict[str, float]:
    """ED-2: composite detection per operator over a stream, us/event."""
    from repro.bench import EventStream, ReactiveSchema, make_expression
    from repro.core.detector import LocalEventDetector

    samples: dict[str, float] = {}
    for operator in ("AND", "SEQ", "NOT"):
        det = LocalEventDetector(name=f"ed2-{operator}", dispatch=dispatch)
        schema = ReactiveSchema(n_classes=1, n_methods=3)
        leaves = schema.install(det)
        expr = make_expression(det, operator, leaves)
        det.rule("r", expr, action=lambda occ: None)
        if dispatch == "compiled":
            schema.signal(det, 0, 0)  # build the dispatch plan untimed
        stream = EventStream(schema, length=length, seed=7)
        samples[operator] = _per_event_us(lambda: stream.pump(det))
        assert det.graph.stats.detections > 0
        det.shutdown()
    return samples


def run_rm1(raises: int = 400,
            dispatch: str = "interpreted") -> dict[str, float]:
    """RM-1: rule-fanout dispatch cost, us/event, at 1/10/100 rules."""
    from repro.core.detector import LocalEventDetector

    samples: dict[str, float] = {}
    for n_rules in (1, 10, 100):
        det = LocalEventDetector(name=f"rm1-{n_rules}", dispatch=dispatch)
        det.explicit_event("e")
        fired = {"n": 0}
        for i in range(n_rules):
            det.rule(
                f"r{i}", "e",
                action=lambda occ: fired.__setitem__("n", fired["n"] + 1),
            )
        if dispatch == "compiled":
            det.raise_event("e")  # build the dispatch plan untimed

        def pump() -> int:
            for __ in range(raises):
                det.raise_event("e")
            return raises

        samples[f"rules_{n_rules}"] = _per_event_us(pump)
        assert fired["n"] >= n_rules * raises
        det.shutdown()
    return samples


def run_serving_loopback(events: int = 1024,
                         batch: int = 32) -> dict[str, float]:
    """Serving loopback ingestion throughput, events/sec."""
    from repro.sentinel import Sentinel
    from repro.serving import SentinelClient, SentinelServer
    from repro.serving.tenancy import Tenant

    system = Sentinel(name="bench-core-serve", detections_capacity=events * 2)
    server = SentinelServer(
        system, tenants=[Tenant("bench", token="bench-tok")]
    ).start()
    client = SentinelClient(
        "127.0.0.1", server.port, tenant="bench", token="bench-tok",
        timeout=60.0,
    )
    try:
        client.primitive_event("op_done", "Account", "end", "op")
        client.watch("audit", "op_done")
        batches, remainder = divmod(events, batch)
        assert remainder == 0
        payloads = [
            [(None, "Account", "op", "end", {"i": i}) for i in range(batch)]
            for __ in range(batches)
        ]
        start = time.perf_counter()
        for payload in payloads:
            client.notify_batch(payload)
        elapsed = time.perf_counter() - start
        detected = len(client.detections("audit", clear=True))
        assert detected == events
        return {f"batch_{batch}": events / elapsed}
    finally:
        client.close()
        server.close()
        system.close()


def run_async_actions(events: int = 64,
                      delay_s: float = 0.004) -> dict[str, float]:
    """Async-lane scaling: IO-bound actions, events/sec per lane.

    One raised event triggers ``events`` rules of one priority class
    whose actions each wait ``delay_s`` (a stand-in for a webhook or
    downstream write). The thread pool is capped at 8 concurrent
    sleeps; the asyncio lane overlaps all of them on one loop thread —
    the recorded pair documents the ceiling and the lane's headroom
    over it.
    """
    import asyncio

    from repro.core.detector import LocalEventDetector
    from repro.core.scheduler import ThreadedExecutor

    samples: dict[str, float] = {}

    det = LocalEventDetector(
        name="async-bench-threaded", executor=ThreadedExecutor(max_workers=8)
    )
    det.explicit_event("go")
    for i in range(events):
        det.rule(f"t{i}", "go", action=lambda occ: time.sleep(delay_s))
    start = time.perf_counter()
    det.raise_event("go")
    samples["threaded_8"] = events / (time.perf_counter() - start)
    det.shutdown()

    det = LocalEventDetector(name="async-bench-lane")
    det.explicit_event("go")

    async def io_action(occ):
        await asyncio.sleep(delay_s)

    for i in range(events):
        det.rule(f"a{i}", "go", action=io_action)
    start = time.perf_counter()
    det.raise_event("go")
    samples["async_lane"] = events / (time.perf_counter() - start)
    det.shutdown()
    return samples


#: name -> (unit, runner); the set the core trajectory tracks.
#: The ``-compiled`` entries rerun the same workloads under
#: ``dispatch="compiled"`` so both engines leave a gated trajectory.
QUICK_BENCHMARKS: dict[str, tuple[str, Callable[[], dict[str, float]]]] = {
    "ED-1": ("us_per_event", run_ed1),
    "ED-1-compiled": (
        "us_per_event", partial(run_ed1, dispatch="compiled")
    ),
    "ED-2": ("us_per_event", run_ed2),
    "ED-2-compiled": (
        "us_per_event", partial(run_ed2, dispatch="compiled")
    ),
    "RM-1": ("us_per_event", run_rm1),
    "RM-1-compiled": (
        "us_per_event", partial(run_rm1, dispatch="compiled")
    ),
    "serving_loopback": ("events_per_sec", run_serving_loopback),
    "async-actions": ("events_per_sec", run_async_actions),
}


def run_quick(path: Union[str, os.PathLike],
              only: Optional[list[str]] = None) -> list[dict]:
    """Run the quick set and append one point per benchmark to ``path``.

    Returns the appended entries. ``only`` restricts to a subset of
    :data:`QUICK_BENCHMARKS` names.
    """
    names = list(QUICK_BENCHMARKS) if only is None else list(only)
    entries = []
    for name in names:
        unit, runner = QUICK_BENCHMARKS[name]
        entries.append(record(path, name, unit, runner()))
    return entries


# =========================================================================
# The regression gate
# =========================================================================

def check(path: Union[str, os.PathLike],
          tolerance: float = 3.0) -> list[dict[str, Any]]:
    """Regressions in the latest point of each benchmark vs history.

    For every benchmark in the trajectory with at least two points,
    each sample of the latest point is compared against the median of
    that sample across all prior points. Worse than the median by more
    than ``tolerance``x flags a regression dict::

        {"benchmark", "sample", "unit", "latest", "median",
         "ratio", "tolerance"}

    ``ratio`` is normalized so > 1.0 always means "worse". Benchmarks
    with a single point, samples absent from history, and units not in
    :data:`UNIT_DIRECTION` are skipped — a new benchmark or sample
    never fails the gate on its first recording.
    """
    if tolerance <= 1.0:
        raise ValueError(f"tolerance must be > 1.0, got {tolerance}")
    by_benchmark: dict[str, list[dict]] = {}
    for entry in load(path):
        name = entry.get("benchmark")
        if isinstance(name, str):
            by_benchmark.setdefault(name, []).append(entry)
    regressions: list[dict[str, Any]] = []
    for name, entries in by_benchmark.items():
        if len(entries) < 2:
            continue
        latest, prior = entries[-1], entries[:-1]
        direction = UNIT_DIRECTION.get(latest.get("unit", ""))
        if direction is None:
            continue
        for sample, value in (latest.get("samples") or {}).items():
            history = [
                e["samples"][sample] for e in prior
                if isinstance(e.get("samples"), dict)
                and isinstance(e["samples"].get(sample), (int, float))
            ]
            if not history or not isinstance(value, (int, float)):
                continue
            baseline = median(history)
            if baseline <= 0 or value <= 0:
                continue
            ratio = (value / baseline if direction == "lower"
                     else baseline / value)
            if ratio > tolerance:
                regressions.append({
                    "benchmark": name,
                    "sample": sample,
                    "unit": latest.get("unit"),
                    "latest": value,
                    "median": baseline,
                    "ratio": round(ratio, 3),
                    "tolerance": tolerance,
                })
    return regressions
