"""Synthetic schemas, event streams, and rule populations."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.detector import LocalEventDetector
from repro.core.events.base import EventNode


@dataclass
class ReactiveSchema:
    """A synthetic schema: ``n_classes`` classes x ``n_methods`` methods.

    Creating it against a detector defines one class-level primitive
    event per method, named ``C<i>_m<j>``.
    """

    n_classes: int = 4
    n_methods: int = 4

    def class_name(self, i: int) -> str:
        return f"C{i}"

    def method_name(self, j: int) -> str:
        return f"m{j}"

    def event_name(self, i: int, j: int) -> str:
        return f"C{i}_m{j}"

    def install(self, detector: LocalEventDetector) -> list[EventNode]:
        """Create every class-level primitive event of the schema."""
        nodes = []
        for i in range(self.n_classes):
            for j in range(self.n_methods):
                nodes.append(
                    detector.primitive_event(
                        self.event_name(i, j),
                        self.class_name(i),
                        "end",
                        self.method_name(j),
                    )
                )
        return nodes

    def signal(self, detector: LocalEventDetector, i: int, j: int,
               **params) -> None:
        """Simulate one method invocation of class ``i``, method ``j``."""
        detector.notify(
            f"obj-{i}", self.class_name(i), self.method_name(j), "end", params
        )


@dataclass
class EventStream:
    """A deterministic pseudo-random stream of method invocations."""

    schema: ReactiveSchema
    length: int = 1000
    seed: int = 42

    def __iter__(self):
        rng = random.Random(self.seed)
        for sequence in range(self.length):
            i = rng.randrange(self.schema.n_classes)
            j = rng.randrange(self.schema.n_methods)
            yield i, j, {"n": sequence}

    def pump(self, detector: LocalEventDetector) -> int:
        """Signal the entire stream; returns the number of invocations."""
        count = 0
        for i, j, params in self:
            self.schema.signal(detector, i, j, **params)
            count += 1
        return count


def make_expression(
    detector: LocalEventDetector,
    operator: str,
    leaves: list[EventNode],
    period: float = 5.0,
) -> EventNode:
    """Build one composite expression of the named operator kind.

    ``operator`` is one of AND/OR/SEQ/NOT/A/A*/P/P*/PLUS; binary
    operators fold the leaf list left-associatively, ternary operators
    use the first three leaves.
    """
    graph = detector.graph
    if operator in ("AND", "OR", "SEQ"):
        build = {"AND": graph.and_, "OR": graph.or_, "SEQ": graph.seq}[operator]
        node = leaves[0]
        for leaf in leaves[1:]:
            node = build(node, leaf)
        return node
    if operator == "NOT":
        return graph.not_(leaves[0], leaves[1], leaves[2])
    if operator == "A":
        return graph.aperiodic(leaves[0], leaves[1], leaves[2])
    if operator == "A*":
        return graph.aperiodic_star(leaves[0], leaves[1], leaves[2])
    if operator == "P":
        return graph.periodic(leaves[0], period, leaves[1])
    if operator == "P*":
        return graph.periodic_star(leaves[0], period, leaves[1])
    if operator == "PLUS":
        return graph.plus(leaves[0], period)
    raise ValueError(f"unknown operator {operator!r}")


@dataclass
class RulePopulation:
    """Attach ``n_rules`` trivial rules to an event (fan-out workloads)."""

    n_rules: int = 10
    context: str = "recent"
    priority_spread: int = 1  # rules get priority (index % spread)
    condition: Optional[Callable] = None

    fired: int = 0

    def install(self, detector: LocalEventDetector, event: EventNode,
                tag: str = "pop") -> list[str]:
        """Attach the counting rules to ``event``; returns their names."""
        names = []

        def action(occ) -> None:
            self.fired += 1

        for index in range(self.n_rules):
            name = f"{tag}-{index}"
            detector.rule(
                name,
                event,
                condition=self.condition or (lambda occ: True),
                action=action,
                context=self.context,
                priority=index % max(1, self.priority_spread),
            )
            names.append(name)
        return names
