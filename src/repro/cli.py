"""Command-line tools for the Sentinel specification language.

The original pre-processor was a standalone tool run over application
sources; this CLI exposes the same pipeline:

* ``check``   — parse a spec file, report the events and rules it defines.
* ``codegen`` — emit the generated Python (the pre-processor's output).
* ``graph``   — build the spec and render the event graph as ASCII.
* ``replay``  — run a JSON-lines event log (``repro.eventlog`` format)
  through a spec in collect mode and report which rules would fire.
* ``trace``   — execute an event log through a spec with telemetry on
  and print the resulting span trees plus the metrics summary; with
  ``--export-spans`` the raw spans are also written as JSONL, and with
  ``--spans`` a previously exported JSONL span file is re-rendered
  offline (no spec or log needed).
* ``monitor`` — build a spec, replay a log through it, and serve the
  live introspection endpoints (``/metrics``, ``/health``, ``/spans``,
  ``/graph``, ``/profile``) over HTTP.
* ``serve``   — boot a shared multi-tenant Sentinel system and serve
  the wire protocol (see :mod:`repro.serving`) on TCP, optionally with
  the HTTP monitor alongside.

Conditions and actions referenced by the spec are stubbed (always-true
conditions, counting actions), so specs can be validated without the
application code.

Usage::

    python -m repro check myspec.sentinel
    python -m repro codegen myspec.sentinel
    python -m repro graph myspec.sentinel
    python -m repro replay myspec.sentinel events.jsonl
    python -m repro trace myspec.sentinel events.jsonl
    python -m repro trace --spans exported.jsonl
    python -m repro monitor myspec.sentinel events.jsonl --port 9464
    python -m repro serve --port 7070 --tenant alpha:s3cret:eps=500

Exit codes are stable: 0 success, 1 a Sentinel error (stderr carries
``error: <message> [E<code>]`` with the wire-protocol error code from
:mod:`repro.errors`), 2 usage/file errors.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections import Counter
from pathlib import Path
from typing import Optional

from repro.core.detector import LocalEventDetector
from repro.debugger.visualize import render_event_graph
from repro.errors import SentinelError, cli_exit_code, error_code
from repro.eventlog import EventLog, replay as replay_log
from repro.snoop import ast as snoop_ast
from repro.snoop.builder import SpecBuilder
from repro.snoop.codegen import generate
from repro.snoop.parser import parse


def _stub_namespace(spec: snoop_ast.Spec) -> dict:
    """Always-true conditions and no-op actions for every reference."""
    namespace: dict = {}
    rules = list(spec.rules)
    for class_def in spec.classes:
        rules.extend(class_def.rules)
    for rule in rules:
        namespace.setdefault(rule.condition, lambda occ: True)
        namespace.setdefault(rule.action, lambda occ: None)
    return namespace


def _load_spec(path: str) -> snoop_ast.Spec:
    source = Path(path).read_text()
    return parse(source)


def _build(spec: snoop_ast.Spec) -> tuple[LocalEventDetector, SpecBuilder]:
    detector = LocalEventDetector(name="cli")
    builder = SpecBuilder(detector, _stub_namespace(spec)).build(spec)
    return detector, builder


def cmd_check(args: argparse.Namespace) -> int:
    """Parse and validate a spec; print its inventory and warnings."""
    spec = _load_spec(args.spec)
    detector, builder = _build(spec)
    print(f"{args.spec}: OK")
    print(f"  classes:          {len(spec.classes)}")
    print(f"  primitive events: "
          f"{sum(1 for n in detector.graph.nodes() if not n.children)}")
    print(f"  event graph:      {len(detector.graph)} nodes "
          f"({detector.graph.stats.shared_hits} shared)")
    print(f"  rules:            {len(builder.rules)}")
    for name in sorted(builder.rules):
        rule = builder.rules[name]
        print(f"    {name}: on {rule.event.display_name} "
              f"[{rule.context.value}, {rule.coupling.value}, "
              f"p{rule.priority}]")
    from repro.core.events.analysis import analyze_graph

    warnings = analyze_graph(detector.graph)
    for warning in warnings:
        print(f"  warning: {warning}")
    detector.shutdown()
    return 0


def cmd_codegen(args: argparse.Namespace) -> int:
    """Emit the generated Python for a spec (pre-processor output)."""
    spec = _load_spec(args.spec)
    source = generate(spec)
    if args.output:
        Path(args.output).write_text(source)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(source)
    return 0


def cmd_graph(args: argparse.Namespace) -> int:
    """Render a spec's event graph as ASCII."""
    spec = _load_spec(args.spec)
    detector, __ = _build(spec)
    sys.stdout.write(render_event_graph(detector.graph))
    detector.shutdown()
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Replay an event log against a spec in collect mode."""
    spec = _load_spec(args.spec)
    detector, builder = _build(spec)
    log = EventLog(args.log)
    report = replay_log(log, detector, mode="collect")
    counts = Counter(report.triggered_rules())
    print(f"replayed {report.events_replayed} events from {args.log}")
    if not counts:
        print("no rules would have fired")
    for name, count in counts.most_common():
        print(f"  {name}: {count} firing(s)")
    detector.shutdown()
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Execute an event log with telemetry on; print the span trees.

    With ``--spans FILE`` no replay happens: the exported JSONL span
    stream is loaded and re-rendered offline with the same renderer.
    """
    from repro.telemetry import CounterProcessor, TraceLogProcessor

    if args.spans:
        from repro.monitor import load_events

        events = load_events(args.spans)
        print(f"loaded {len(events)} spans from {args.spans}")
        print()
        sys.stdout.write(TraceLogProcessor().render(events))
        return 0
    if not args.spec or not args.log:
        print("error: trace needs SPEC and LOG (or --spans FILE)",
              file=sys.stderr)
        return 2
    spec = _load_spec(args.spec)
    detector, __ = _build(spec)
    trace_log = detector.telemetry.attach(
        TraceLogProcessor(capacity=args.capacity)
    )
    counters = detector.telemetry.attach(CounterProcessor())
    exporter = None
    if args.export_spans:
        from repro.monitor import JsonlSpanExporter

        exporter = detector.telemetry.attach(
            JsonlSpanExporter(args.export_spans)
        )
    log = EventLog(args.log)
    report = replay_log(log, detector, mode="execute")
    print(f"replayed {report.events_replayed} events from {args.log}")
    print()
    sys.stdout.write(trace_log.render())
    if exporter is not None:
        exporter.close()
        print(f"exported {exporter.exported} spans to {args.export_spans}")
    if args.metrics:
        print()
        print("counters:")
        for name, value in counters.registry.to_dict()["counters"].items():
            print(f"  {name}: {value}")
        print("latency:")
        for name, summary in counters.registry.to_dict()["histograms"].items():
            print(f"  {name}: n={summary['count']} "
                  f"mean={summary['mean_ms']}ms max={summary['max_ms']}ms")
    detector.shutdown()
    return 0


def cmd_monitor(args: argparse.Namespace) -> int:
    """Serve the live introspection endpoints over a spec replay."""
    from repro.monitor import MonitorServer, RuleProfiler
    from repro.telemetry import CounterProcessor, TraceLogProcessor

    spec = _load_spec(args.spec)
    detector, __ = _build(spec)
    trace_log = detector.telemetry.attach(
        TraceLogProcessor(capacity=args.capacity)
    )
    counters = detector.telemetry.attach(CounterProcessor())
    profiler = detector.telemetry.attach(RuleProfiler(slow_ms=args.slow_ms))
    if args.log:
        report = replay_log(EventLog(args.log), detector, mode="execute")
        print(f"replayed {report.events_replayed} events from {args.log}")
    server = MonitorServer(
        registry=counters.registry,
        health=detector.health,
        trace=trace_log,
        graph=detector.graph_snapshot,
        profiler=profiler,
        host=args.host,
        port=args.port,
    ).start()
    print(f"serving on {server.url} "
          f"(/metrics /health /spans /graph /profile)")
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        detector.shutdown()
    if profiler.rules:
        print()
        sys.stdout.write(profiler.report_text())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a shared multi-tenant system over the wire protocol.

    Runs until SIGTERM/SIGINT (or ``--duration``), then drains: the
    listener closes, in-flight requests finish and respond, and the
    system shuts down cleanly — exit code 0.
    """
    import signal
    import threading

    from repro.sentinel import Sentinel
    from repro.serving.server import SentinelServer
    from repro.serving.tenancy import Tenant

    tenants = [Tenant.parse_spec(spec) for spec in args.tenant or []]
    system = Sentinel(
        directory=args.directory, name=args.name, shards=args.shards,
        dispatch=args.dispatch,
    )
    server = SentinelServer(
        system, args.host, args.port,
        tenants=tenants, max_frame=args.max_frame,
    ).start()
    monitor = None
    if args.monitor_port is not None:
        monitor = system.monitor(port=args.monitor_port, host=args.host)
    if args.port_file:
        Path(args.port_file).write_text(f"{server.host} {server.port}\n")
    tenant_names = ", ".join(t.name for t in server.tenants.all())
    print(f"serving {system.name!r} on {server.address} "
          f"(tenants: {tenant_names}; dispatch: {system.dispatch}; "
          f"async lane: on)",
          flush=True)
    if monitor is not None:
        print(f"monitor on {monitor.url}", flush=True)

    stop = threading.Event()
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: stop.set())
    try:
        stop.wait(args.duration)
    except KeyboardInterrupt:
        pass
    print("draining...", flush=True)
    server.close()
    system.close()
    print("stopped", flush=True)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Sentinel specification-language tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="parse and validate a spec file")
    check.add_argument("spec")
    check.set_defaults(func=cmd_check)

    codegen = sub.add_parser("codegen", help="emit generated Python")
    codegen.add_argument("spec")
    codegen.add_argument("-o", "--output", default=None)
    codegen.set_defaults(func=cmd_codegen)

    graph = sub.add_parser("graph", help="render the event graph")
    graph.add_argument("spec")
    graph.set_defaults(func=cmd_graph)

    rep = sub.add_parser("replay", help="replay an event log (collect mode)")
    rep.add_argument("spec")
    rep.add_argument("log")
    rep.set_defaults(func=cmd_replay)

    trace = sub.add_parser(
        "trace", help="execute an event log and print trace span trees"
    )
    trace.add_argument("spec", nargs="?", default=None)
    trace.add_argument("log", nargs="?", default=None)
    trace.add_argument("--capacity", type=int, default=4096,
                       help="trace ring-buffer size (default 4096)")
    trace.add_argument("--no-metrics", dest="metrics", action="store_false",
                       help="omit the counter/latency summary")
    trace.add_argument("--export-spans", default=None, metavar="FILE",
                       help="also write the raw spans as JSONL to FILE")
    trace.add_argument("--spans", default=None, metavar="FILE",
                       help="render a previously exported JSONL span file "
                            "instead of replaying")
    trace.set_defaults(func=cmd_trace)

    monitor = sub.add_parser(
        "monitor",
        help="replay a log through a spec and serve /metrics, /health, "
             "/spans, /graph, /profile over HTTP",
    )
    monitor.add_argument("spec")
    monitor.add_argument("log", nargs="?", default=None)
    monitor.add_argument("--host", default="127.0.0.1")
    monitor.add_argument("--port", type=int, default=0,
                         help="0 = OS-assigned (printed on startup)")
    monitor.add_argument("--capacity", type=int, default=4096,
                         help="trace ring-buffer size (default 4096)")
    monitor.add_argument("--slow-ms", type=float, default=None,
                         help="slow-rule threshold for the profiler")
    monitor.add_argument("--duration", type=float, default=None,
                         help="serve for N seconds then exit "
                              "(default: until interrupted)")
    monitor.set_defaults(func=cmd_monitor)

    serve = sub.add_parser(
        "serve",
        help="serve a shared multi-tenant Sentinel system over TCP "
             "(length-prefixed JSON wire protocol)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="0 = OS-assigned (printed on startup)")
    serve.add_argument("--port-file", default=None, metavar="FILE",
                       help="write 'host port' to FILE once bound "
                            "(for scripts wrapping --port 0)")
    serve.add_argument("--tenant", action="append", default=[],
                       metavar="NAME:TOKEN[:rules=N][:eps=R][:burst=B]",
                       help="add a tenant (repeatable); empty TOKEN means "
                            "no auth; default: one open 'default' tenant")
    serve.add_argument("--max-frame", type=int, default=1 << 20,
                       help="per-frame byte limit (default 1 MiB)")
    serve.add_argument("--monitor-port", type=int, default=None,
                       help="also serve the HTTP monitor on this port")
    serve.add_argument("--duration", type=float, default=None,
                       help="serve for N seconds then exit "
                            "(default: until SIGTERM/SIGINT)")
    serve.add_argument("--shards", type=int, default=1,
                       help="detection shards for the shared system")
    serve.add_argument("--dispatch", choices=("interpreted", "compiled"),
                       default="interpreted",
                       help="detection engine for the shared system; "
                            "'compiled' flattens the event graph into "
                            "per-route dispatch plans (same semantics, "
                            "lower per-event cost)")
    serve.add_argument("--directory", default=None,
                       help="database directory (default: in-memory)")
    serve.add_argument("--name", default="served",
                       help="system name (shown in ping/health)")
    serve.set_defaults(func=cmd_serve)

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (FileNotFoundError, IsADirectoryError, NotADirectoryError,
            PermissionError) as error:
        print(f"error: {error}", file=sys.stderr)
        return cli_exit_code(error)
    except ValueError as error:
        # e.g. a malformed --tenant spec
        print(f"error: {error}", file=sys.stderr)
        return cli_exit_code(error)
    except SentinelError as error:
        # One registry maps exception types to codes for the wire
        # protocol and this suffix alike (see repro.errors).
        print(f"error: {error} [E{error_code(error)}]", file=sys.stderr)
        return cli_exit_code(error)


if __name__ == "__main__":
    raise SystemExit(main())
