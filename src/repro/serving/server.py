"""The multi-tenant Sentinel server.

:class:`SentinelServer` puts one shared :class:`~repro.sentinel.Sentinel`
behind the length-prefixed wire protocol: an accept loop hands each
client connection to its own daemon thread, the first frame must be a
``hello`` carrying the tenant name and bearer token, and every
subsequent request executes against the shared detector under the
calling tenant's namespace (see :mod:`repro.serving.tenancy`).

Request handling is synchronous per connection — a response frame is
written only after the detector finished the request's full immediate
rule cascade, so a client that got its ``raise_event`` response back
can immediately ``detections()`` and observe the result, exactly like
a local caller (this is what makes the conformance suite deterministic
without sleeps).

Isolation and robustness:

* definition operations (events, rules) run under the detector's shard
  locks plus a server-side definition lock, so concurrent tenants
  cannot corrupt the graph;
* quota rejections happen before ingestion — a throttled tenant never
  touches shared detection state;
* per-request errors are answered with the registry code and the
  connection keeps serving; framing errors that desynchronize the
  stream (oversized frames) are answered and then the connection is
  closed; a client dying mid-frame just ends its connection thread;
* :meth:`close` drains: the listener stops, each connection's read
  side is shut down so in-flight requests finish and respond before
  the socket closes.

Per-tenant counters are exported through
:func:`repro.reporting.serving_metric_lines`; attaching the server
registers that provider on the system's ``extra_metric_providers`` so
an existing monitor's ``/metrics`` picks the families up automatically.
"""

from __future__ import annotations

import socket
import threading
from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import (
    AuthenticationError,
    ConnectionClosed,
    FrameTooLarge,
    ProtocolError,
    SentinelError,
    error_code,
)
from repro.serving.expr import parse_event_expr
from repro.serving.protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    available_transports,
    get_codec,
    recv_frame,
    send_frame,
)
from repro.serving.tenancy import NAMESPACE_SEP, Tenant, TenantRegistry

if TYPE_CHECKING:
    from repro.sentinel import Sentinel


class _Session:
    """One authenticated client connection and its serving thread."""

    _ids = iter(range(1, 1 << 62))

    def __init__(self, server: "SentinelServer", conn: socket.socket,
                 address):
        self.server = server
        self.conn = conn
        self.address = address
        self.session_id = next(self._ids)
        self.codec = get_codec("json")
        #: codec to switch to after the current response is written
        self._pending_codec = None
        self.tenant: Optional[Tenant] = None
        #: None = not subscribed; empty set = all of the tenant's rules
        self.subscription: Optional[set] = None
        self._write_lock = threading.Lock()
        self.thread = threading.Thread(
            target=self._run,
            name=f"sentinel-serve:{self.session_id}",
            daemon=True,
        )

    # -- wire plumbing -----------------------------------------------------

    def send(self, payload: dict) -> None:
        with self._write_lock:
            send_frame(self.conn, payload, self.codec)

    def try_push(self, payload: dict) -> bool:
        """Best-effort push; a dead subscriber must not hurt detection."""
        try:
            self.send(payload)
            return True
        except (ConnectionClosed, OSError):
            return False

    def _send_error(self, request_id, error: SentinelError) -> None:
        message = str(error)
        if self.tenant is not None:
            with self.tenant.lock:
                self.tenant.counters.errors += 1
            # Error text mentions qualified names; clients speak the
            # unqualified ones, so strip the namespace prefix.
            message = message.replace(
                self.tenant.name + NAMESPACE_SEP, ""
            )
        self.send({
            "id": request_id,
            "ok": False,
            "code": error_code(error),
            "type": type(error).__name__,
            "error": message,
        })

    # -- connection loop ---------------------------------------------------

    def _run(self) -> None:
        try:
            while True:
                try:
                    frame = recv_frame(self.conn, self.codec,
                                       self.server.max_frame)
                except ConnectionClosed:
                    break
                except FrameTooLarge as error:
                    # The oversized body was never read, so the stream
                    # is desynchronized: answer, then hang up.
                    self._try_send_error(None, error)
                    break
                except ProtocolError as error:
                    # The body was fully read (framing is intact) but
                    # did not decode; answer and keep serving.
                    self._try_send_error(None, error)
                    continue
                if not self._handle(frame):
                    break
        except (ConnectionClosed, OSError):
            pass
        finally:
            self.server._forget(self)
            try:
                self.conn.close()
            except OSError:
                pass

    def _try_send_error(self, request_id, error: SentinelError) -> None:
        try:
            self._send_error(request_id, error)
        except (ConnectionClosed, OSError):
            pass

    def _handle(self, frame: dict) -> bool:
        """Serve one request frame; False ends the connection."""
        request_id = frame.get("id")
        op = frame.get("op")
        args = frame.get("args") or {}
        keep_going = True
        try:
            if not isinstance(op, str):
                raise ProtocolError("request frame needs a string 'op'")
            if not isinstance(args, dict):
                raise ProtocolError("'args' must be an object")
            if op == "hello":
                result = self.server._op_hello(self, args)
            else:
                if self.tenant is None:
                    raise AuthenticationError(
                        "the first request must be 'hello'"
                    )
                handler = self.server._OPS.get(op)
                if handler is None:
                    raise ProtocolError(f"unknown op {op!r}")
                with self.server._adopt_trace(frame.get("ctx")):
                    result = handler(self.server, self, args)
            if op == "bye":
                keep_going = False
            self.send({"id": request_id, "ok": True, "result": result})
            if self._pending_codec is not None:
                # hello negotiated a transport: the reply above went out
                # in the old codec; everything after speaks the new one.
                self.codec = self._pending_codec
                self._pending_codec = None
        except SentinelError as error:
            self._try_send_error(request_id, error)
            # Failed authentication ends the conversation.
            keep_going = not isinstance(error, AuthenticationError)
        except (ConnectionClosed, OSError):
            return False
        except Exception as error:  # noqa: BLE001 — a bug must not kill serving
            self._try_send_error(
                request_id,
                SentinelError(f"internal server error: {error!r}"),
            )
        return keep_going

    def drain(self) -> None:
        """Stop reading new requests; an in-flight one still answers."""
        try:
            self.conn.shutdown(socket.SHUT_RD)
        except OSError:
            pass


class SentinelServer:
    """Serves one shared active system to many client processes."""

    def __init__(
        self,
        system: "Sentinel",
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        tenants: Optional[Iterable[Tenant]] = None,
        max_frame: int = DEFAULT_MAX_FRAME,
    ):
        self.system = system
        self.max_frame = max_frame
        self.tenants = TenantRegistry(tenants or ())
        self._listener = socket.create_server((host, port))
        self._sessions: set[_Session] = set()
        self._sessions_lock = threading.Lock()
        #: serializes event/rule definition across tenants (signaling
        #: is already serialized by the detector's shard stripes)
        self._define_lock = threading.RLock()
        self._closing = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        system.add_detection_listener(self._on_detection)
        system.extra_metric_providers.append(self.metric_lines)
        system.extra_health_providers.append(self.health_slice)

    # -- lifecycle ---------------------------------------------------------

    @property
    def host(self) -> str:
        return self._listener.getsockname()[0]

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "SentinelServer":
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop,
                name=f"sentinel-serve-accept:{self.port}",
                daemon=True,
            )
            self._accept_thread.start()
        return self

    def close(self, drain_timeout: float = 5.0) -> None:
        """Shut down: stop accepting, drain in-flight requests, detach.

        Every connection's read side is shut down first, so a request
        already being processed finishes and its response is written
        before the socket closes — in-flight batches are never dropped.
        """
        if self._closing.is_set():
            return
        self._closing.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._sessions_lock:
            sessions = list(self._sessions)
        for session in sessions:
            session.drain()
        for session in sessions:
            session.thread.join(timeout=drain_timeout)
        for session in sessions:
            try:
                session.conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=drain_timeout)
            self._accept_thread = None
        self.system.remove_detection_listener(self._on_detection)
        try:
            self.system.extra_metric_providers.remove(self.metric_lines)
        except ValueError:
            pass
        try:
            self.system.extra_health_providers.remove(self.health_slice)
        except ValueError:
            pass

    def __enter__(self) -> "SentinelServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def _accept_loop(self) -> None:
        while not self._closing.is_set():
            try:
                conn, address = self._listener.accept()
            except OSError:
                break  # listener closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            session = _Session(self, conn, address)
            with self._sessions_lock:
                self._sessions.add(session)
            session.thread.start()

    def _forget(self, session: _Session) -> None:
        with self._sessions_lock:
            self._sessions.discard(session)
        if session.tenant is not None:
            with session.tenant.lock:
                session.tenant.connections = max(
                    0, session.tenant.connections - 1
                )
            session.tenant = None

    def connections(self) -> int:
        with self._sessions_lock:
            return len(self._sessions)

    # -- detection fan-out -------------------------------------------------

    def _on_detection(self, summary: dict) -> None:
        """System detection listener: attribute + push to subscribers."""
        tenant = self.tenants.owner_of(summary.get("rule", ""))
        if tenant is None:
            return  # a local (non-tenant) rule on the shared system
        with tenant.lock:
            tenant.counters.detections += 1
        stripped = None
        with self._sessions_lock:
            sessions = [
                s for s in self._sessions
                if s.tenant is tenant and s.subscription is not None
            ]
        for session in sessions:
            rule_name = tenant.unqualify(summary["rule"])
            if session.subscription and rule_name not in session.subscription:
                continue
            if stripped is None:
                stripped = self._strip(tenant, summary)
            session.try_push({"push": "detection", "detection": stripped})

    def _strip(self, tenant: Tenant, summary: dict) -> dict:
        """A detection/occurrence summary with tenant prefixes removed.

        Synthesized composite names embed qualified names inside
        (``(a::x ; a::y)``), so every occurrence of the prefix goes,
        not just a leading one.
        """
        prefix = tenant.name + NAMESPACE_SEP
        out = dict(summary)
        for key in ("rule", "event", "class"):
            value = out.get(key)
            if isinstance(value, str):
                out[key] = value.replace(prefix, "")
        if isinstance(out.get("constituents"), list):
            out["constituents"] = [
                self._strip(tenant, c) for c in out["constituents"]
            ]
        return out

    # -- op implementations ------------------------------------------------

    def _op_hello(self, session: _Session, args: dict) -> dict:
        protocol = args.get("protocol", PROTOCOL_VERSION)
        if protocol != PROTOCOL_VERSION:
            raise ProtocolError(
                f"unsupported protocol version {protocol!r} "
                f"(server speaks {PROTOCOL_VERSION})"
            )
        transport = args.get("transport", "json")
        codec = get_codec(transport)  # raises ProtocolError when unknown
        tenant = self.tenants.authenticate(
            args.get("tenant", "default"), args.get("token")
        )
        if session.tenant is not None:
            self._forget_tenant(session)
        session.tenant = tenant
        with tenant.lock:
            tenant.connections += 1
        result = {
            "server": self.system.name,
            "tenant": tenant.name,
            "protocol": PROTOCOL_VERSION,
            "transport": transport,
            "transports": available_transports(),
            # which detection engine the backing system runs
            # ("interpreted" or "compiled") — informational: remote
            # semantics are identical either way
            "dispatch": self.system.dispatch,
            # capability flag: watch(executor="async") schedules the
            # recording rule on the system's asyncio lane
            "async_lane": True,
            "max_frame": self.max_frame,
            "quota": {
                "max_rules": tenant.quota.max_rules,
                "events_per_sec": tenant.quota.events_per_sec,
            },
        }
        # The hello exchange itself rides the connection's current codec
        # (JSON on a fresh connection); the negotiated codec applies
        # from the frame after the hello response, both directions.
        session._pending_codec = codec
        return result

    def _forget_tenant(self, session: _Session) -> None:
        tenant = session.tenant
        if tenant is not None:
            with tenant.lock:
                tenant.connections = max(0, tenant.connections - 1)
        session.tenant = None

    def _op_ping(self, session: _Session, args: dict) -> dict:
        health = self.system.ping()
        return {
            "name": health["name"],
            "healthy": health["healthy"] and not self._closing.is_set(),
            "tenant": session.tenant.name,
            "protocol": PROTOCOL_VERSION,
        }

    def _op_bye(self, session: _Session, args: dict) -> dict:
        return {"bye": True}

    # event definition ............................................

    def _op_explicit_event(self, session: _Session, args: dict) -> str:
        tenant = session.tenant
        name = tenant.qualify(args.get("name"))
        with self._definitions():
            self.system.explicit_event(name)
        return tenant.unqualify(name)

    def _op_primitive_event(self, session: _Session, args: dict) -> str:
        tenant = session.tenant
        name = tenant.qualify(args.get("name"))
        class_name = tenant.qualify(args.get("class_name"))
        method = args.get("method_name")
        if not isinstance(method, str) or not method:
            raise ProtocolError("primitive_event needs a method_name string")
        with self._definitions():
            self.system.primitive_event(
                name, class_name, args.get("modifier", "end"), method,
                snapshot_state=bool(args.get("snapshot_state", False)),
            )
        return tenant.unqualify(name)

    def _op_define(self, session: _Session, args: dict) -> str:
        tenant = session.tenant
        name = tenant.qualify(args.get("name"))
        expr = args.get("expr")
        if not isinstance(expr, str):
            raise ProtocolError("define needs an expression string")
        graph = self.system.detector.graph
        with self._definitions():
            node = parse_event_expr(
                expr, lambda ref: graph.get(tenant.qualify(ref))
            )
            self.system.define(name, node)
        return tenant.unqualify(name)

    def _op_event_names(self, session: _Session, args: dict) -> list[str]:
        tenant = session.tenant
        return sorted(
            tenant.unqualify(name)
            for name in self.system.detector.graph.names()
            if tenant.owns(name)
        )

    # watched rules ...............................................

    def _op_watch(self, session: _Session, args: dict) -> str:
        tenant = session.tenant
        name = tenant.qualify(args.get("name"))
        event = args.get("event")
        if not isinstance(event, str):
            raise ProtocolError("watch needs an event name or expression")
        graph = self.system.detector.graph
        tenant.charge_rule()
        try:
            with self._definitions():
                node = parse_event_expr(
                    event, lambda ref: graph.get(tenant.qualify(ref))
                )
                self.system.watch(
                    name, node,
                    context=args.get("context", "recent"),
                    coupling=args.get("coupling", "immediate"),
                    priority=args.get("priority", 1),
                    executor=args.get("executor", "sync"),
                )
        except BaseException:
            tenant.release_rule()
            raise
        return tenant.unqualify(name)

    def _op_unwatch(self, session: _Session, args: dict) -> None:
        tenant = session.tenant
        name = tenant.qualify(args.get("name"))
        with self._definitions():
            self.system.unwatch(name)
        tenant.release_rule()
        return None

    def _op_enable_rule(self, session: _Session, args: dict) -> None:
        with self._definitions():
            self.system.enable_rule(session.tenant.qualify(args.get("name")))
        return None

    def _op_disable_rule(self, session: _Session, args: dict) -> None:
        with self._definitions():
            self.system.disable_rule(session.tenant.qualify(args.get("name")))
        return None

    def _op_rule_names(self, session: _Session, args: dict) -> list[str]:
        tenant = session.tenant
        return sorted(
            tenant.unqualify(name)
            for name in self.system.rules.names()
            if tenant.owns(name)
        )

    # ingestion ...................................................

    def _op_raise_event(self, session: _Session, args: dict) -> dict:
        tenant = session.tenant
        name = tenant.qualify(args.get("name"))
        params = args.get("params") or {}
        if not isinstance(params, dict):
            raise ProtocolError("'params' must be an object")
        tenant.charge_events(1)
        from repro.serving.api import occurrence_summary

        occurrence = self.system.raise_event(name, **params)
        return self._strip(tenant, occurrence_summary(occurrence))

    def _op_raise_events(self, session: _Session, args: dict) -> list[dict]:
        tenant = session.tenant
        events = args.get("events")
        if not isinstance(events, list):
            raise ProtocolError("'events' must be a list")
        qualified = []
        for item in events:
            if isinstance(item, str):
                qualified.append((tenant.qualify(item), {}))
            elif isinstance(item, (list, tuple)) and len(item) == 2:
                name, params = item
                if not isinstance(params, dict):
                    raise ProtocolError("event params must be an object")
                qualified.append((tenant.qualify(name), params))
            else:
                raise ProtocolError(
                    "each event must be a name or a [name, params] pair"
                )
        tenant.charge_events(len(qualified))
        with tenant.lock:
            tenant.counters.batches += 1
        from repro.serving.api import occurrence_summary

        occurrences = self.system.raise_events(qualified)
        return [
            self._strip(tenant, occurrence_summary(o)) for o in occurrences
        ]

    def _op_notify_batch(self, session: _Session, args: dict) -> list[dict]:
        tenant = session.tenant
        items = args.get("items")
        if not isinstance(items, list):
            raise ProtocolError("'items' must be a list")
        prepared = []
        for item in items:
            if not isinstance(item, (list, tuple)) or not 4 <= len(item) <= 5:
                raise ProtocolError(
                    "each item must be [instance, class_name, method_name, "
                    "modifier] or [..., arguments]"
                )
            instance, class_name, method, modifier = item[:4]
            if instance is not None:
                raise ProtocolError(
                    "remote notify_batch items must carry instance=null "
                    "(object identity does not cross the wire)"
                )
            arguments = item[4] if len(item) == 5 else {}
            if not isinstance(arguments, dict):
                raise ProtocolError("item arguments must be an object")
            prepared.append((
                None, tenant.qualify(class_name), method, modifier, arguments,
            ))
        tenant.charge_events(len(prepared))
        with tenant.lock:
            tenant.counters.batches += 1
        from repro.serving.api import occurrence_summary

        occurrences = self.system.notify_batch(prepared)
        return [
            self._strip(tenant, occurrence_summary(o)) for o in occurrences
        ]

    # detections ..................................................

    def _op_detections(self, session: _Session, args: dict) -> list[dict]:
        tenant = session.tenant
        rule = args.get("rule")
        if rule is not None:
            qualified = tenant.qualify(rule)
            matches = self.system.detections(
                qualified, clear=bool(args.get("clear", False))
            )
        else:
            matches = self.system.detections(
                match=tenant.owns, clear=bool(args.get("clear", False))
            )
        return [self._strip(tenant, summary) for summary in matches]

    def _op_subscribe(self, session: _Session, args: dict) -> dict:
        rules = args.get("rules")
        if rules is None:
            session.subscription = set()
        elif isinstance(rules, list):
            session.subscription = {str(rule) for rule in rules}
        else:
            raise ProtocolError("'rules' must be a list of rule names or null")
        return {"subscribed": sorted(session.subscription) or "all"}

    def _op_unsubscribe(self, session: _Session, args: dict) -> dict:
        session.subscription = None
        return {"subscribed": False}

    def _op_stats(self, session: _Session, args: dict) -> dict:
        return session.tenant.snapshot()

    # -- shared helpers ----------------------------------------------------

    def _adopt_trace(self, ctx):
        """Adopt a request frame's trace context, defensively.

        ``ctx`` is peer-supplied: anything other than an object with a
        non-empty string ``trace`` (and optionally an integer ``span``)
        is ignored — a missing or malformed context degrades to a
        server-local trace, never to an error. With no processor on the
        system hub the whole thing is a no-op.
        """
        import contextlib

        telemetry = self.system.telemetry
        if not telemetry.active or not isinstance(ctx, dict):
            return contextlib.nullcontext()
        trace = ctx.get("trace")
        if not isinstance(trace, str) or not trace:
            return contextlib.nullcontext()
        span = ctx.get("span")
        if not isinstance(span, int) or isinstance(span, bool):
            span = None
        return telemetry.trace_scope(trace, parent_span_id=span)

    def health_slice(self) -> dict:
        """The serving section of ``health()`` (drain state included)."""
        try:
            address = self.address
        except OSError:  # listener already closed mid-drain
            address = None
        return {
            "serving": {
                "address": address,
                "connections": self.connections(),
                "draining": self._closing.is_set(),
            },
        }

    def _definitions(self):
        """Definition critical section: server lock + all shard locks."""

        class _Guard:
            def __enter__(guard):
                self._define_lock.acquire()
                guard.locks = self.system.detector.runtime.all_locks()
                guard.locks.__enter__()
                return guard

            def __exit__(guard, *exc):
                try:
                    guard.locks.__exit__(*exc)
                finally:
                    self._define_lock.release()

        return _Guard()

    def metric_lines(self, prefix: str = "sentinel") -> list[str]:
        """Per-tenant Prometheus families (see reporting module)."""
        from repro.reporting import serving_metric_lines

        return serving_metric_lines(self, prefix=prefix)

    _OPS = {
        "ping": _op_ping,
        "bye": _op_bye,
        "explicit_event": _op_explicit_event,
        "primitive_event": _op_primitive_event,
        "define": _op_define,
        "event_names": _op_event_names,
        "watch": _op_watch,
        "unwatch": _op_unwatch,
        "enable_rule": _op_enable_rule,
        "disable_rule": _op_disable_rule,
        "rule_names": _op_rule_names,
        "raise_event": _op_raise_event,
        "raise_events": _op_raise_events,
        "notify_batch": _op_notify_batch,
        "detections": _op_detections,
        "subscribe": _op_subscribe,
        "unsubscribe": _op_unsubscribe,
        "stats": _op_stats,
    }
