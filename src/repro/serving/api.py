"""The unified Sentinel API: one surface for local and remote use.

:class:`SentinelAPI` is the event/rule/ingestion subset of the
``Sentinel`` facade, extracted so that a program written against it
runs unchanged whether ``api`` is a local in-process
:class:`~repro.sentinel.Sentinel` or a
:class:`~repro.serving.client.SentinelClient` talking to a shared
server::

    def alarm_pipeline(api: SentinelAPI):
        api.explicit_event("deposit")
        api.explicit_event("audit")
        api.define("suspicious", "deposit >> audit")
        api.watch("flag_account", "suspicious")
        api.raise_event("deposit", amount=900_000)
        api.raise_event("audit")
        return api.detections("flag_account")

The contract the two implementations share:

* **Names, not objects.** Every method accepts and returns plain
  names, expression strings, and JSON-safe dicts — nothing that cannot
  cross a socket. (The local facade *additionally* returns richer
  objects where it always has — ``explicit_event`` returns the event
  node — but the protocol only promises what serializes.)
* **Detections are data.** A watched rule records one summary dict per
  detection (see :func:`detection_summary`); ``detections()`` reads
  them back and listeners/subscriptions observe them live.
* **Errors are types.** Both implementations raise the same
  :mod:`repro.errors` exception types for the same misuse; the wire
  protocol carries the registry code (:func:`repro.errors.error_code`)
  so the client re-raises the exact class the server raised. The
  conformance suite (``tests/serving/test_conformance.py``) holds both
  sides to this.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Optional

from repro.core.params import Occurrence, PrimitiveOccurrence

#: detection listeners receive one summary dict per detection
DetectionListener = Callable[[dict], None]


def occurrence_summary(occurrence: Occurrence) -> dict:
    """A primitive or composite occurrence as a JSON-safe dict.

    Argument values are already atomic (see
    :func:`repro.core.params.atomic`), so the dict round-trips through
    JSON without loss.
    """
    if isinstance(occurrence, PrimitiveOccurrence):
        out = {
            "event": occurrence.event_name,
            "at": occurrence.at,
            "class": occurrence.class_name,
            "method": occurrence.method_name,
            "modifier": (
                occurrence.modifier.value
                if occurrence.modifier is not None else None
            ),
            "args": {key: value for key, value in occurrence.arguments},
            "txn_id": occurrence.txn_id,
        }
        if occurrence.trace_id is not None:
            out["trace"] = occurrence.trace_id
        return out
    out = {
        "event": occurrence.event_name,
        "operator": getattr(occurrence, "operator", "composite"),
        "start": occurrence.start,
        "end": occurrence.end,
        "constituents": [
            occurrence_summary(p) for p in occurrence.primitives()
        ],
    }
    trace = _trace_of(occurrence)
    if trace is not None:
        out["trace"] = trace
    return out


def _trace_of(occurrence: Occurrence) -> Optional[str]:
    """The originating trace id: the first traced primitive's."""
    for primitive in occurrence.primitives():
        trace = getattr(primitive, "trace_id", None)
        if trace is not None:
            return trace
    return None


def detection_summary(rule_name: str, occurrence: Occurrence) -> dict:
    """The record a watched rule appends per detection.

    ``constituents`` flattens the occurrence to its primitive
    parameters in chronological order — the wire form of the paper's
    PARA_LIST — so remote subscribers see exactly what a local
    condition/action would read from ``occ.params``.
    """
    out = {
        "rule": rule_name,
        "event": occurrence.event_name,
        "operator": getattr(occurrence, "operator", "primitive"),
        "start": occurrence.start,
        "end": occurrence.end,
        "constituents": [
            occurrence_summary(p) for p in occurrence.primitives()
        ],
    }
    trace = _trace_of(occurrence)
    if trace is not None:
        out["trace"] = trace
    return out


class SentinelAPI(ABC):
    """The unified local/remote active-system interface (see module doc)."""

    # -- event definition --------------------------------------------------

    @abstractmethod
    def explicit_event(self, name: str):
        """Define (idempotently) an explicit event that can be raised."""

    @abstractmethod
    def primitive_event(self, name: str, class_or_instance: Any,
                        modifier: str, method_name: str,
                        snapshot_state: bool = False):
        """Define a primitive (method) event. Remotely,
        ``class_or_instance`` must be a class *name* string."""

    @abstractmethod
    def define(self, name: str, event: Any):
        """Name a composite event. ``event`` may be an expression
        string in the operator algebra (``"a >> (b & c)"``,
        ``"NOT(a, b, c)"`` — see :mod:`repro.serving.expr`); the local
        facade also accepts an :class:`EventNode`."""

    @abstractmethod
    def event_names(self) -> list[str]:
        """Names of the user-defined events visible to this caller
        (system transaction events and internal ``$`` names excluded)."""

    # -- watched rules -----------------------------------------------------

    @abstractmethod
    def watch(self, name: str, event: Any, *, context: str = "recent",
              coupling: str = "immediate", priority: int = 1,
              executor: str = "sync") -> str:
        """Define a rule whose action records a detection summary.

        ``event`` is an event name, an expression string, or (locally)
        an :class:`EventNode`. ``executor`` selects the execution lane
        (``"sync"`` thread lanes / ``"async"`` the asyncio lane).
        Returns the rule name.
        """

    @abstractmethod
    def unwatch(self, name: str) -> None:
        """Delete a watched rule."""

    @abstractmethod
    def enable_rule(self, name: str) -> None: ...

    @abstractmethod
    def disable_rule(self, name: str) -> None: ...

    @abstractmethod
    def rule_names(self) -> list[str]:
        """Names of the user-defined rules visible to this caller."""

    # -- ingestion ---------------------------------------------------------

    @abstractmethod
    def raise_event(self, name: str, **params: Any):
        """Raise one explicit event."""

    @abstractmethod
    def raise_events(self, events) -> list:
        """Raise many explicit events under one batched dispatch.
        ``events`` is an iterable of names or ``(name, params)`` pairs."""

    @abstractmethod
    def notify_batch(self, items) -> list:
        """Ingest many method-event Notify items under one dispatch.
        Items are ``(instance, class_name, method_name, modifier
        [, arguments])`` tuples; remotely ``instance`` must be None."""

    # -- detections --------------------------------------------------------

    @abstractmethod
    def detections(self, rule: Optional[str] = None, *,
                   clear: bool = False) -> list[dict]:
        """Recorded detection summaries, newest last, optionally
        filtered to one rule and/or consumed (``clear=True``)."""

    @abstractmethod
    def add_detection_listener(self, listener: DetectionListener) -> None:
        """Observe detections live (local callback / remote push)."""

    # -- lifecycle ---------------------------------------------------------

    @abstractmethod
    def ping(self) -> dict:
        """Cheap liveness probe; returns at least ``{"name", "healthy"}``."""

    @abstractmethod
    def close(self) -> None: ...
