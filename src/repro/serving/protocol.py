"""Length-prefixed framing for the Sentinel wire protocol.

A frame is a 4-byte big-endian unsigned length followed by that many
bytes of encoded payload (a JSON object by default; msgpack when both
sides negotiated it and the library is installed — the dependency is
optional and soft-gated, never imported at module load).

Frame shapes (all JSON-safe dicts):

* request:  ``{"id": n, "op": "raise_event", "args": {...}}``
* response: ``{"id": n, "ok": true, "result": ...}``
* error:    ``{"id": n, "ok": false, "code": 41, "type": "UnknownEvent",
  "error": "..."}`` — ``code`` is the stable registry code from
  :func:`repro.errors.error_code`, so the client re-raises the exact
  exception class the server raised.
* push:     ``{"push": "detection", "detection": {...}}`` (no id; may
  arrive between any response frames once subscribed).

Robustness contract: readers always either return one complete decoded
frame or raise — :class:`~repro.errors.ConnectionClosed` on EOF (even
mid-frame), :class:`~repro.errors.FrameTooLarge` when a header declares
more than ``max_frame`` bytes (the stream is then unrecoverable: the
body was never read), :class:`~repro.errors.ProtocolError` when a
complete body fails to decode (the stream *is* still framed — callers
may keep serving).
"""

from __future__ import annotations

import json
import struct
from typing import Optional

from repro.errors import ConnectionClosed, FrameTooLarge, ProtocolError

#: wire protocol version; bumped on incompatible frame-shape changes
PROTOCOL_VERSION = 1

#: default upper bound on one frame's payload (1 MiB)
DEFAULT_MAX_FRAME = 1 << 20

_HEADER = struct.Struct(">I")


class JsonCodec:
    """UTF-8 JSON payloads — the mandatory baseline transport."""

    name = "json"

    @staticmethod
    def encode(payload: dict) -> bytes:
        return json.dumps(payload, separators=(",", ":")).encode("utf-8")

    @staticmethod
    def decode(data: bytes) -> dict:
        try:
            payload = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ProtocolError(f"malformed frame body: {error}") from None
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"frame body must be an object, got {type(payload).__name__}"
            )
        return payload


class MsgpackCodec:
    """msgpack payloads; available only when the library is installed."""

    name = "msgpack"

    def __init__(self):
        import msgpack  # soft dependency; gated by available_transports()

        self._msgpack = msgpack

    def encode(self, payload: dict) -> bytes:
        return self._msgpack.packb(payload, use_bin_type=True)

    def decode(self, data: bytes) -> dict:
        try:
            payload = self._msgpack.unpackb(data, raw=False)
        except Exception as error:
            raise ProtocolError(f"malformed frame body: {error}") from None
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"frame body must be a map, got {type(payload).__name__}"
            )
        return payload


def _has_msgpack() -> bool:
    import importlib.util

    return importlib.util.find_spec("msgpack") is not None


def available_transports() -> list[str]:
    """Transports this process can actually speak."""
    transports = ["json"]
    if _has_msgpack():
        transports.append("msgpack")
    return transports


def get_codec(name: str):
    if name == "json":
        return JsonCodec()
    if name == "msgpack":
        if not _has_msgpack():
            raise ProtocolError(
                "transport 'msgpack' requested but the msgpack library is "
                "not installed; available: " + ", ".join(available_transports())
            )
        return MsgpackCodec()
    raise ProtocolError(
        f"unknown transport {name!r}; available: "
        + ", ".join(available_transports())
    )


def recv_exact(sock, size: int) -> bytes:
    """Read exactly ``size`` bytes, riding out partial recv() returns."""
    chunks = bytearray()
    while len(chunks) < size:
        chunk = sock.recv(size - len(chunks))
        if not chunk:
            if chunks:
                raise ConnectionClosed(
                    f"peer closed mid-frame ({len(chunks)}/{size} bytes read)"
                )
            raise ConnectionClosed("peer closed the connection")
        chunks += chunk
    return bytes(chunks)


def recv_frame(sock, codec, max_frame: int = DEFAULT_MAX_FRAME) -> dict:
    """Read one complete frame; see the module doc for the error contract."""
    (length,) = _HEADER.unpack(recv_exact(sock, _HEADER.size))
    if length == 0:
        raise ProtocolError("zero-length frame")
    if length > max_frame:
        raise FrameTooLarge(
            f"frame of {length} bytes exceeds the {max_frame}-byte limit"
        )
    return codec.decode(recv_exact(sock, length))


def encode_frame(payload: dict, codec,
                 max_frame: Optional[int] = None) -> bytes:
    """One payload as header+body bytes, bounds-checked before sending."""
    body = codec.encode(payload)
    if max_frame is not None and len(body) > max_frame:
        raise FrameTooLarge(
            f"outgoing frame of {len(body)} bytes exceeds the "
            f"{max_frame}-byte limit"
        )
    return _HEADER.pack(len(body)) + body


def send_frame(sock, payload: dict, codec,
               max_frame: Optional[int] = None) -> None:
    try:
        sock.sendall(encode_frame(payload, codec, max_frame))
    except OSError as error:
        raise ConnectionClosed(f"send failed: {error}") from None
