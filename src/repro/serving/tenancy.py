"""Tenants: namespaces, bearer tokens, and quotas for the server.

One shared :class:`~repro.sentinel.Sentinel` serves every tenant; what
keeps tenants apart is pure *naming*: every event name, rule name, and
reactive class name a client sends is prefixed with ``<tenant>::``
before it touches the detector, and every name the server sends back is
stripped again. Two tenants can therefore both define ``e1`` and rule
``r1`` without collision, and neither can reference (or even observe)
the other's definitions — an unknown qualified name simply raises
:class:`~repro.errors.UnknownEvent`/:class:`~repro.errors.UnknownRule`
like any other undefined name.

Quotas are enforced per tenant at the wire boundary:

* ``max_rules`` — watched rules concurrently defined;
* ``events_per_sec`` — a token bucket charged one token per event
  (batches charge their length), with ``burst`` tokens of headroom.

Rejections raise :class:`~repro.errors.QuotaExceeded` *before* any
event enters the detector, so one tenant exhausting its budget never
perturbs another tenant's detection state.
"""

from __future__ import annotations

import hmac
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional

from repro.errors import (
    AuthenticationError,
    BatchTooLarge,
    ProtocolError,
    QuotaExceeded,
)

#: separator between the tenant namespace and user-chosen names
NAMESPACE_SEP = "::"


def qualify(tenant: str, name: str) -> str:
    """A client-supplied name, moved into the tenant's namespace."""
    if not isinstance(name, str) or not name:
        raise ProtocolError("names must be non-empty strings")
    if NAMESPACE_SEP in name:
        raise ProtocolError(
            f"names may not contain {NAMESPACE_SEP!r}: {name!r}"
        )
    return f"{tenant}{NAMESPACE_SEP}{name}"


def unqualify(tenant: str, name: str) -> str:
    """Strip the tenant prefix (names outside the namespace pass through)."""
    prefix = f"{tenant}{NAMESPACE_SEP}"
    return name[len(prefix):] if name.startswith(prefix) else name


def owner_of(name: str) -> Optional[str]:
    """The tenant a qualified name belongs to, if any."""
    tenant, sep, rest = name.partition(NAMESPACE_SEP)
    return tenant if sep and tenant and rest else None


class TokenBucket:
    """A thread-safe token bucket (tokens/second with burst headroom).

    ``clock`` is injectable so quota tests are deterministic.
    """

    def __init__(self, rate: float, burst: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0:
            raise ValueError("token bucket rate must be positive")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(self.rate, 1.0)
        self._clock = clock
        self._tokens = self.burst
        self._refilled_at = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst,
                self._tokens + (now - self._refilled_at) * self.rate,
            )
            self._refilled_at = now
            if tokens > self._tokens:
                return False
            self._tokens -= tokens
            return True

    def available(self) -> float:
        with self._lock:
            now = self._clock()
            return min(
                self.burst,
                self._tokens + (now - self._refilled_at) * self.rate,
            )


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant limits; ``None`` means unlimited."""

    max_rules: Optional[int] = 256
    events_per_sec: Optional[float] = None
    burst: Optional[float] = None


@dataclass
class TenantCounters:
    """Monotonic per-tenant counters surfaced as Prometheus families."""

    events: int = 0
    batches: int = 0
    detections: int = 0
    quota_rejections: int = 0
    errors: int = 0


class Tenant:
    """One namespace + credential + quota bundle on a server."""

    def __init__(self, name: str, token: Optional[str] = None,
                 quota: Optional[TenantQuota] = None,
                 clock: Callable[[], float] = time.monotonic):
        if not name or NAMESPACE_SEP in name:
            raise ValueError(f"invalid tenant name {name!r}")
        self.name = name
        self.token = token
        self.quota = quota if quota is not None else TenantQuota()
        self.counters = TenantCounters()
        self.rules = 0          # gauge: watched rules currently defined
        self.connections = 0    # gauge: live authenticated connections
        self.lock = threading.Lock()
        self.bucket: Optional[TokenBucket] = (
            TokenBucket(self.quota.events_per_sec, self.quota.burst,
                        clock=clock)
            if self.quota.events_per_sec is not None else None
        )

    # -- quota gates -------------------------------------------------------

    def charge_events(self, count: int) -> None:
        """Admit ``count`` events or raise :class:`QuotaExceeded`."""
        bucket = self.bucket
        if bucket is not None:
            if count > bucket.burst:
                # try_acquire caps the balance at burst, so an oversized
                # batch can never be admitted: "retry later" would spin
                # forever. Fail with the non-retryable variant instead.
                with self.lock:
                    self.counters.quota_rejections += 1
                raise BatchTooLarge(
                    f"tenant {self.name!r} batch of {count} events "
                    f"exceeds burst capacity ({bucket.burst:g}): "
                    f"split the batch"
                )
            if not bucket.try_acquire(count):
                with self.lock:
                    self.counters.quota_rejections += 1
                raise QuotaExceeded(
                    f"tenant {self.name!r} exceeded its event rate "
                    f"({self.quota.events_per_sec:g}/s); retry later"
                )
        with self.lock:
            self.counters.events += count

    def charge_rule(self) -> None:
        """Admit one more watched rule or raise :class:`QuotaExceeded`."""
        with self.lock:
            limit = self.quota.max_rules
            if limit is not None and self.rules >= limit:
                self.counters.quota_rejections += 1
                raise QuotaExceeded(
                    f"tenant {self.name!r} already has {self.rules} rules "
                    f"(limit {limit})"
                )
            self.rules += 1

    def release_rule(self) -> None:
        with self.lock:
            self.rules = max(0, self.rules - 1)

    # -- names -------------------------------------------------------------

    def qualify(self, name: str) -> str:
        return qualify(self.name, name)

    def unqualify(self, name: str) -> str:
        return unqualify(self.name, name)

    def owns(self, name: str) -> bool:
        return name.startswith(self.name + NAMESPACE_SEP)

    def snapshot(self) -> dict:
        with self.lock:
            return {
                "tenant": self.name,
                "events": self.counters.events,
                "batches": self.counters.batches,
                "detections": self.counters.detections,
                "quota_rejections": self.counters.quota_rejections,
                "errors": self.counters.errors,
                "rules": self.rules,
                "connections": self.connections,
                "max_rules": self.quota.max_rules,
                "events_per_sec": self.quota.events_per_sec,
            }

    @classmethod
    def parse_spec(cls, spec: str,
                   clock: Callable[[], float] = time.monotonic) -> "Tenant":
        """Build a tenant from a CLI spec string.

        ``name:token[:rules=N][:eps=R][:burst=B]`` — e.g.
        ``alpha:s3cret:rules=64:eps=500``. An empty token
        (``alpha:``) means no authentication for that tenant.
        """
        parts = spec.split(":")
        if len(parts) < 2:
            raise ValueError(
                f"tenant spec {spec!r} must look like name:token[:k=v...]"
            )
        name, token = parts[0], parts[1] or None
        max_rules: Optional[int] = TenantQuota.max_rules
        eps: Optional[float] = None
        burst: Optional[float] = None
        for option in parts[2:]:
            key, sep, value = option.partition("=")
            if not sep:
                raise ValueError(f"bad tenant option {option!r} in {spec!r}")
            if key == "rules":
                max_rules = int(value)
            elif key == "eps":
                eps = float(value)
            elif key == "burst":
                burst = float(value)
            else:
                raise ValueError(f"unknown tenant option {key!r} in {spec!r}")
        quota = TenantQuota(max_rules=max_rules, events_per_sec=eps,
                            burst=burst)
        return cls(name, token=token, quota=quota, clock=clock)


class TenantRegistry:
    """The server's tenant directory and authenticator."""

    def __init__(self, tenants: Iterable[Tenant]):
        self._tenants: Dict[str, Tenant] = {}
        for tenant in tenants:
            if tenant.name in self._tenants:
                raise ValueError(f"duplicate tenant {tenant.name!r}")
            self._tenants[tenant.name] = tenant
        if not self._tenants:
            # Open single-tenant mode: no token required.
            self._tenants["default"] = Tenant("default", token=None)

    def authenticate(self, name: str, token: Optional[str]) -> Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            raise AuthenticationError(f"unknown tenant {name!r}")
        if tenant.token is not None:
            if not isinstance(token, str) or not hmac.compare_digest(
                tenant.token, token
            ):
                raise AuthenticationError(
                    f"bad token for tenant {name!r}"
                )
        return tenant

    def get(self, name: str) -> Optional[Tenant]:
        return self._tenants.get(name)

    def owner_of(self, qualified_name: str) -> Optional[Tenant]:
        owner = owner_of(qualified_name)
        return self._tenants.get(owner) if owner else None

    def all(self) -> list[Tenant]:
        return sorted(self._tenants.values(), key=lambda t: t.name)

    def __len__(self) -> int:
        return len(self._tenants)
