"""Event expressions as *strings*, for API surfaces that cross a wire.

The operator algebra (:mod:`repro.core.events.algebra`) gives Python
programs ``a >> (b & c)``; a remote client cannot ship node objects, so
the unified API accepts the same algebra as text::

    parse_event_expr("a >> (b & c)", graph.get)
    parse_event_expr("NOT(open, audit, close)", graph.get)
    parse_event_expr("P(open, 5.0, close)", graph.get)

Grammar (binary precedence matches the Python algebra — ``>>`` binds
tighter than ``&``, which binds tighter than ``|``)::

    expr    := or
    or      := and  ("|"  and)*
    and     := seq  ("&"  seq)*
    seq     := prim (">>" prim)*
    prim    := NAME | call | "(" expr ")"
    call    := OP "(" arg ("," arg)* ")"
    OP      := NOT | A | A* | P | P* | PLUS      (case-insensitive)
    arg     := expr | NUMBER                     (numbers: period/delay)

Names are resolved through the caller-supplied ``resolve`` callable, so
the same parser serves the local facade (``graph.get``) and the server
(which prefixes names with the calling tenant's namespace first).
Syntax errors raise :class:`repro.errors.InvalidEventExpression`;
unknown names propagate whatever ``resolve`` raises (normally
:class:`repro.errors.UnknownEvent`), preserving error-type parity
between local and remote use.
"""

from __future__ import annotations

import re
from typing import Callable, List, Optional, Tuple

from repro.core.events.algebra import E
from repro.errors import InvalidEventExpression

_TOKEN = re.compile(
    r"\s*(?:"
    r"(?P<seq>>>)"
    r"|(?P<op>[&|(),*])"
    r"|(?P<number>\d+(?:\.\d+)?)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_.\-]*)"
    r")"
)

#: call-style operator keywords → (arity, builder)
_CALLS = {
    "NOT": (3, lambda a: E.not_(*a)),
    "A": (3, lambda a: E.A(*a)),
    "A*": (3, lambda a: E.A_star(*a)),
    "P": (3, lambda a: E.P(a[0], _number(a[1], "P"), a[2])),
    "P*": (3, lambda a: E.P_star(a[0], _number(a[1], "P*"), a[2])),
    "PLUS": (2, lambda a: E.plus(a[0], _number(a[1], "PLUS"))),
}


def _number(value, op: str) -> float:
    if not isinstance(value, float):
        raise InvalidEventExpression(
            f"{op}(...) needs a numeric period/delay, got an event operand"
        )
    return value


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None or match.end() == match.start():
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise InvalidEventExpression(
                f"unexpected character {remainder[0]!r} in event "
                f"expression {text!r}"
            )
        pos = match.end()
        for kind in ("seq", "op", "number", "name"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    tokens.append(("end", ""))
    return tokens


class _ExprParser:
    def __init__(self, text: str, resolve: Callable[[str], object]):
        self._text = text
        self._resolve = resolve
        self._tokens = _tokenize(text)
        self._index = 0

    def parse(self):
        node = self._or()
        kind, value = self._peek()
        if kind != "end":
            raise InvalidEventExpression(
                f"trailing {value!r} in event expression {self._text!r}"
            )
        if isinstance(node, float):
            raise InvalidEventExpression(
                f"a bare number is not an event expression: {self._text!r}"
            )
        return node

    # -- precedence ladder -------------------------------------------------

    def _or(self):
        node = self._and()
        while self._accept("op", "|"):
            node = E.or_(node, self._and())
        return node

    def _and(self):
        node = self._seq()
        while self._accept("op", "&"):
            node = E.and_(node, self._seq())
        return node

    def _seq(self):
        node = self._primary()
        while self._accept("seq", ">>"):
            node = E.seq(node, self._primary())
        return node

    def _primary(self):
        kind, value = self._peek()
        if kind == "number":
            self._advance()
            return float(value)
        if kind == "op" and value == "(":
            self._advance()
            node = self._or()
            self._expect("op", ")")
            return node
        if kind == "name":
            self._advance()
            keyword = value.upper()
            if self._accept("op", "*"):
                keyword += "*"
                if keyword not in _CALLS:
                    raise InvalidEventExpression(
                        f"unknown operator {keyword!r} in {self._text!r}"
                    )
                return self._call(keyword)
            if keyword in _CALLS and self._check("op", "("):
                return self._call(keyword)
            return self._resolve(value)
        raise InvalidEventExpression(
            f"expected an event name, operator call, or '(' in "
            f"{self._text!r}, found {value!r}" if value else
            f"event expression {self._text!r} ended unexpectedly"
        )

    def _call(self, keyword: str):
        arity, build = _CALLS[keyword]
        self._expect("op", "(")
        args = [self._or()]
        while self._accept("op", ","):
            args.append(self._or())
        self._expect("op", ")")
        if len(args) != arity:
            raise InvalidEventExpression(
                f"{keyword}(...) takes {arity} arguments, got {len(args)} "
                f"in {self._text!r}"
            )
        return build(args)

    # -- token plumbing ----------------------------------------------------

    def _peek(self) -> Tuple[str, str]:
        return self._tokens[self._index]

    def _advance(self) -> Tuple[str, str]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _check(self, kind: str, value: Optional[str] = None) -> bool:
        actual_kind, actual_value = self._peek()
        return actual_kind == kind and (value is None or actual_value == value)

    def _accept(self, kind: str, value: str) -> bool:
        if self._check(kind, value):
            self._advance()
            return True
        return False

    def _expect(self, kind: str, value: str) -> None:
        if not self._accept(kind, value):
            __, found = self._peek()
            raise InvalidEventExpression(
                f"expected {value!r} in event expression {self._text!r}"
                + (f", found {found!r}" if found else "")
            )


def parse_event_expr(text: str, resolve: Callable[[str], object]):
    """Parse an event expression string into an :class:`EventNode`.

    ``resolve`` maps each event *name* in the text to its node (and
    defines the namespace the expression is evaluated in).
    """
    if not isinstance(text, str) or not text.strip():
        raise InvalidEventExpression("empty event expression")
    return _ExprParser(text, resolve).parse()
