"""The thin remote implementation of :class:`SentinelAPI`.

:class:`SentinelClient` opens one TCP connection, speaks the
length-prefixed protocol (:mod:`repro.serving.protocol`), and maps each
API method onto one request/response exchange. A background reader
thread demultiplexes the stream: response frames wake the caller
waiting on that request id, push frames (detection notifications after
:meth:`subscribe`) go to the ``notifications`` deque and any registered
listeners.

Pass a :class:`~repro.telemetry.hub.TelemetryHub` via ``telemetry=``
and every call becomes a ``WireRequest`` span whose trace/span ids ride
the request frame's ``ctx`` field; a trace-aware server adopts them, so
server-side detection spans parent into the client's wire span and the
detection summaries (and push frames) carry the originating trace id
back in their ``"trace"`` key.

Error parity is the point: a server-side failure comes back as a
registry code and the client re-raises the *same* exception class a
local :class:`~repro.sentinel.Sentinel` would have raised —
``UnknownEvent`` is ``UnknownEvent`` on both sides of the wire. The
conformance suite pins this.
"""

from __future__ import annotations

import socket
import threading
from collections import deque
from typing import TYPE_CHECKING, Any, Iterable, List, Optional

from repro.errors import (
    ConnectionClosed,
    ProtocolError,
    exception_for,
)
from repro.serving.api import DetectionListener, SentinelAPI
from repro.serving.protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    get_codec,
    recv_frame,
    send_frame,
)

if TYPE_CHECKING:
    from repro.telemetry.hub import TelemetryHub


class _Waiter:
    """One in-flight request: the caller parks here until its reply."""

    __slots__ = ("ready", "frame", "error")

    def __init__(self):
        self.ready = threading.Event()
        self.frame: Optional[dict] = None
        self.error: Optional[Exception] = None


class SentinelClient(SentinelAPI):
    """A remote Sentinel system, used exactly like a local one."""

    def __init__(
        self,
        host: str,
        port: Optional[int] = None,
        *,
        tenant: str = "default",
        token: Optional[str] = None,
        timeout: float = 10.0,
        transport: str = "json",
        max_frame: int = DEFAULT_MAX_FRAME,
        telemetry: Optional["TelemetryHub"] = None,
    ):
        if port is None:
            host, _, port_text = host.rpartition(":")
            if not host or not port_text.isdigit():
                raise ProtocolError(
                    "address must be host:port when no port is given"
                )
            port = int(port_text)
        self.tenant = tenant
        self.timeout = timeout
        self.max_frame = max_frame
        #: optional hub: when active, calls open WireRequest spans and
        #: request frames carry the trace context (see module docs)
        self.telemetry = telemetry
        #: push notifications received after subscribe(), oldest first
        self.notifications: deque = deque(maxlen=4096)
        self._listeners: List[DetectionListener] = []
        self._codec = get_codec("json")
        self._next_id = 1
        self._pending: dict = {}
        self._state_lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._closed = False
        #: terminal connection error, set (under the state lock) when
        #: the reader thread dies; exchanges registered *after* that
        #: moment fail immediately instead of waiting out the timeout
        self._conn_error: Optional[Exception] = None
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # The hello exchange runs synchronously before the reader thread
        # exists, so the codec switch cannot race a concurrent read.
        self.server_info = self._hello(tenant, token, transport)
        self._sock.settimeout(None)
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"sentinel-client:{tenant}@{host}:{port}",
            daemon=True,
        )
        self._reader.start()

    # -- wire plumbing -----------------------------------------------------

    def _hello(self, tenant: str, token: Optional[str],
               transport: str) -> dict:
        request = {
            "id": 0,
            "op": "hello",
            "args": {
                "tenant": tenant,
                "token": token,
                "protocol": PROTOCOL_VERSION,
                "transport": transport,
            },
        }
        send_frame(self._sock, request, self._codec, self.max_frame)
        reply = recv_frame(self._sock, self._codec, self.max_frame)
        if not reply.get("ok"):
            error = exception_for(
                reply.get("code", 1), reply.get("error", "hello failed")
            )
            self._teardown()
            raise error
        self._codec = get_codec(transport)
        return reply.get("result") or {}

    def _read_loop(self) -> None:
        try:
            while True:
                frame = recv_frame(self._sock, self._codec, self.max_frame)
                if "push" in frame:
                    self._on_push(frame)
                    continue
                with self._state_lock:
                    waiter = self._pending.pop(frame.get("id"), None)
                if waiter is not None:
                    waiter.frame = frame
                    waiter.ready.set()
        except (ConnectionClosed, ProtocolError, OSError) as error:
            self._fail_pending(error)
        except Exception as error:  # noqa: BLE001 — surface, don't vanish
            self._fail_pending(error)

    def _fail_pending(self, error: Exception) -> None:
        closed = error if isinstance(error, ConnectionClosed) else (
            ConnectionClosed(f"connection lost: {error}")
        )
        with self._state_lock:
            # Record the terminal error in the same critical section
            # that drains the waiters: a waiter registering concurrently
            # either lands in _pending (drained below) or observes
            # _conn_error in _exchange — it can never slip between.
            self._conn_error = closed
            waiters = list(self._pending.values())
            self._pending.clear()
        for waiter in waiters:
            waiter.error = closed
            waiter.ready.set()

    def _on_push(self, frame: dict) -> None:
        if frame.get("push") != "detection":
            return
        detection = frame.get("detection")
        if not isinstance(detection, dict):
            return
        self.notifications.append(detection)
        for listener in list(self._listeners):
            try:
                listener(detection)
            except Exception:  # noqa: BLE001 — listener bugs stay local
                pass

    def _call(self, op: str, **args: Any):
        hub = self.telemetry
        if hub is None or not hub.active:
            return self._exchange(op, args, None)
        from repro.telemetry.events import WireRequest

        with hub.span(WireRequest, op=op) as span:
            try:
                result = self._exchange(op, args, span)
            except BaseException:
                span.set(ok=False)
                raise
            return result

    def _exchange(self, op: str, args: dict, span) -> Any:
        with self._state_lock:
            if self._closed:
                raise ConnectionClosed("client is closed")
            if self._conn_error is not None:
                raise self._conn_error
            request_id = self._next_id
            self._next_id += 1
            waiter = _Waiter()
            self._pending[request_id] = waiter
        request = {"id": request_id, "op": op, "args": args}
        if span is not None:
            request["ctx"] = {"trace": span.trace_id, "span": span.span_id}
        try:
            with self._send_lock:
                send_frame(self._sock, request, self._codec, self.max_frame)
        except BaseException as exc:
            with self._state_lock:
                self._pending.pop(request_id, None)
            if isinstance(exc, OSError):
                raise ConnectionClosed(f"send failed: {exc}") from exc
            raise
        if not waiter.ready.wait(self.timeout):
            with self._state_lock:
                self._pending.pop(request_id, None)
            raise ConnectionClosed(
                f"no reply to {op!r} within {self.timeout:g}s"
            )
        if waiter.error is not None:
            raise waiter.error
        frame = waiter.frame or {}
        if frame.get("ok"):
            return frame.get("result")
        raise exception_for(
            frame.get("code", 1), frame.get("error", f"{op} failed")
        )

    @property
    def dispatch(self) -> str:
        """The server system's detection engine, from the hello
        exchange ("interpreted" or "compiled"); remote behavior is
        identical under both."""
        return self.server_info.get("dispatch", "interpreted")

    @property
    def async_lane(self) -> bool:
        """Whether the server supports ``watch(executor="async")``
        (advertised in the hello exchange; False for older servers)."""
        return bool(self.server_info.get("async_lane", False))

    # -- SentinelAPI: event definition -------------------------------------

    def explicit_event(self, name: str) -> str:
        return self._call("explicit_event", name=name)

    def primitive_event(self, name: str, class_or_instance: Any,
                        modifier: str, method_name: str,
                        snapshot_state: bool = False) -> str:
        if not isinstance(class_or_instance, str):
            raise ProtocolError(
                "remote primitive_event takes a class *name* string "
                "(object identity does not cross the wire)"
            )
        return self._call(
            "primitive_event",
            name=name,
            class_name=class_or_instance,
            modifier=modifier,
            method_name=method_name,
            snapshot_state=snapshot_state,
        )

    def define(self, name: str, event: Any) -> str:
        if not isinstance(event, str):
            raise ProtocolError(
                "remote define takes an expression string, e.g. 'a >> b'"
            )
        return self._call("define", name=name, expr=event)

    def event_names(self) -> list:
        return self._call("event_names")

    # -- SentinelAPI: watched rules ----------------------------------------

    def watch(self, name: str, event: Any, *, context: str = "recent",
              coupling: str = "immediate", priority: int = 1,
              executor: str = "sync") -> str:
        if not isinstance(event, str):
            raise ProtocolError(
                "remote watch takes an event name or expression string"
            )
        return self._call(
            "watch", name=name, event=event, context=context,
            coupling=coupling, priority=priority, executor=executor,
        )

    def unwatch(self, name: str) -> None:
        self._call("unwatch", name=name)

    def enable_rule(self, name: str) -> None:
        self._call("enable_rule", name=name)

    def disable_rule(self, name: str) -> None:
        self._call("disable_rule", name=name)

    def rule_names(self) -> list:
        return self._call("rule_names")

    # -- SentinelAPI: ingestion --------------------------------------------

    def raise_event(self, name: str, **params: Any) -> dict:
        return self._call("raise_event", name=name, params=params)

    def raise_events(self, events: Iterable) -> list:
        wire_events = []
        for item in events:
            if isinstance(item, str):
                wire_events.append(item)
            elif isinstance(item, (list, tuple)) and len(item) == 2:
                wire_events.append([item[0], dict(item[1])])
            else:
                raise ProtocolError(
                    "each event must be a name or a (name, params) pair"
                )
        return self._call("raise_events", events=wire_events)

    def notify_batch(self, items: Iterable) -> list:
        wire_items = []
        for item in items:
            parts = list(item)
            if not 4 <= len(parts) <= 5:
                raise ProtocolError(
                    "each item must be (instance, class_name, method_name, "
                    "modifier[, arguments])"
                )
            if parts[0] is not None:
                raise ProtocolError(
                    "remote notify_batch items must carry instance=None "
                    "(object identity does not cross the wire)"
                )
            if len(parts) == 5 and parts[4] is not None:
                parts[4] = dict(parts[4])
            wire_items.append(parts)
        return self._call("notify_batch", items=wire_items)

    # -- SentinelAPI: detections -------------------------------------------

    def detections(self, rule: Optional[str] = None, *,
                   clear: bool = False) -> list:
        return self._call("detections", rule=rule, clear=clear)

    def add_detection_listener(self, listener: DetectionListener) -> None:
        """Register a live-detection callback; implies :meth:`subscribe`."""
        self._listeners.append(listener)
        self.subscribe()

    def remove_detection_listener(self, listener: DetectionListener) -> None:
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def subscribe(self, rules: Optional[Iterable[str]] = None) -> dict:
        """Start receiving detection pushes (all rules, or just some)."""
        return self._call(
            "subscribe", rules=None if rules is None else list(rules)
        )

    def unsubscribe(self) -> dict:
        return self._call("unsubscribe")

    # -- SentinelAPI: lifecycle --------------------------------------------

    def ping(self) -> dict:
        return self._call("ping")

    def stats(self) -> dict:
        """This tenant's server-side counters and quota standing."""
        return self._call("stats")

    def close(self) -> None:
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._call_nowait_bye()
        finally:
            self._teardown()
            # The shutdown socket wakes the reader, which drains the
            # waiters itself — but drain here too so an in-flight
            # request gets ConnectionClosed even if the reader was
            # already gone when it registered.
            self._fail_pending(ConnectionClosed("client is closed"))
            if self._reader is not None:
                self._reader.join(timeout=2.0)

    def _call_nowait_bye(self) -> None:
        try:
            with self._send_lock:
                send_frame(
                    self._sock, {"id": None, "op": "bye", "args": {}},
                    self._codec, self.max_frame,
                )
        except (ConnectionClosed, OSError):
            pass

    def _teardown(self) -> None:
        # shutdown() before close(): closing the fd alone does not wake
        # a reader thread blocked in recv() on Linux — the half-close
        # does, so the reader exits promptly and fails its waiters.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "SentinelClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        peer = "closed"
        if not self._closed:
            try:
                peer = "%s:%s" % self._sock.getpeername()[:2]
            except OSError:
                pass
        return f"SentinelClient(tenant={self.tenant!r}, server={peer})"
