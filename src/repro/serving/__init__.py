"""The serving layer: a multi-tenant Sentinel server over TCP.

The package turns the in-process active system into a shared service:

* :mod:`repro.serving.api` — the :class:`SentinelAPI` protocol, the
  event/rule/ingestion subset of the ``Sentinel`` facade that both the
  local facade and the remote client implement, so remote is a drop-in
  replacement for local;
* :mod:`repro.serving.protocol` — length-prefixed JSON (msgpack
  optional) framing over sockets;
* :mod:`repro.serving.tenancy` — tenants, bearer tokens, per-tenant
  namespaces and quotas (rule counts, token-bucket event rates);
* :mod:`repro.serving.server` — :class:`SentinelServer`, a threaded
  accept loop multiplexing many client processes onto one shared
  detector;
* :mod:`repro.serving.client` — :class:`SentinelClient`, the thin
  blocking client with detection push notifications.

``SentinelServer``/``SentinelClient`` are re-exported lazily so that
importing :mod:`repro.sentinel` (which pulls :mod:`repro.serving.api`
for the protocol base class) never recurses back into the facade.
"""

from __future__ import annotations

from repro.serving.api import SentinelAPI, detection_summary, occurrence_summary
from repro.serving.expr import parse_event_expr
from repro.serving.protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    available_transports,
)
from repro.serving.tenancy import Tenant, TenantQuota, TokenBucket

__all__ = [
    "SentinelAPI",
    "SentinelClient",
    "SentinelServer",
    "Tenant",
    "TenantQuota",
    "TokenBucket",
    "DEFAULT_MAX_FRAME",
    "PROTOCOL_VERSION",
    "available_transports",
    "detection_summary",
    "occurrence_summary",
    "parse_event_expr",
]

_LAZY = {
    "SentinelServer": "repro.serving.server",
    "SentinelClient": "repro.serving.client",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
