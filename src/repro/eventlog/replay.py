"""Batch detection: replay a stored event log through a detector.

"The composite event detector needs to support detection of events as
they happen (online) ... or over a stored event-log (in batch mode)."
Replay walks the log in order and re-signals each primitive event.
In ``collect`` mode (the default for after-the-fact analysis) the
detector records which rules *would* have fired without executing
them; in ``execute`` mode rules actually run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.detector import LocalEventDetector
from repro.core.params import EventModifier
from repro.core.scheduler import RuleActivation
from repro.errors import EventError
from repro.eventlog.log import EventLog, LoggedEvent


@dataclass
class ReplayReport:
    """What a batch run detected."""

    events_replayed: int = 0
    triggers: list[RuleActivation] = field(default_factory=list)

    def triggered_rules(self) -> list[str]:
        return [a.rule.name for a in self.triggers]


def replay(
    log: EventLog,
    detector: LocalEventDetector,
    mode: str = "collect",
    flush_first: bool = True,
) -> ReplayReport:
    """Run ``log`` through ``detector``; returns the :class:`ReplayReport`.

    ``mode='collect'`` records rule triggers without executing them;
    ``mode='execute'`` runs conditions and actions as in online mode.
    """
    if mode not in ("collect", "execute"):
        raise EventError(f"replay mode must be 'collect' or 'execute', got {mode!r}")
    if flush_first:
        detector.flush()
    report = ReplayReport()
    previous_collect = detector.collect_mode
    previous_collected = list(detector.collected)
    detector.collect_mode = mode == "collect"
    detector.collected = []
    try:
        for entry in log:
            _replay_one(entry, detector)
            report.events_replayed += 1
        report.triggers = list(detector.collected)
    finally:
        detector.collect_mode = previous_collect
        detector.collected = previous_collected
    return report


def _replay_one(entry: LoggedEvent, detector: LocalEventDetector) -> None:
    if entry.class_name == "$EXPLICIT":
        if detector.graph.has(entry.event_name):
            detector.raise_event(
                entry.event_name,
                txn_id=entry.txn_id,
                **{k: v for k, v in entry.arguments},
            )
        return
    detector.notify(
        entry.instance,
        entry.class_name or "",
        entry.method_name or "",
        EventModifier.parse(entry.modifier or "end"),
        arguments={k: v for k, v in entry.arguments},
        txn_id=entry.txn_id,
    )
