"""Event logs: durable records of primitive occurrences.

Each entry is the data the detector needs to reproduce a primitive
event signal. Logs live in memory or as JSON-lines files (inspectable
with standard tools); entries hold only simple data types, the same
restriction the detector applies to event parameters.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterator, Optional

from repro.core.detector import LocalEventDetector
from repro.core.params import PrimitiveOccurrence
from repro.errors import EventError


@dataclass(frozen=True)
class LoggedEvent:
    """One replayable primitive occurrence."""

    event_name: str
    at: float
    class_name: Optional[str]
    instance: Optional[str]
    method_name: Optional[str]
    modifier: Optional[str]
    arguments: list  # [name, value] pairs
    txn_id: Optional[int]

    @classmethod
    def from_occurrence(cls, occ: PrimitiveOccurrence) -> "LoggedEvent":
        return cls(
            event_name=occ.event_name,
            at=occ.at,
            class_name=occ.class_name,
            instance=str(occ.instance) if occ.instance is not None else None,
            method_name=occ.method_name,
            modifier=occ.modifier.value if occ.modifier else None,
            arguments=[[k, _jsonable(v)] for k, v in occ.arguments],
            txn_id=occ.txn_id,
        )

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "LoggedEvent":
        data = json.loads(line)
        return cls(**data)


def _jsonable(value):
    if isinstance(value, (bytes, bytearray)):
        return value.hex()
    return value


class EventLog:
    """An append-only log of primitive occurrences.

    With a ``path`` entries are appended to a JSON-lines file as they
    arrive (and read back on iteration); without one the log is purely
    in-memory.
    """

    def __init__(self, path: Optional[str | os.PathLike] = None):
        self._path = Path(path) if path is not None else None
        self._entries: list[LoggedEvent] = []
        self._lock = threading.Lock()
        if self._path is not None and self._path.exists():
            with open(self._path) as f:
                for line in f:
                    line = line.strip()
                    if line:
                        self._entries.append(LoggedEvent.from_json(line))

    def append(self, entry: LoggedEvent | PrimitiveOccurrence) -> None:
        if isinstance(entry, PrimitiveOccurrence):
            entry = LoggedEvent.from_occurrence(entry)
        with self._lock:
            self._entries.append(entry)
            if self._path is not None:
                with open(self._path, "a") as f:
                    f.write(entry.to_json() + "\n")

    def __iter__(self) -> Iterator[LoggedEvent]:
        with self._lock:
            return iter(list(self._entries))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            if self._path is not None and self._path.exists():
                self._path.unlink()

    def compact(self, keep_last: int) -> int:
        """Drop all but the newest ``keep_last`` entries (log rotation).

        Returns how many entries were discarded. File-backed logs are
        rewritten atomically-enough for a single-writer log (write then
        replace).
        """
        if keep_last < 0:
            raise EventError(f"keep_last must be >= 0, got {keep_last}")
        with self._lock:
            dropped = max(0, len(self._entries) - keep_last)
            if dropped == 0:
                return 0
            self._entries = self._entries[dropped:]
            if self._path is not None:
                temp = self._path.with_suffix(".rewrite")
                with open(temp, "w") as f:
                    for entry in self._entries:
                        f.write(entry.to_json() + "\n")
                temp.replace(self._path)
            return dropped

    def filter(self, event_name: Optional[str] = None,
               txn_id: Optional[int] = None) -> list[LoggedEvent]:
        with self._lock:
            entries = list(self._entries)
        if event_name is not None:
            entries = [e for e in entries if e.event_name == event_name]
        if txn_id is not None:
            entries = [e for e in entries if e.txn_id == txn_id]
        return entries


def attach_logger(detector: LocalEventDetector,
                  log: Optional[EventLog] = None) -> EventLog:
    """Record every primitive occurrence of ``detector`` into ``log``."""
    log = log if log is not None else EventLog()
    detector.occurrence_listeners.append(log.append)
    return log
