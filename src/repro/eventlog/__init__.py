"""Event logging and batch (after-the-fact) composite event detection.

The detector "needs to support detection of events as they happen
(online) when it is coupled to an application or over a stored
event-log (in batch mode)" (paper §2.1). This package provides the
stored event log and the replay machinery:

* :mod:`repro.eventlog.log` — persistent/in-memory logs of primitive
  occurrences.
* :mod:`repro.eventlog.replay` — replaying a log through a detector,
  either executing rules or merely collecting the triggers.
"""

from repro.eventlog.log import EventLog, LoggedEvent, attach_logger
from repro.eventlog.replay import ReplayReport, replay

__all__ = ["EventLog", "LoggedEvent", "attach_logger", "ReplayReport", "replay"]
