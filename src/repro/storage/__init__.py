"""Storage substrate: a pure-Python stand-in for the Exodus storage manager.

The original Sentinel ran on top of the Exodus storage manager, which
provided page storage, buffering, write-ahead logging, recovery, and
concurrency control for *top-level* transactions (nested transactions
were layered above it by Sentinel itself). This package reproduces that
contract:

* :mod:`repro.storage.page` — slotted pages.
* :mod:`repro.storage.disk` — page file on disk.
* :mod:`repro.storage.buffer` — buffer pool with LRU replacement and
  WAL-before-data enforcement.
* :mod:`repro.storage.wal` — write-ahead log with checksummed records.
* :mod:`repro.storage.recovery` — ARIES-style analysis/redo/undo.
* :mod:`repro.storage.locks` — strict two-phase locking with waits-for
  deadlock detection.
* :mod:`repro.storage.heap` — heap files of variable-length records.
* :mod:`repro.storage.serializer` — self-describing record encoding.
* :mod:`repro.storage.manager` — the :class:`StorageManager` facade
  ("Exodus") that the OODB layer builds on.
"""

from repro.storage.page import PAGE_SIZE, SlottedPage
from repro.storage.disk import DiskManager
from repro.storage.buffer import BufferPool
from repro.storage.wal import LogRecord, LogRecordType, WriteAheadLog
from repro.storage.locks import LockManager, LockMode
from repro.storage.heap import HeapFile, RecordId
from repro.storage.serializer import dumps, loads
from repro.storage.manager import StorageManager, StorageTransaction

__all__ = [
    "PAGE_SIZE",
    "SlottedPage",
    "DiskManager",
    "BufferPool",
    "LogRecord",
    "LogRecordType",
    "WriteAheadLog",
    "LockManager",
    "LockMode",
    "HeapFile",
    "RecordId",
    "dumps",
    "loads",
    "StorageManager",
    "StorageTransaction",
]
