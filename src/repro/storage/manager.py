"""The storage manager facade — our stand-in for Exodus.

One :class:`StorageManager` owns a data file, a write-ahead log, a
buffer pool, a lock manager, and a heap file, and exposes exactly the
contract the Open OODB layer needs:

* top-level transactions with strict 2PL at record granularity,
* durable commits (WAL flush), synchronous aborts (logged undo),
* crash recovery on open,
* typed records (any :mod:`repro.storage.serializer` value).
"""

from __future__ import annotations

import enum
import itertools
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Optional

from repro.errors import InvalidTransactionState
from repro.faults import registry as faults
from repro.storage import serializer
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.heap import HeapFile, RecordId
from repro.storage.locks import LockManager, LockMode
from repro.storage.recovery import RecoveryReport, recover
from repro.storage.wal import LogRecord, LogRecordType, WriteAheadLog
from repro.telemetry.hub import TelemetryHub

faults.declare(
    "txn.begin.pre", "txn.commit.pre", "txn.commit.wal", "txn.commit.post",
    "txn.abort.pre", "txn.undo.record",
    "checkpoint.pre", "checkpoint.append.pre", "checkpoint.post",
    group="storage",
)


class TxnStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class StorageTransaction:
    """Handle for one top-level transaction."""

    txn_id: int
    status: TxnStatus = TxnStatus.ACTIVE
    last_lsn: int = -1
    _touched: set[RecordId] = field(default_factory=set)
    #: this transaction's data records, for O(own-work) abort — crash
    #: recovery uses the durable log instead.
    _records: list[LogRecord] = field(default_factory=list)

    def require_active(self) -> None:
        if self.status is not TxnStatus.ACTIVE:
            raise InvalidTransactionState(
                f"txn {self.txn_id} is {self.status.value}"
            )


class StorageManager:
    """Exodus-equivalent: durable records under top-level transactions."""

    DATA_FILE = "data.db"
    LOG_FILE = "wal.log"

    def __init__(
        self,
        directory: str | os.PathLike,
        pool_size: int = 128,
        lock_timeout: float = 10.0,
        telemetry: Optional[TelemetryHub] = None,
        durability: str = "fsync",
    ):
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._disk = DiskManager(self._dir / self.DATA_FILE)
        self._wal = WriteAheadLog(self._dir / self.LOG_FILE, telemetry=telemetry,
                                  durability=durability)
        self._pool = BufferPool(self._disk, capacity=pool_size, wal=self._wal,
                                telemetry=telemetry)
        self._locks = LockManager(timeout=lock_timeout)
        self._heap = HeapFile(self._pool, pages=list(range(self._disk.num_pages)))
        self._txn_ids = itertools.count(1)
        self._txns: dict[int, StorageTransaction] = {}
        self._mutex = threading.RLock()
        self.last_recovery: RecoveryReport = recover(self._wal, self._heap)
        self._closed = False

    # -- properties -------------------------------------------------------------

    @property
    def directory(self) -> Path:
        return self._dir

    @property
    def buffer_pool(self) -> BufferPool:
        return self._pool

    @property
    def lock_manager(self) -> LockManager:
        return self._locks

    @property
    def wal(self) -> WriteAheadLog:
        return self._wal

    # -- transactions -------------------------------------------------------------

    def begin(self) -> StorageTransaction:
        if faults.ENABLED:
            faults.fault_point("txn.begin.pre")
        with self._mutex:
            txn = StorageTransaction(txn_id=next(self._txn_ids))
            self._txns[txn.txn_id] = txn
        txn.last_lsn = self._wal.append(
            LogRecord(lsn=-1, txn_id=txn.txn_id, type=LogRecordType.BEGIN)
        )
        return txn

    def commit(self, txn: StorageTransaction) -> None:
        txn.require_active()
        if faults.ENABLED:
            faults.fault_point("txn.commit.pre")
        self._wal.append(
            LogRecord(
                lsn=-1,
                txn_id=txn.txn_id,
                type=LogRecordType.COMMIT,
                prev_lsn=txn.last_lsn,
            )
        )
        if faults.ENABLED:
            # A crash here loses the COMMIT record: the transaction
            # must come back as a loser.
            faults.fault_point("txn.commit.wal")
        self._wal.flush()  # durability point
        if faults.ENABLED:
            # A crash here is after the durability point: the
            # transaction must come back committed.
            faults.fault_point("txn.commit.post")
        txn.status = TxnStatus.COMMITTED
        self._locks.release_all(txn.txn_id)
        with self._mutex:
            self._txns.pop(txn.txn_id, None)

    def abort(self, txn: StorageTransaction) -> None:
        txn.require_active()
        if faults.ENABLED:
            faults.fault_point("txn.abort.pre")
        self._undo(txn)
        self._wal.append(
            LogRecord(
                lsn=-1,
                txn_id=txn.txn_id,
                type=LogRecordType.ABORT,
                prev_lsn=txn.last_lsn,
            )
        )
        self._wal.flush()
        txn.status = TxnStatus.ABORTED
        self._locks.release_all(txn.txn_id)
        with self._mutex:
            self._txns.pop(txn.txn_id, None)

    def _undo(self, txn: StorageTransaction) -> None:
        """Walk the txn's log chain backwards, reversing each update."""
        for record in reversed(txn._records):
            if faults.ENABLED:
                faults.fault_point("txn.undo.record")
            if record.type is LogRecordType.INSERT:
                rid = RecordId(record.page_id, record.slot)
                if self._heap.exists(rid):
                    self._heap.delete(rid)
            elif record.type is LogRecordType.UPDATE:
                self._heap.update(RecordId(record.page_id, record.slot), record.undo)
            elif record.type is LogRecordType.DELETE:
                self._heap.insert_at(
                    RecordId(record.page_id, record.slot), record.undo
                )
            if record.type in (
                LogRecordType.INSERT,
                LogRecordType.UPDATE,
                LogRecordType.DELETE,
            ):
                clr_lsn = self._wal.append(
                    LogRecord(
                        lsn=-1,
                        txn_id=txn.txn_id,
                        type=LogRecordType.CLR,
                        prev_lsn=txn.last_lsn,
                        page_id=record.page_id,
                        slot=record.slot,
                        redo=record.undo,
                        undo_next_lsn=record.prev_lsn,
                        extra={"undo_of": record.type.value},
                    )
                )
                txn.last_lsn = clr_lsn
                self._heap.set_page_lsn(record.page_id, clr_lsn)

    # -- record operations -----------------------------------------------------------

    def insert(self, txn: StorageTransaction, value: Any) -> RecordId:
        txn.require_active()
        payload = serializer.dumps(value)
        rid = self._heap.insert(payload)
        self._locks.acquire(txn.txn_id, rid, LockMode.EXCLUSIVE)
        record = LogRecord(
            lsn=-1,
            txn_id=txn.txn_id,
            type=LogRecordType.INSERT,
            prev_lsn=txn.last_lsn,
            page_id=rid.page_id,
            slot=rid.slot,
            redo=payload,
        )
        txn.last_lsn = self._wal.append(record)
        txn._records.append(record)
        self._heap.set_page_lsn(rid.page_id, txn.last_lsn)
        txn._touched.add(rid)
        return rid

    def read(self, txn: StorageTransaction, rid: RecordId) -> Any:
        txn.require_active()
        self._locks.acquire(txn.txn_id, rid, LockMode.SHARED)
        return serializer.loads(self._heap.read(rid))

    def update(self, txn: StorageTransaction, rid: RecordId, value: Any) -> None:
        txn.require_active()
        self._locks.acquire(txn.txn_id, rid, LockMode.EXCLUSIVE)
        before = self._heap.read(rid)
        payload = serializer.dumps(value)
        self._heap.update(rid, payload)
        record = LogRecord(
            lsn=-1,
            txn_id=txn.txn_id,
            type=LogRecordType.UPDATE,
            prev_lsn=txn.last_lsn,
            page_id=rid.page_id,
            slot=rid.slot,
            undo=before,
            redo=payload,
        )
        txn.last_lsn = self._wal.append(record)
        txn._records.append(record)
        self._heap.set_page_lsn(rid.page_id, txn.last_lsn)
        txn._touched.add(rid)

    def delete(self, txn: StorageTransaction, rid: RecordId) -> None:
        txn.require_active()
        self._locks.acquire(txn.txn_id, rid, LockMode.EXCLUSIVE)
        before = self._heap.read(rid)
        self._heap.delete(rid)
        record = LogRecord(
            lsn=-1,
            txn_id=txn.txn_id,
            type=LogRecordType.DELETE,
            prev_lsn=txn.last_lsn,
            page_id=rid.page_id,
            slot=rid.slot,
            undo=before,
        )
        txn.last_lsn = self._wal.append(record)
        txn._records.append(record)
        self._heap.set_page_lsn(rid.page_id, txn.last_lsn)
        txn._touched.add(rid)

    def scan(self, txn: StorageTransaction) -> Iterator[tuple[RecordId, Any]]:
        txn.require_active()
        for rid, payload in self._heap.scan():
            self._locks.acquire(txn.txn_id, rid, LockMode.SHARED)
            yield rid, serializer.loads(payload)

    # -- maintenance -----------------------------------------------------------------

    def checkpoint(self) -> None:
        """Flush everything; bounds recovery work after a clean period.

        The CHECKPOINT record carries an explicit redo cut
        (``extra["redo_below"]``): the highest LSN whose page effects
        are guaranteed durable by the page flush below. The cut is
        captured *before* ``flush_all`` — a record appended while the
        pages are being written may race the flush of its page, so it
        must stay eligible for redo even though its LSN precedes the
        CHECKPOINT record's. Recovery only skips redo at or below the
        cut, never merely below the CHECKPOINT record itself.
        """
        if faults.ENABLED:
            faults.fault_point("checkpoint.pre")
        self._wal.flush()
        # Every record at or below this LSN mutated its page before the
        # append (operation order: heap change, then log append), so the
        # flush_all below lands those effects on disk.
        redo_cut = self._wal.next_lsn - 1
        self._pool.flush_all()  # writes dirty pages and fsyncs the data file
        if faults.ENABLED:
            # A crash here leaves flushed pages but no CHECKPOINT
            # record: recovery must simply not skip any redo.
            faults.fault_point("checkpoint.append.pre")
        self._wal.append(
            LogRecord(
                lsn=-1, txn_id=0, type=LogRecordType.CHECKPOINT,
                extra={"redo_below": redo_cut},
            )
        )
        self._wal.flush()
        if faults.ENABLED:
            faults.fault_point("checkpoint.post")

    def close(self) -> None:
        if self._closed:
            return
        with self._mutex:
            active = [t for t in self._txns.values() if t.status is TxnStatus.ACTIVE]
        for txn in active:
            self.abort(txn)
        self._pool.flush_all()
        self._wal.close()
        self._disk.close()
        self._closed = True

    def simulate_crash(self) -> None:
        """Drop volatile state without flushing — for recovery tests.

        Buffered WAL records and dirty pages are lost, exactly as if the
        process had been killed. Reopening a :class:`StorageManager` on
        the same directory then runs recovery.
        """
        self._wal._buffer.clear()  # noqa: SLF001 - deliberate volatility
        self._pool.drop_all()
        self._wal.close()
        self._disk.close()
        self._closed = True

    def __enter__(self) -> "StorageManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
