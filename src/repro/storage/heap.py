"""Heap files: unordered collections of variable-length records.

A heap file is a set of slotted pages reached through the buffer pool.
Records are addressed by a stable :class:`RecordId` (page, slot). The
file keeps a simple in-memory free-space hint (pages with room) that is
rebuilt lazily; correctness never depends on it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import PageError, RecordNotFound
from repro.faults import registry as faults
from repro.storage.buffer import BufferPool

faults.declare(
    "heap.insert.pre", "heap.update.pre", "heap.delete.pre",
    group="storage",
)


@dataclass(frozen=True, order=True)
class RecordId:
    """Stable address of a record: page id plus slot number."""

    page_id: int
    slot: int

    def __str__(self) -> str:
        return f"rid({self.page_id},{self.slot})"


class HeapFile:
    """A bag of records stored across slotted pages.

    The heap registers every page it allocates in ``_pages`` so scans
    know which pages belong to this file even when several heaps share
    one buffer pool/disk (the storage manager gives each heap its own
    page-id universe by construction, but the registry keeps the scan
    honest regardless).
    """

    def __init__(self, pool: BufferPool, pages: Optional[list[int]] = None):
        self._pool = pool
        self._pages: list[int] = list(pages) if pages else []
        self._lock = threading.RLock()

    @property
    def pages(self) -> list[int]:
        with self._lock:
            return list(self._pages)

    # -- mutation ----------------------------------------------------------------

    def insert(self, record: bytes) -> RecordId:
        """Store ``record``; returns its new :class:`RecordId`."""
        if faults.ENABLED:
            faults.fault_point("heap.insert.pre")
        with self._lock:
            # Try the most recently used pages first: inserts cluster there.
            for page_id in reversed(self._pages):
                with self._pool.page(page_id, dirty=True) as page:
                    if page.can_insert(len(record)):
                        slot = page.insert(record)
                        return RecordId(page_id, slot)
            page_id, page = self._pool.new_page()
            try:
                slot = page.insert(record)
            finally:
                self._pool.unpin_page(page_id, dirty=True)
            self._pages.append(page_id)
            return RecordId(page_id, slot)

    def insert_at(self, rid: RecordId, record: bytes) -> None:
        """Re-insert a record at a known rid (used by redo recovery).

        Pages are allocated as needed so that replaying an insert after
        a crash lands the record at its original address.
        """
        with self._lock:
            while rid.page_id not in self._pages:
                page_id, page = self._pool.new_page()
                self._pool.unpin_page(page_id, dirty=True)
                self._pages.append(page_id)
                if page_id > rid.page_id and rid.page_id not in self._pages:
                    raise PageError(
                        f"cannot materialize page {rid.page_id} for redo"
                    )
            with self._pool.page(rid.page_id, dirty=True) as page:
                if page.is_slot_live(rid.slot):
                    page.update(rid.slot, record)
                    return
                # Replay must hit the exact slot: picking the lowest
                # free one (plain insert) diverges the moment a CLR
                # re-creates a deleted record while lower slots are
                # free — found by the crash sweep, not hypothetical.
                page.insert_into(rid.slot, record)

    def read(self, rid: RecordId) -> bytes:
        with self._lock:
            self._check(rid)
            with self._pool.page(rid.page_id) as page:
                try:
                    return page.read(rid.slot)
                except PageError as exc:
                    raise RecordNotFound(str(rid)) from exc

    def update(self, rid: RecordId, record: bytes) -> None:
        if faults.ENABLED:
            faults.fault_point("heap.update.pre")
        with self._lock:
            self._check(rid)
            with self._pool.page(rid.page_id, dirty=True) as page:
                try:
                    page.update(rid.slot, record)
                except PageError as exc:
                    if not page.is_slot_live(rid.slot):
                        raise RecordNotFound(str(rid)) from exc
                    raise

    def delete(self, rid: RecordId) -> None:
        if faults.ENABLED:
            faults.fault_point("heap.delete.pre")
        with self._lock:
            self._check(rid)
            with self._pool.page(rid.page_id, dirty=True) as page:
                try:
                    page.delete(rid.slot)
                except PageError as exc:
                    raise RecordNotFound(str(rid)) from exc

    def exists(self, rid: RecordId) -> bool:
        with self._lock:
            if rid.page_id not in self._pages:
                return False
            with self._pool.page(rid.page_id) as page:
                return page.is_slot_live(rid.slot)

    def set_page_lsn(self, page_id: int, lsn: int) -> None:
        """Stamp the page with the LSN of the log record that changed it."""
        with self._pool.page(page_id, dirty=True) as page:
            page.lsn = lsn

    def page_lsn(self, page_id: int) -> int:
        with self._pool.page(page_id) as page:
            return page.lsn

    # -- scan ----------------------------------------------------------------------

    def scan(self) -> Iterator[tuple[RecordId, bytes]]:
        """Yield every live record, in page/slot order."""
        for page_id in self.pages:
            with self._pool.page(page_id) as page:
                entries = list(page.records())
            for slot, record in entries:
                yield RecordId(page_id, slot), record

    def __len__(self) -> int:
        return sum(1 for __ in self.scan())

    def _check(self, rid: RecordId) -> None:
        if rid.page_id not in self._pages:
            raise RecordNotFound(str(rid))
