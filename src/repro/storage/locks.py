"""Lock manager: strict two-phase locking for top-level transactions.

This is the concurrency-control component of the Exodus substitute. It
grants shared/exclusive locks on opaque hashable resources (the storage
manager locks record ids; the OODB layer locks OIDs and names), detects
deadlocks with a waits-for graph, and aborts a victim by raising
:class:`~repro.errors.DeadlockError` in its requesting thread.

The *nested* transaction lock manager used for rule execution lives in
:mod:`repro.transactions.locks`; this one deliberately knows nothing
about parents and children, matching the paper's layering ("this is in
addition to the concurrency control ... provided by the Exodus for
top-level transactions").
"""

from __future__ import annotations

import enum
import threading
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Hashable, Optional

from repro.errors import DeadlockError, LockTimeout
from repro.faults import registry as faults

faults.declare("locks.acquire.pre", group="storage")


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


def _compatible(held: LockMode, requested: LockMode) -> bool:
    return held is LockMode.SHARED and requested is LockMode.SHARED


@dataclass
class _ResourceState:
    holders: dict[int, LockMode] = field(default_factory=dict)
    waiters: list[tuple[int, LockMode]] = field(default_factory=list)


class LockManager:
    """Grants S/X locks to transaction ids with deadlock detection."""

    def __init__(self, timeout: float = 10.0):
        self._timeout = timeout
        self._mutex = threading.Lock()
        self._condition = threading.Condition(self._mutex)
        self._resources: dict[Hashable, _ResourceState] = defaultdict(_ResourceState)
        self._held_by_txn: dict[int, set[Hashable]] = defaultdict(set)
        # waits-for edges: waiter txn -> set of holder txns
        self._waits_for: dict[int, set[int]] = defaultdict(set)
        self._victims: set[int] = set()

    # -- acquisition ----------------------------------------------------------

    def acquire(
        self, txn_id: int, resource: Hashable, mode: LockMode,
        timeout: Optional[float] = None,
    ) -> None:
        """Block until ``txn_id`` holds ``resource`` in ``mode``.

        Raises :class:`DeadlockError` if this request closes a cycle in
        the waits-for graph and the requester is picked as the victim,
        or :class:`LockTimeout` after ``timeout`` seconds. The wait
        deadline is monotonic-clock based, and the waits-for graph is
        re-checked after every wake so an expiring timeout can never
        mask a detectable deadlock.
        """
        if faults.ENABLED:
            faults.fault_point("locks.acquire.pre")
        budget = self._timeout if timeout is None else timeout
        with self._condition:
            state = self._resources[resource]
            if self._grantable(state, txn_id, mode):
                self._grant(state, txn_id, resource, mode)
                return
            entry = (txn_id, mode)
            state.waiters.append(entry)
            deadline = _now() + budget
            try:
                while True:
                    if txn_id in self._victims:
                        self._victims.discard(txn_id)
                        raise DeadlockError(
                            f"txn {txn_id} chosen as deadlock victim on "
                            f"{resource!r}"
                        )
                    if self._grantable(state, txn_id, mode, waiting_as=entry):
                        self._grant(state, txn_id, resource, mode)
                        return
                    # Refresh our waits-for edges and re-run cycle
                    # detection on every pass — including the one where
                    # the deadline expires — so a deadlock formed while
                    # we slept is reported as such, not as a timeout.
                    self._waits_for[txn_id] = self._blockers(state, txn_id, mode)
                    victim = self._find_deadlock_victim(txn_id)
                    if victim is not None:
                        if victim == txn_id:
                            raise DeadlockError(
                                f"txn {txn_id} chosen as deadlock victim on "
                                f"{resource!r}"
                            )
                        self._victims.add(victim)
                        self._condition.notify_all()
                    remaining = deadline - _now()
                    if remaining <= 0:
                        raise LockTimeout(
                            f"txn {txn_id} timed out waiting for {resource!r}"
                        )
                    self._condition.wait(min(remaining, 0.05))
            finally:
                if entry in state.waiters:
                    state.waiters.remove(entry)
                self._waits_for.pop(txn_id, None)

    def _grantable(
        self,
        state: _ResourceState,
        txn_id: int,
        mode: LockMode,
        waiting_as: Optional[tuple[int, LockMode]] = None,
    ) -> bool:
        held = state.holders.get(txn_id)
        if held is not None:
            if held is LockMode.EXCLUSIVE or mode is LockMode.SHARED:
                return True  # already strong enough
            # Upgrade S -> X: only possible if sole holder.
            return len(state.holders) == 1
        others = [m for t, m in state.holders.items() if t != txn_id]
        if any(not _compatible(m, mode) for m in others):
            return False
        if mode is LockMode.EXCLUSIVE and others:
            return False
        # FIFO fairness: do not jump ahead of earlier incompatible waiters.
        for waiter in state.waiters:
            if waiting_as is not None and waiter == waiting_as:
                break
            w_txn, w_mode = waiter
            if w_txn == txn_id:
                continue
            if not _compatible(mode, w_mode) or not _compatible(w_mode, mode):
                return False
        return True

    def _grant(
        self, state: _ResourceState, txn_id: int, resource: Hashable,
        mode: LockMode,
    ) -> None:
        held = state.holders.get(txn_id)
        if held is LockMode.EXCLUSIVE:
            pass  # X subsumes everything
        elif held is LockMode.SHARED and mode is LockMode.EXCLUSIVE:
            state.holders[txn_id] = LockMode.EXCLUSIVE
        elif held is None:
            state.holders[txn_id] = mode
        self._held_by_txn[txn_id].add(resource)

    def _blockers(
        self, state: _ResourceState, txn_id: int, mode: LockMode
    ) -> set[int]:
        blockers = set()
        for holder, held in state.holders.items():
            if holder == txn_id:
                continue
            if mode is LockMode.EXCLUSIVE or held is LockMode.EXCLUSIVE:
                blockers.add(holder)
        return blockers

    # -- deadlock detection -----------------------------------------------------

    def _find_deadlock_victim(self, start: int) -> Optional[int]:
        """DFS on the waits-for graph; return a victim txn if a cycle exists.

        The victim is the youngest (highest-id) transaction on the cycle,
        a common and cheap policy.
        """
        path: list[int] = []
        on_path: set[int] = set()

        def dfs(node: int) -> Optional[list[int]]:
            path.append(node)
            on_path.add(node)
            for nxt in self._waits_for.get(node, ()):
                if nxt in on_path:
                    return path[path.index(nxt):]
                cycle = dfs(nxt)
                if cycle is not None:
                    return cycle
            path.pop()
            on_path.discard(node)
            return None

        cycle = dfs(start)
        if cycle is None:
            return None
        return max(cycle)

    # -- release ----------------------------------------------------------------

    def release_all(self, txn_id: int) -> None:
        """Strict 2PL: drop every lock at commit/abort."""
        with self._condition:
            for resource in self._held_by_txn.pop(txn_id, set()):
                state = self._resources.get(resource)
                if state is None:
                    continue
                state.holders.pop(txn_id, None)
                if not state.holders and not state.waiters:
                    del self._resources[resource]
            self._waits_for.pop(txn_id, None)
            self._condition.notify_all()

    # -- introspection ------------------------------------------------------------

    def holds(self, txn_id: int, resource: Hashable) -> Optional[LockMode]:
        with self._mutex:
            state = self._resources.get(resource)
            if state is None:
                return None
            return state.holders.get(txn_id)

    def locks_held(self, txn_id: int) -> set[Hashable]:
        with self._mutex:
            return set(self._held_by_txn.get(txn_id, set()))


def _now() -> float:
    import time

    return time.monotonic()
