"""Crash recovery: ARIES-style analysis / redo / undo.

Invoked by :class:`~repro.storage.manager.StorageManager` on open. The
protocol follows ARIES in miniature:

1. **Analysis** — scan the log; transactions with a ``BEGIN`` but no
   terminal ``COMMIT``/``ABORT`` record are *losers*.
2. **Redo** — repeat history: every data record (including CLRs) whose
   LSN is newer than its page's LSN is reapplied, bringing the database
   to its state at the crash.
3. **Undo** — roll back the losers, newest record first, writing
   compensation log records (CLRs) so that a crash *during* recovery
   restarts cleanly, then log ``ABORT`` for each loser.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RecoveryError
from repro.faults import registry as faults
from repro.storage.heap import HeapFile, RecordId
from repro.storage.wal import LogRecord, LogRecordType, WriteAheadLog

faults.declare(
    "recovery.analysis.post", "recovery.redo.record", "recovery.undo.clr",
    "recovery.undo.abort", "recovery.flush.pre",
    group="storage",
)


@dataclass
class RecoveryReport:
    """What recovery did, for tests and operator visibility."""

    records_scanned: int = 0
    redone: int = 0
    undone: int = 0
    redo_skipped_by_checkpoint: int = 0
    checkpoint_lsn: int = -1
    #: highest LSN whose page effects the checkpoint guaranteed on disk
    redo_cut: int = -1
    losers: list[int] = field(default_factory=list)
    committed: list[int] = field(default_factory=list)


def recover(wal: WriteAheadLog, heap: HeapFile) -> RecoveryReport:
    """Run full analysis/redo/undo over ``wal`` against ``heap``."""
    report = RecoveryReport()
    records: list[LogRecord] = list(wal.records())
    report.records_scanned = len(records)
    if not records:
        return report
    by_lsn = {r.lsn: r for r in records}

    # ---- analysis ----------------------------------------------------------
    active: dict[int, int] = {}  # txn -> last lsn
    finished: set[int] = set()
    committed: set[int] = set()
    checkpoint_lsn = -1
    redo_cut = -1
    for record in records:
        if record.type is LogRecordType.BEGIN:
            active[record.txn_id] = record.lsn
        elif record.type in (LogRecordType.COMMIT, LogRecordType.ABORT):
            active.pop(record.txn_id, None)
            finished.add(record.txn_id)
            if record.type is LogRecordType.COMMIT:
                committed.add(record.txn_id)
        elif record.type is LogRecordType.CHECKPOINT:
            # The checkpoint's page flush only guarantees durability up
            # to the redo cut it recorded — a record appended while the
            # pages were being flushed has an LSN below the CHECKPOINT
            # record's but may have missed the flush. Logs from before
            # the cut existed carry no guarantee at all: redo everything.
            checkpoint_lsn = record.lsn
            redo_cut = record.extra.get("redo_below", -1)
        elif record.txn_id in active:
            active[record.txn_id] = record.lsn
    report.losers = sorted(active)
    report.committed = sorted(committed)
    report.checkpoint_lsn = checkpoint_lsn
    report.redo_cut = redo_cut
    if faults.ENABLED:
        faults.fault_point("recovery.analysis.post")

    # ---- redo: repeat history ------------------------------------------------
    data_types = (
        LogRecordType.INSERT,
        LogRecordType.UPDATE,
        LogRecordType.DELETE,
        LogRecordType.CLR,
    )
    for record in records:
        if record.type not in data_types or record.page_id < 0:
            continue
        if record.lsn <= redo_cut:
            report.redo_skipped_by_checkpoint += 1
            continue
        rid = RecordId(record.page_id, record.slot)
        if _page_is_current(heap, record):
            continue
        if faults.ENABLED:
            faults.fault_point("recovery.redo.record")
        _apply_redo(heap, record, rid)
        heap.set_page_lsn(record.page_id, record.lsn)
        report.redone += 1

    # ---- undo: roll back losers ------------------------------------------------
    for txn_id in report.losers:
        lsn = active[txn_id]
        # The loser's ABORT record must chain to the last record of its
        # undo history (the final CLR we write, or — if this pass wrote
        # none — its last surviving record), so a crash before the
        # flush lands never leaves an ABORT pointing outside the chain.
        last_lsn = active[txn_id]
        while lsn >= 0:
            record = by_lsn.get(lsn)
            if record is None:
                raise RecoveryError(f"undo chain of txn {txn_id} broken at lsn {lsn}")
            if record.type is LogRecordType.CLR:
                lsn = record.undo_next_lsn
                continue
            if record.type is LogRecordType.BEGIN:
                break
            if record.type in data_types:
                rid = RecordId(record.page_id, record.slot)
                clr = LogRecord(
                    lsn=-1,
                    txn_id=txn_id,
                    type=LogRecordType.CLR,
                    prev_lsn=record.lsn,
                    page_id=record.page_id,
                    slot=record.slot,
                    redo=record.undo,
                    undo_next_lsn=record.prev_lsn,
                    extra={"undo_of": record.type.value},
                )
                if faults.ENABLED:
                    faults.fault_point("recovery.undo.clr")
                clr_lsn = wal.append(clr)
                last_lsn = clr_lsn
                _apply_undo(heap, record, rid)
                heap.set_page_lsn(record.page_id, clr_lsn)
                report.undone += 1
            lsn = record.prev_lsn
        if faults.ENABLED:
            faults.fault_point("recovery.undo.abort")
        wal.append(
            LogRecord(
                lsn=-1, txn_id=txn_id, type=LogRecordType.ABORT,
                prev_lsn=last_lsn,
            )
        )
    if faults.ENABLED:
        faults.fault_point("recovery.flush.pre")
    wal.flush()
    return report


def _page_is_current(heap: HeapFile, record: LogRecord) -> bool:
    """True if the page already reflects this log record."""
    if record.page_id not in heap.pages:
        return False
    return heap.page_lsn(record.page_id) >= record.lsn


def _apply_redo(heap: HeapFile, record: LogRecord, rid: RecordId) -> None:
    if record.type is LogRecordType.INSERT:
        heap.insert_at(rid, record.redo)
    elif record.type is LogRecordType.UPDATE:
        heap.insert_at(rid, record.redo)
    elif record.type is LogRecordType.DELETE:
        if heap.exists(rid):
            heap.delete(rid)
    elif record.type is LogRecordType.CLR:
        undo_of = record.extra.get("undo_of")
        if undo_of == LogRecordType.INSERT.value:
            if heap.exists(rid):
                heap.delete(rid)
        else:  # undo of update/delete restores the before image
            heap.insert_at(rid, record.redo)


def _apply_undo(heap: HeapFile, record: LogRecord, rid: RecordId) -> None:
    if record.type is LogRecordType.INSERT:
        if heap.exists(rid):
            heap.delete(rid)
    elif record.type is LogRecordType.UPDATE:
        heap.update(rid, record.undo)
    elif record.type is LogRecordType.DELETE:
        heap.insert_at(rid, record.undo)
