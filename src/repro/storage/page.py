"""Slotted pages: the unit of storage and buffering.

Layout (all integers little-endian, offsets in bytes):

::

    0..4    page LSN (uint32)        -- last log record that touched the page
    4..6    slot count (uint16)
    6..8    free-space pointer (uint16, offset of the *end* of free space)
    8..     slot directory, 4 bytes per slot: offset (uint16), length (uint16)
    ...     free space
    ...     record data, growing downward from the end of the page

A deleted slot keeps its directory entry with ``offset == TOMBSTONE`` so
record ids remain stable; the slot can be reused by a later insert.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional

from repro.errors import PageError

PAGE_SIZE = 4096

_HEADER = struct.Struct("<IHH")  # lsn, slot_count, free_space_end
_SLOT = struct.Struct("<HH")  # offset, length
_HEADER_SIZE = _HEADER.size
_SLOT_SIZE = _SLOT.size
_TOMBSTONE = 0xFFFF


class SlottedPage:
    """A fixed-size page holding variable-length records in slots.

    The page operates directly on a ``bytearray`` (typically a buffer
    pool frame) so mutations are visible to the pool without copying.
    """

    def __init__(self, data: Optional[bytearray] = None):
        if data is None:
            data = bytearray(PAGE_SIZE)
            self._data = data
            self._write_header(0, 0, PAGE_SIZE)
        else:
            if len(data) != PAGE_SIZE:
                raise PageError(f"page must be {PAGE_SIZE} bytes, got {len(data)}")
            self._data = data
            # A fresh all-zero buffer would decode as free_space_end == 0;
            # normalize it so the page is immediately usable.
            if self.free_space_end == 0 and self.slot_count == 0:
                self._write_header(self.lsn, 0, PAGE_SIZE)

    # -- header -------------------------------------------------------------

    def _write_header(self, lsn: int, slot_count: int, free_end: int) -> None:
        _HEADER.pack_into(self._data, 0, lsn, slot_count, free_end)

    @property
    def data(self) -> bytearray:
        return self._data

    @property
    def lsn(self) -> int:
        return _HEADER.unpack_from(self._data, 0)[0]

    @lsn.setter
    def lsn(self, value: int) -> None:
        _HEADER.pack_into(
            self._data, 0, value & 0xFFFFFFFF, self.slot_count, self.free_space_end
        )

    @property
    def slot_count(self) -> int:
        return _HEADER.unpack_from(self._data, 0)[1]

    @property
    def free_space_end(self) -> int:
        return _HEADER.unpack_from(self._data, 0)[2]

    @property
    def free_space(self) -> int:
        """Usable bytes, assuming the next insert needs a new slot."""
        used_by_slots = _HEADER_SIZE + self.slot_count * _SLOT_SIZE
        return max(0, self.free_space_end - used_by_slots)

    # -- slot directory -----------------------------------------------------

    def _slot(self, index: int) -> tuple[int, int]:
        if not 0 <= index < self.slot_count:
            raise PageError(f"slot {index} out of range (count={self.slot_count})")
        return _SLOT.unpack_from(self._data, _HEADER_SIZE + index * _SLOT_SIZE)

    def _set_slot(self, index: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self._data, _HEADER_SIZE + index * _SLOT_SIZE, offset, length)

    def _find_free_slot(self) -> Optional[int]:
        for i in range(self.slot_count):
            offset, __ = self._slot(i)
            if offset == _TOMBSTONE:
                return i
        return None

    # -- record operations ----------------------------------------------------

    def can_insert(self, length: int) -> bool:
        """True if a record of ``length`` bytes fits on this page."""
        need_slot = self._find_free_slot() is None
        needed = length + (_SLOT_SIZE if need_slot else 0)
        return self.free_space >= needed and length < _TOMBSTONE

    def insert(self, record: bytes) -> int:
        """Store ``record`` and return its slot number."""
        if not record:
            raise PageError("cannot insert an empty record")
        if not self.can_insert(len(record)):
            raise PageError(
                f"record of {len(record)} bytes does not fit "
                f"(free={self.free_space})"
            )
        new_end = self.free_space_end - len(record)
        self._data[new_end : new_end + len(record)] = record
        slot = self._find_free_slot()
        if slot is None:
            slot = self.slot_count
            self._write_header(self.lsn, slot + 1, new_end)
        else:
            self._write_header(self.lsn, self.slot_count, new_end)
        self._set_slot(slot, new_end, len(record))
        return slot

    def insert_into(self, slot: int, record: bytes) -> None:
        """Place ``record`` in a *specific* slot (recovery replay).

        Unlike :meth:`insert`, which reuses the lowest tombstoned slot,
        replay must land a record exactly where the log says it lived —
        undoing a DELETE re-creates the record at its original slot
        even when lower-numbered slots happen to be free. Grows the
        slot directory (tombstoning any gap) when ``slot`` does not
        exist yet.
        """
        if not record:
            raise PageError("cannot insert an empty record")
        if slot < 0:
            raise PageError(f"slot {slot} out of range")
        if slot < self.slot_count:
            offset, __ = self._slot(slot)
            if offset != _TOMBSTONE:
                raise PageError(f"slot {slot} is live")
            new_slots = 0
        else:
            new_slots = slot + 1 - self.slot_count
        directory_end = _HEADER_SIZE + (self.slot_count + new_slots) * _SLOT_SIZE
        if self.free_space_end - directory_end < len(record):
            self.compact()
            if self.free_space_end - directory_end < len(record):
                raise PageError(
                    f"record of {len(record)} bytes does not fit in slot "
                    f"{slot} (free={self.free_space_end - directory_end})"
                )
        if new_slots:
            count = self.slot_count
            self._write_header(self.lsn, slot + 1, self.free_space_end)
            for gap in range(count, slot + 1):
                self._set_slot(gap, _TOMBSTONE, 0)
        new_end = self.free_space_end - len(record)
        self._data[new_end : new_end + len(record)] = record
        self._write_header(self.lsn, self.slot_count, new_end)
        self._set_slot(slot, new_end, len(record))

    def read(self, slot: int) -> bytes:
        """Return the record stored in ``slot``."""
        offset, length = self._slot(slot)
        if offset == _TOMBSTONE:
            raise PageError(f"slot {slot} is deleted")
        return bytes(self._data[offset : offset + length])

    def delete(self, slot: int) -> None:
        """Tombstone ``slot``; its space is reclaimed on next compaction."""
        offset, __ = self._slot(slot)
        if offset == _TOMBSTONE:
            raise PageError(f"slot {slot} is already deleted")
        self._set_slot(slot, _TOMBSTONE, 0)

    def update(self, slot: int, record: bytes) -> None:
        """Replace the record in ``slot``.

        In-place when the new record is no longer than the old one;
        otherwise the record is re-inserted at the free-space frontier
        (compacting first if fragmentation allows the fit).
        """
        offset, length = self._slot(slot)
        if offset == _TOMBSTONE:
            raise PageError(f"slot {slot} is deleted")
        if len(record) <= length:
            self._data[offset : offset + len(record)] = record
            self._set_slot(slot, offset, len(record))
            return
        # Needs more room: tombstone, compact if necessary, re-insert.
        self._set_slot(slot, _TOMBSTONE, 0)
        if self.free_space < len(record):
            self.compact()
        if self.free_space < len(record):
            # Restore the original so the caller sees an unchanged page.
            self._set_slot(slot, offset, length)
            raise PageError(
                f"updated record of {len(record)} bytes does not fit "
                f"(free={self.free_space})"
            )
        new_end = self.free_space_end - len(record)
        self._data[new_end : new_end + len(record)] = record
        self._write_header(self.lsn, self.slot_count, new_end)
        self._set_slot(slot, new_end, len(record))

    def compact(self) -> None:
        """Squeeze out holes left by deletes/updates; slots keep their ids."""
        live = []
        for i in range(self.slot_count):
            offset, length = self._slot(i)
            if offset != _TOMBSTONE:
                live.append((i, bytes(self._data[offset : offset + length])))
        end = PAGE_SIZE
        for i, record in live:
            end -= len(record)
            self._data[end : end + len(record)] = record
            self._set_slot(i, end, len(record))
        self._write_header(self.lsn, self.slot_count, end)

    # -- iteration ------------------------------------------------------------

    def slots(self) -> Iterator[int]:
        """Yield the slot numbers of live records."""
        for i in range(self.slot_count):
            offset, __ = self._slot(i)
            if offset != _TOMBSTONE:
                yield i

    def records(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(slot, record)`` pairs for live records."""
        for i in self.slots():
            yield i, self.read(i)

    def is_slot_live(self, slot: int) -> bool:
        if not 0 <= slot < self.slot_count:
            return False
        offset, __ = self._slot(slot)
        return offset != _TOMBSTONE
