"""Disk manager: a file of fixed-size pages.

One :class:`DiskManager` owns one data file. Pages are addressed by a
dense integer ``page_id``; allocation only ever grows the file (a free
list is maintained by the heap layer, not here, matching Exodus' split
of responsibilities).
"""

from __future__ import annotations

import os
import threading
from pathlib import Path

from repro.errors import StorageError
from repro.faults import registry as faults
from repro.storage.page import PAGE_SIZE

faults.declare(
    "disk.allocate.pre", "disk.read.pre", "disk.write.pre", "disk.sync.pre",
    group="storage",
)


class DiskManager:
    """Reads and writes :data:`PAGE_SIZE` pages of a single data file."""

    def __init__(self, path: str | os.PathLike):
        self._path = Path(path)
        self._lock = threading.Lock()
        self._path.parent.mkdir(parents=True, exist_ok=True)
        # "r+b" requires the file to exist; create it on first open.
        if not self._path.exists():
            self._path.touch()
        self._file = open(self._path, "r+b", buffering=0)
        size = self._path.stat().st_size
        if size % PAGE_SIZE != 0:
            raise StorageError(
                f"data file {self._path} is torn "
                f"({size} bytes is not a multiple of {PAGE_SIZE})"
            )
        self._num_pages = size // PAGE_SIZE
        self._closed = False

    @property
    def path(self) -> Path:
        return self._path

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def allocate_page(self) -> int:
        """Extend the file by one zeroed page and return its id."""
        if faults.ENABLED:
            faults.fault_point("disk.allocate.pre")
        with self._lock:
            self._check_open()
            page_id = self._num_pages
            self._file.seek(page_id * PAGE_SIZE)
            self._file.write(b"\x00" * PAGE_SIZE)
            self._num_pages += 1
            return page_id

    def read_page(self, page_id: int) -> bytearray:
        if faults.ENABLED:
            faults.fault_point("disk.read.pre")
        with self._lock:
            self._check_open()
            self._check_page(page_id)
            self._file.seek(page_id * PAGE_SIZE)
            data = self._file.read(PAGE_SIZE)
        if len(data) != PAGE_SIZE:
            raise StorageError(f"short read on page {page_id}")
        return bytearray(data)

    def write_page(self, page_id: int, data: bytes | bytearray) -> None:
        if len(data) != PAGE_SIZE:
            raise StorageError(
                f"page write must be {PAGE_SIZE} bytes, got {len(data)}"
            )
        if faults.ENABLED:
            faults.fault_point("disk.write.pre")
        with self._lock:
            self._check_open()
            self._check_page(page_id)
            self._file.seek(page_id * PAGE_SIZE)
            self._file.write(bytes(data))

    def sync(self) -> None:
        """Force written pages to stable storage."""
        if faults.ENABLED:
            faults.fault_point("disk.sync.pre")
        with self._lock:
            self._check_open()
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._file.close()
                self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"disk manager for {self._path} is closed")

    def _check_page(self, page_id: int) -> None:
        if not 0 <= page_id < self._num_pages:
            raise StorageError(
                f"page {page_id} out of range (file has {self._num_pages} pages)"
            )

    def __enter__(self) -> "DiskManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
