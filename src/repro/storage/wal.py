"""Write-ahead log with checksummed, length-prefixed records.

The log is the basis of both abort (undo of a top-level transaction's
updates) and crash recovery. Record framing on disk::

    uint32 length | uint32 crc32(payload) | payload

The payload is the serialized :class:`LogRecord`. A torn tail (partial
final record, bad checksum) is detected and truncated on open, which is
exactly the behaviour recovery relies on.
"""

from __future__ import annotations

import enum
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

from repro.errors import WALError
from repro.faults import registry as faults
from repro.storage import serializer
from repro.telemetry.events import WalFlush
from repro.telemetry.hub import TelemetryHub

_FRAME = struct.Struct("<II")  # length, crc

faults.declare(
    "wal.append.pre", "wal.flush.pre", "wal.fsync.pre", "wal.flush.post",
    group="storage",
)


class LogRecordType(enum.Enum):
    """Kinds of log record written by the storage manager."""

    BEGIN = "begin"
    COMMIT = "commit"
    ABORT = "abort"
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"
    CLR = "clr"  # compensation record written while undoing
    CHECKPOINT = "checkpoint"


@dataclass
class LogRecord:
    """One entry in the write-ahead log.

    ``undo``/``redo`` carry the before/after images for data records;
    ``page_id``/``slot`` locate the affected record. ``prev_lsn`` chains
    a transaction's records backwards for undo; ``undo_next_lsn`` (CLRs
    only) points at the next record still to be undone so undo is
    idempotent across crashes.
    """

    lsn: int
    txn_id: int
    type: LogRecordType
    prev_lsn: int = -1
    page_id: int = -1
    slot: int = -1
    undo: bytes = b""
    redo: bytes = b""
    undo_next_lsn: int = -1
    extra: dict = field(default_factory=dict)

    def encode(self) -> bytes:
        return serializer.dumps(
            {
                "lsn": self.lsn,
                "txn": self.txn_id,
                "type": self.type.value,
                "prev": self.prev_lsn,
                "page": self.page_id,
                "slot": self.slot,
                "undo": self.undo,
                "redo": self.redo,
                "unext": self.undo_next_lsn,
                "extra": self.extra,
            }
        )

    @classmethod
    def decode(cls, payload: bytes) -> "LogRecord":
        d = serializer.loads(payload)
        return cls(
            lsn=d["lsn"],
            txn_id=d["txn"],
            type=LogRecordType(d["type"]),
            prev_lsn=d["prev"],
            page_id=d["page"],
            slot=d["slot"],
            undo=d["undo"],
            redo=d["redo"],
            undo_next_lsn=d["unext"],
            extra=d["extra"],
        )


class WriteAheadLog:
    """Append-only log file with group flush.

    ``append`` assigns the LSN and buffers the record; ``flush`` forces
    everything up to a target LSN to disk. The buffer pool calls
    ``flush(page_lsn)`` before writing a dirty page (WAL protocol) and
    commit calls ``flush()`` for durability.

    ``durability`` controls what "forces to disk" means: ``"fsync"``
    (the default) fsyncs after every flush so COMMIT records survive
    power loss; ``"buffered"`` stops at the OS page cache — faster,
    but a machine crash can lose acknowledged commits. Anything that
    claims durability should leave this on ``"fsync"``.
    """

    DURABILITY_MODES = ("fsync", "buffered")

    def __init__(self, path: str | os.PathLike,
                 telemetry: Optional[TelemetryHub] = None,
                 durability: str = "fsync"):
        if durability not in self.DURABILITY_MODES:
            raise ValueError(
                f"durability must be one of {self.DURABILITY_MODES}, "
                f"got {durability!r}"
            )
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self.durability = durability
        self.telemetry = telemetry if telemetry is not None else TelemetryHub()
        self._lock = threading.Lock()
        self._buffer: list[bytes] = []
        self._next_lsn = 0
        self._flushed_lsn = -1
        self._recover_tail()
        self._file = open(self._path, "ab", buffering=0)
        self._closed = False

    def _recover_tail(self) -> None:
        """Scan the existing log, dropping a torn tail if present."""
        if not self._path.exists():
            self._path.touch()
            return
        good_end = 0
        max_lsn = -1
        with open(self._path, "rb") as f:
            data = f.read()
        offset = 0
        while offset + _FRAME.size <= len(data):
            length, crc = _FRAME.unpack_from(data, offset)
            start = offset + _FRAME.size
            end = start + length
            if end > len(data):
                break
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                break
            record = LogRecord.decode(payload)
            max_lsn = max(max_lsn, record.lsn)
            good_end = end
            offset = end
        if good_end < len(data):
            with open(self._path, "r+b") as f:
                f.truncate(good_end)
        self._next_lsn = max_lsn + 1
        self._flushed_lsn = max_lsn

    @property
    def path(self) -> Path:
        return self._path

    @property
    def flushed_lsn(self) -> int:
        return self._flushed_lsn

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    def append(self, record: LogRecord) -> int:
        """Assign the next LSN to ``record``, buffer it, return the LSN."""
        if faults.ENABLED:
            faults.fault_point("wal.append.pre")
        with self._lock:
            self._check_open()
            record.lsn = self._next_lsn
            self._next_lsn += 1
            payload = record.encode()
            frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
            self._buffer.append(frame)
            return record.lsn

    def flush(self, up_to_lsn: Optional[int] = None) -> None:
        """Force buffered records to disk (all of them by default)."""
        with self._lock:
            self._check_open()
            if up_to_lsn is not None and up_to_lsn <= self._flushed_lsn:
                return
            if not self._buffer:
                return
            if not self.telemetry.active:
                self._write_out()
                return
            with self.telemetry.span(
                WalFlush, records=len(self._buffer)
            ) as span:
                self._write_out()
                span.set(flushed_lsn=self._flushed_lsn)

    def _write_out(self) -> None:
        """Write and (durability permitting) fsync the frames (lock held)."""
        if faults.ENABLED:
            faults.fault_point("wal.flush.pre")
        self._file.write(b"".join(self._buffer))
        self._file.flush()
        if self.durability == "fsync":
            # Crash-only fault point: a crash between write and fsync
            # models power loss with the tail still in the OS cache.
            if faults.ENABLED:
                faults.fault_point("wal.fsync.pre")
            os.fsync(self._file.fileno())
        self._flushed_lsn = self._next_lsn - 1
        self._buffer.clear()
        if faults.ENABLED:
            faults.fault_point("wal.flush.post")

    def records(self) -> Iterator[LogRecord]:
        """Iterate over all durable records, oldest first."""
        with open(self._path, "rb") as f:
            data = f.read()
        offset = 0
        while offset + _FRAME.size <= len(data):
            length, crc = _FRAME.unpack_from(data, offset)
            start = offset + _FRAME.size
            end = start + length
            if end > len(data):
                raise WALError("torn log record past recovered tail")
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                raise WALError(f"checksum mismatch at offset {offset}")
            yield LogRecord.decode(payload)
            offset = end

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                if self._buffer:
                    self._write_out()
                self._file.close()
                self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise WALError(f"log {self._path} is closed")

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
