"""Self-describing binary encoding for records and object state.

The OODB layer stores objects as dictionaries of attribute values; the
WAL stores before/after images. Both need a compact, dependency-free,
deterministic encoding. We use a small tag-based format rather than
``pickle`` so stored data is inspectable, versionable, and cannot
execute code on load.

Supported value types: ``None``, ``bool``, ``int``, ``float``, ``str``,
``bytes``, ``list``/``tuple`` (decoded as list), and ``dict`` with
``str`` keys. These are exactly the "simple data types" the paper limits
event parameters to, plus containers for object state.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.errors import TranslationError

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"I"
_TAG_FLOAT = b"D"
_TAG_STR = b"S"
_TAG_BYTES = b"B"
_TAG_LIST = b"L"
_TAG_DICT = b"M"

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")


def dumps(value: Any) -> bytes:
    """Encode ``value`` to bytes."""
    out = bytearray()
    _encode(value, out)
    return bytes(out)


def loads(data: bytes) -> Any:
    """Decode bytes produced by :func:`dumps`."""
    value, offset = _decode(data, 0)
    if offset != len(data):
        raise TranslationError(
            f"trailing garbage: decoded {offset} of {len(data)} bytes"
        )
    return value


def _encode(value: Any, out: bytearray) -> None:
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        out += _TAG_INT
        out += _I64.pack(value)
    elif isinstance(value, float):
        out += _TAG_FLOAT
        out += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _TAG_STR
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out += _TAG_BYTES
        out += _U32.pack(len(value))
        out += bytes(value)
    elif isinstance(value, (list, tuple)):
        out += _TAG_LIST
        out += _U32.pack(len(value))
        for item in value:
            _encode(item, out)
    elif isinstance(value, dict):
        out += _TAG_DICT
        out += _U32.pack(len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise TranslationError(
                    f"dict keys must be str, got {type(key).__name__}"
                )
            raw = key.encode("utf-8")
            out += _U32.pack(len(raw))
            out += raw
            _encode(item, out)
    else:
        raise TranslationError(f"cannot serialize {type(value).__name__}")


def _decode(data: bytes, offset: int) -> tuple[Any, int]:
    if offset >= len(data):
        raise TranslationError("truncated value: missing tag")
    tag = data[offset : offset + 1]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        _check(data, offset, _I64.size)
        return _I64.unpack_from(data, offset)[0], offset + _I64.size
    if tag == _TAG_FLOAT:
        _check(data, offset, _F64.size)
        return _F64.unpack_from(data, offset)[0], offset + _F64.size
    if tag == _TAG_STR:
        raw, offset = _read_blob(data, offset)
        return raw.decode("utf-8"), offset
    if tag == _TAG_BYTES:
        return _read_blob(data, offset)
    if tag == _TAG_LIST:
        _check(data, offset, _U32.size)
        count = _U32.unpack_from(data, offset)[0]
        offset += _U32.size
        items = []
        for __ in range(count):
            item, offset = _decode(data, offset)
            items.append(item)
        return items, offset
    if tag == _TAG_DICT:
        _check(data, offset, _U32.size)
        count = _U32.unpack_from(data, offset)[0]
        offset += _U32.size
        result = {}
        for __ in range(count):
            raw, offset = _read_blob(data, offset)
            value, offset = _decode(data, offset)
            result[raw.decode("utf-8")] = value
        return result, offset
    raise TranslationError(f"unknown tag {tag!r} at offset {offset - 1}")


def _read_blob(data: bytes, offset: int) -> tuple[bytes, int]:
    _check(data, offset, _U32.size)
    length = _U32.unpack_from(data, offset)[0]
    offset += _U32.size
    _check(data, offset, length)
    return bytes(data[offset : offset + length]), offset + length


def _check(data: bytes, offset: int, need: int) -> None:
    if offset + need > len(data):
        raise TranslationError(
            f"truncated value: need {need} bytes at offset {offset}, "
            f"have {len(data) - offset}"
        )
