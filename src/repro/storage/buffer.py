"""Buffer pool with LRU replacement and WAL-before-data enforcement.

Frames hold page images; pages must be pinned while in use and unpinned
(with a dirty flag) afterwards. Evicting a dirty frame first flushes the
WAL up to the page's LSN, preserving the write-ahead invariant the
recovery module depends on.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import BufferError_
from repro.faults import registry as faults
from repro.storage.disk import DiskManager
from repro.storage.page import SlottedPage
from repro.storage.wal import WriteAheadLog
from repro.telemetry.events import BufferEviction
from repro.telemetry.hub import TelemetryHub

faults.declare("buffer.writeback.pre", "buffer.evict.pre", group="storage")


@dataclass
class _Frame:
    page: SlottedPage
    pin_count: int = 0
    dirty: bool = False


@dataclass
class BufferStats:
    """Counters exposed for the benchmark harness."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BufferPool:
    """Caches up to ``capacity`` pages of one :class:`DiskManager`."""

    def __init__(
        self,
        disk: DiskManager,
        capacity: int = 128,
        wal: Optional[WriteAheadLog] = None,
        telemetry: Optional[TelemetryHub] = None,
    ):
        if capacity < 1:
            raise BufferError_("buffer pool needs at least one frame")
        self._disk = disk
        self._capacity = capacity
        self._wal = wal
        self.telemetry = telemetry if telemetry is not None else TelemetryHub()
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        self._lock = threading.RLock()
        self.stats = BufferStats()

    @property
    def capacity(self) -> int:
        return self._capacity

    def new_page(self) -> tuple[int, SlottedPage]:
        """Allocate a fresh page on disk and pin it in the pool."""
        page_id = self._disk.allocate_page()
        with self._lock:
            self._ensure_room()
            frame = _Frame(page=SlottedPage(), pin_count=1, dirty=True)
            self._frames[page_id] = frame
            self._frames.move_to_end(page_id)
            return page_id, frame.page

    def fetch_page(self, page_id: int) -> SlottedPage:
        """Pin ``page_id`` into the pool and return its page."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
                self._ensure_room()
                frame = _Frame(page=SlottedPage(self._disk.read_page(page_id)))
                self._frames[page_id] = frame
            frame.pin_count += 1
            self._frames.move_to_end(page_id)
            return frame.page

    def unpin_page(self, page_id: int, dirty: bool = False) -> None:
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None or frame.pin_count <= 0:
                raise BufferError_(f"page {page_id} is not pinned")
            frame.pin_count -= 1
            frame.dirty = frame.dirty or dirty

    @contextmanager
    def page(self, page_id: int, dirty: bool = False) -> Iterator[SlottedPage]:
        """``with pool.page(pid) as p:`` — pin for the block, then unpin."""
        page = self.fetch_page(page_id)
        try:
            yield page
        finally:
            self.unpin_page(page_id, dirty=dirty)

    def flush_page(self, page_id: int) -> None:
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None:
                return
            self._write_back(page_id, frame)

    def flush_all(self) -> None:
        with self._lock:
            for page_id, frame in list(self._frames.items()):
                self._write_back(page_id, frame)
            self._disk.sync()

    def _write_back(self, page_id: int, frame: _Frame) -> None:
        if not frame.dirty:
            return
        if faults.ENABLED:
            faults.fault_point("buffer.writeback.pre")
        if self._wal is not None:
            self._wal.flush(frame.page.lsn)
        self._disk.write_page(page_id, frame.page.data)
        frame.dirty = False
        self.stats.flushes += 1

    def _ensure_room(self) -> None:
        """Evict the least recently used unpinned frame if the pool is full."""
        if len(self._frames) < self._capacity:
            return
        for page_id, frame in self._frames.items():
            if frame.pin_count == 0:
                if faults.ENABLED:
                    faults.fault_point("buffer.evict.pre")
                was_dirty = frame.dirty
                self._write_back(page_id, frame)
                del self._frames[page_id]
                self.stats.evictions += 1
                if self.telemetry.active:
                    self.telemetry.point(
                        BufferEviction, page_id=page_id, dirty=was_dirty
                    )
                return
        raise BufferError_(
            f"all {self._capacity} frames are pinned; cannot evict"
        )

    def resident_pages(self) -> list[int]:
        with self._lock:
            return list(self._frames)

    def drop_all(self) -> None:
        """Discard every frame without writing back (crash simulation)."""
        with self._lock:
            self._frames.clear()
