"""The Sentinel facade: an active OODBMS.

Wires together every module of the architecture in Figure 1:

* the Open OODB substrate (optional — omit ``directory`` for a purely
  in-memory active system),
* the nested transaction manager for rule subtransactions,
* the local composite event detector with the Snoop event graph,
* the rule scheduler (serial or threaded),
* the system class's transaction events (``begin_transaction``,
  ``pre_commit_transaction``, ``commit_transaction``,
  ``abort_transaction``) signaled around every top-level transaction,
* the flush-on-commit/abort rules — real, deactivatable rules, exactly
  as the paper describes ("this is invoked as an action of a rule on
  abort and commit events. However, these can be easily modified by
  deactivating these rules if events across transaction boundaries need
  to be detected"),
* a detached-rule handler that runs DETACHED-coupled rules in their own
  thread under a fresh top-level transaction.
"""

from __future__ import annotations

import asyncio
import os
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

from repro.clock import Clock
from repro.core.deferred import (
    ABORT_TRANSACTION,
    BEGIN_TRANSACTION,
    COMMIT_TRANSACTION,
    PRE_COMMIT_TRANSACTION,
    ensure_system_events,
)
from repro.core.detector import LocalEventDetector
from repro.core.events.primitive import (
    ExplicitEventNode,
    PrimitiveEventNode,
    TemporalEventNode,
)
from repro.core.params import EventModifier, PrimitiveOccurrence
from repro.core.reactive import Reactive, set_current_detector
from repro.core.rules import (
    Action,
    Condition,
    Rule,
    always,
    reject_positional_rule_args,
)
from repro.core.scheduler import (
    DetachedRuleQueue,
    RuleActivation,
    SerialExecutor,
    ThreadedExecutor,
)
from repro.errors import InvalidTransactionState
from repro.oodb.database import OODBTransaction, OpenOODB
from repro.serving.api import (
    DetectionListener,
    SentinelAPI,
    detection_summary,
)
from repro.oodb.object_model import Persistent
from repro.telemetry.events import TransactionSpan
from repro.telemetry.hub import TelemetryHub, TelemetrySpan
from repro.telemetry.latency import StageLatencyProcessor
from repro.telemetry.processors import (
    CounterProcessor,
    TelemetryProcessor,
    TraceLogProcessor,
)
from repro.transactions.nested import NestedTransaction, NestedTransactionManager

if TYPE_CHECKING:
    from repro.monitor import FlightRecorder, MonitorServer, RuleProfiler

FLUSH_ON_COMMIT_RULE = "$flush_on_commit"
FLUSH_ON_ABORT_RULE = "$flush_on_abort"


@dataclass
class SystemReport:
    """A status snapshot across every module of the active system.

    Counter values come from the telemetry metrics registry (the
    default :class:`~repro.telemetry.processors.CounterProcessor`);
    structural numbers (node counts, enabled rules, resident objects)
    are read live. ``to_dict()`` returns the pre-telemetry dict shape
    and ``report["events"]``-style indexing keeps old callers working.
    """

    name: str
    events: dict[str, int]
    notifications: dict[str, int]
    rules: dict[str, int]
    storage: Optional[dict[str, Any]] = None
    #: the full metrics-registry dump (counters + latency histograms)
    metrics: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        from repro.reporting import system_report_dict

        return system_report_dict(self)

    def __getitem__(self, key: str) -> Any:
        return self.to_dict()[key]

    def __contains__(self, key: str) -> bool:
        return key in self.to_dict()


class _SpecDocument(Persistent):
    """A stored specification-language document."""

    def __init__(self, spec_name: str, source: str):
        self.spec_name = spec_name
        self.source = source


class SentinelTransaction:
    """A top-level transaction of the active system.

    Pairs the (optional) OODB transaction with the root of a nested
    transaction tree under which all triggered rules execute.
    """

    def __init__(self, system: "Sentinel", root: NestedTransaction,
                 oodb_txn: Optional[OODBTransaction]):
        self._system = system
        self.root = root
        self.oodb = oodb_txn
        self.finished = False
        #: telemetry scope covering the whole transaction (None when no
        #: processor was attached at begin time)
        self.span: Optional[TelemetrySpan] = None

    @property
    def txn_id(self) -> int:
        return self.oodb.txn_id if self.oodb is not None else self.root.txn_id

    # Object operations pass through to the OODB transaction.
    def persist(self, obj, name=None):
        return self._require_db().persist(obj, name)

    def fetch(self, oid):
        return self._require_db().fetch(oid)

    def lookup(self, name):
        return self._require_db().lookup(name)

    def save(self, obj):
        return self._require_db().save(obj)

    def mark_dirty(self, obj):
        return self._require_db().mark_dirty(obj)

    def remove(self, obj):
        return self._require_db().remove(obj)

    def extent(self, cls):
        return self._require_db().extent(cls)

    def bind(self, name, obj):
        return self._require_db().bind(name, obj)

    def unbind(self, name):
        return self._require_db().unbind(name)

    def _require_db(self) -> OODBTransaction:
        if self.oodb is None:
            raise InvalidTransactionState(
                "no database attached; open Sentinel with a directory for "
                "persistent objects"
            )
        return self.oodb

    def commit(self) -> None:
        self._system.commit(self)

    def abort(self) -> None:
        self._system.abort(self)


#: transaction-boundary events signaled by the system class — part of
#: the machinery, not of the user's event vocabulary (event_names()
#: hides them for local/remote listing parity)
_SYSTEM_EVENT_NAMES = frozenset({
    BEGIN_TRANSACTION,
    PRE_COMMIT_TRANSACTION,
    COMMIT_TRANSACTION,
    ABORT_TRANSACTION,
})


class Sentinel(SentinelAPI):
    """An active OODBMS instance (one application / Exodus client).

    Implements :class:`~repro.serving.api.SentinelAPI` — the portable
    event/rule/ingestion surface shared with
    :class:`~repro.serving.client.SentinelClient` — plus everything
    only an in-process system can offer (transactions, persistence,
    callable rule conditions/actions, telemetry).
    """

    def __init__(
        self,
        directory: Optional[str | os.PathLike] = None,
        clock: Optional[Clock] = None,
        executor: Optional[SerialExecutor | ThreadedExecutor] = None,
        sharing: bool = True,
        error_policy: str = "raise",
        name: str = "app",
        flush_on_boundaries: bool = True,
        pool_size: int = 128,
        activate: bool = True,
        metrics: bool = True,
        shards: int = 1,
        dispatch: Optional[str] = None,
        detached_capacity: int = 256,
        detached_policy: str = "block",
        detached_workers: int = 2,
        detached_spill=None,
        detections_capacity: int = 1024,
        ingest_capacity: int = 1024,
        ingest_batch: int = 64,
    ):
        self.name = name
        #: one telemetry hub shared by every layer (detector, event
        #: graph, nested transactions, WAL, buffer pool); attach
        #: processors here to observe the whole system.
        self.telemetry = TelemetryHub()
        self.metrics: Optional[CounterProcessor] = (
            self.telemetry.attach(CounterProcessor()) if metrics else None
        )
        #: log-bucketed stage-latency histograms (ingest, detect,
        #: condition, action, commit, shard hops, detached waits, wire);
        #: rides the same ``metrics`` switch as the counter registry.
        self.stage_latency: Optional[StageLatencyProcessor] = (
            self.telemetry.attach(StageLatencyProcessor()) if metrics else None
        )
        self.db: Optional[OpenOODB] = (
            OpenOODB(directory, pool_size=pool_size, telemetry=self.telemetry)
            if directory is not None
            else None
        )
        self.txns = NestedTransactionManager(telemetry=self.telemetry)
        self.detector = LocalEventDetector(
            clock=clock,
            executor=executor,
            txn_manager=self.txns,
            sharing=sharing,
            error_policy=error_policy,
            name=name,
            telemetry=self.telemetry,
            shards=shards,
            dispatch=dispatch,
        )
        ensure_system_events(self.detector)
        self.detector.detached_handler = self._run_detached
        #: bounded detached-rule queue; overflow resolved by
        #: ``detached_policy`` ("block" / "drop_oldest" / "spill", see
        #: :class:`~repro.core.scheduler.DetachedRuleQueue`)
        self.detached = DetachedRuleQueue(
            runner=self._execute_detached,
            capacity=detached_capacity,
            policy=detached_policy,
            workers=detached_workers,
            spill_sink=detached_spill,
            telemetry=self.telemetry,
        )
        self._detached_lock = threading.Lock()
        #: streaming front door (see :meth:`ingest`), created on first
        #: use so systems that never stream pay nothing for it
        self._ingest: Optional[_IngestState] = None
        self._ingest_lock = threading.Lock()
        self._ingest_capacity = ingest_capacity
        self._ingest_batch = ingest_batch
        self._closing = False
        self._local = threading.local()
        self._closed = False
        #: detection summaries recorded by watched rules, newest last
        self._detections: deque = deque(maxlen=detections_capacity)
        self._detections_lock = threading.Lock()
        self._detection_listeners: list[DetectionListener] = []
        #: extra Prometheus line providers consulted by
        #: :func:`repro.reporting.runtime_metric_lines` — an attached
        #: :class:`~repro.serving.server.SentinelServer` registers its
        #: per-tenant families here so any monitor picks them up.
        self.extra_metric_providers: list[Callable[[], list[str]]] = []
        #: extra ``health()`` slice providers (each returns a dict merged
        #: into the health payload) — an attached server contributes its
        #: address/connection/drain state here.
        self.extra_health_providers: list[Callable[[], dict]] = []
        #: the live monitor server, if one was started (see ``monitor``)
        self._monitor: Optional["MonitorServer"] = None
        #: processors the monitor attached; detached again on close
        self._monitor_processors: list[TelemetryProcessor] = []
        if flush_on_boundaries:
            self._install_flush_rules()
        if self.db is not None:
            self.db.on_pre_commit.append(self._on_db_pre_commit)
            self.db.registry.register(_SpecDocument)
        if activate:
            self.activate()

    # -- plumbing convenience ---------------------------------------------------

    @property
    def dispatch(self) -> str:
        """Which detection backend signals route through
        (``"interpreted"`` or ``"compiled"``)."""
        return self.detector.dispatch

    @property
    def rules(self):
        return self.detector.rules

    @property
    def graph(self):
        return self.detector.graph

    @property
    def clock(self):
        return self.detector.clock

    def activate(self) -> None:
        """Route reactive-method notifications (this thread) to us."""
        set_current_detector(self.detector)

    @contextmanager
    def active(self) -> Iterator["Sentinel"]:
        """Scoped activation for multi-application code::

            with orders_app.active():
                book.place_order("SKU-7", 5)   # notifies orders_app
        """
        from repro.core.reactive import get_current_detector

        previous = get_current_detector()
        set_current_detector(self.detector)
        try:
            yield self
        finally:
            set_current_detector(previous)

    def register_class(self, cls: type,
                       prefix: Optional[str] = None) -> dict:
        """Register a class with the active system.

        Reactive classes get primitive event nodes for their declared
        events (returned as a name -> node dict); persistent classes
        are added to the translation registry. A class may be either
        or both.
        """
        if self.db is not None and hasattr(cls, "persistent_state"):
            self.db.registry.register(cls)
        if hasattr(cls, "register_events"):
            return cls.register_events(self.detector, prefix=prefix)
        return {}

    # Event / rule definition passthroughs (typed mirrors of the
    # detector API, so the facade is self-documenting).
    def primitive_event(
        self,
        name: str,
        class_or_instance: Any,
        modifier: EventModifier | str,
        method_name: str,
        snapshot_state: bool = False,
    ) -> PrimitiveEventNode:
        return self.detector.primitive_event(
            name, class_or_instance, modifier, method_name,
            snapshot_state=snapshot_state,
        )

    def explicit_event(self, name: str) -> ExplicitEventNode:
        return self.detector.explicit_event(name)

    def temporal_event(self, name: str, at: Optional[float] = None,
                       every: Optional[float] = None) -> TemporalEventNode:
        return self.detector.temporal_event(name, at=at, every=every)

    def event(self, name: str):
        return self.detector.event(name)

    def define(self, name: str, node):
        """Name an event expression for reuse (see ``detector.define``).

        ``node`` may be an :class:`EventNode` or an expression string
        in the operator algebra (``"a >> (b & c)"``,
        ``"NOT(a, b, c)"`` — see :mod:`repro.serving.expr`), the form
        remote clients use.
        """
        return self.detector.define(name, self._resolve_event(node))

    def _resolve_event(self, event: Any):
        """An event reference (node, name, or expression string) as a node."""
        if not isinstance(event, str):
            return event
        from repro.serving.expr import parse_event_expr

        return parse_event_expr(event, self.detector.graph.get)

    def event_names(self) -> list[str]:
        """User-defined event names (system transaction events and
        internal ``$`` names excluded — matches the remote listing)."""
        return sorted(
            name
            for name in self.detector.graph.names()
            if name not in _SYSTEM_EVENT_NAMES and not name.startswith("$")
        )

    def rule(
        self,
        name: str,
        event: Any,
        *legacy_positional,
        condition: Condition = always,
        action: Optional[Action] = None,
        context: str = "recent",
        coupling: str = "immediate",
        priority: int | str = 1,
        trigger_mode: str = "now",
        enabled: bool = True,
        scope: str = "public",
        owner: Optional[str] = None,
        executor: Optional[str] = None,
    ) -> Rule:
        """Define a rule; ``condition``/``action`` are keyword-only
        (``condition`` defaults to always-true). The deprecated
        positional convention was removed — old call sites get a
        RemovedAPIError [E2] naming ``tools/migrate_rule_calls.py``.

        ``executor`` picks the execution lane (``"sync"``/``"async"``);
        the default auto-detects — ``async def`` actions run on the
        asyncio lane, plain callables on the thread lanes."""
        reject_positional_rule_args(legacy_positional)
        return self.detector.rule(
            name, event, condition=condition, action=action,
            context=context, coupling=coupling, priority=priority,
            trigger_mode=trigger_mode, enabled=enabled,
            scope=scope, owner=owner, executor=executor,
        )

    def raise_event(self, name: str, txn_id: Optional[int] = None,
                    **params: Any) -> PrimitiveOccurrence:
        return self.detector.raise_event(name, txn_id=txn_id, **params)

    def raise_events(self, events,
                     txn_id: Optional[int] = None) -> list[PrimitiveOccurrence]:
        """Raise many explicit events under one batched dispatch
        (see :meth:`~repro.core.detector.LocalEventDetector.raise_events`)."""
        return self.detector.raise_events(events, txn_id=txn_id)

    def notify_batch(self, items,
                     txn_id: Optional[int] = None) -> list[PrimitiveOccurrence]:
        """Ingest many Notify items under one batched dispatch
        (see :meth:`~repro.core.detector.LocalEventDetector.notify_batch`)."""
        return self.detector.notify_batch(items, txn_id=txn_id)

    def advance_time(self, delta: float) -> None:
        self.detector.advance_time(delta)

    # =====================================================================
    # Streaming ingestion (the awaitable front door)
    # =====================================================================

    async def ingest(self, item) -> None:
        """Admit one event into the streaming front door (awaitable).

        ``item`` is an event name, a ``(name, params)`` pair (both raise
        explicit events) or a 4/5-tuple Notify item as accepted by
        :meth:`notify_batch`. Items are buffered on a bounded asyncio
        queue (``ingest_capacity``) and applied to the detector in
        admission order in batches of up to ``ingest_batch`` — awaiting
        ``ingest`` on a full queue *suspends the caller* until the
        drain catches up, which is the backpressure contract: a fast
        producer is slowed instead of memory growing without bound.

        Await it from any event loop (or several at once); the entry is
        bridged to the ingestion loop thread-safely. Detections are
        asynchronous with the caller — ``await`` returns when the item
        is *accepted*, not when its rules ran; use :meth:`ingest_flush`
        for a barrier.
        """
        entry = _ingest_entry(item)
        state = self._ingest_state()
        await state.put(entry)

    def ingest_flush(self, timeout: Optional[float] = 30.0) -> None:
        """Block until every accepted item has been applied (a barrier
        for tests and orderly handoffs). Raises ``TimeoutError`` if the
        backlog did not drain in ``timeout`` seconds."""
        state = self._ingest
        if state is not None:
            state.flush(timeout)

    def ingest_stats(self) -> dict:
        """Counters for the streaming front door (all zero until the
        first :meth:`ingest`)."""
        state = self._ingest
        if state is None:
            return {
                "accepted": 0, "flushed": 0, "flushes": 0,
                "depth": 0, "errors": 0,
                "capacity": self._ingest_capacity,
                "batch": self._ingest_batch,
            }
        return state.snapshot()

    def _ingest_state(self) -> "_IngestState":
        state = self._ingest
        if state is None:
            with self._ingest_lock:
                state = self._ingest
                if state is None:
                    if self._closed or self._closing:
                        raise RuntimeError(
                            f"sentinel {self.name!r} is closed"
                        )
                    state = _IngestState(
                        self, self._ingest_capacity, self._ingest_batch
                    )
                    self._ingest = state
        if state.closed:
            raise RuntimeError("ingest is closed")
        return state

    # =====================================================================
    # Watched rules and recorded detections (the SentinelAPI surface)
    # =====================================================================

    def watch(self, name: str, event: Any, *, context: str = "recent",
              coupling: str = "immediate", priority: int | str = 1,
              executor: str = "sync") -> str:
        """Define a rule that *records* detections instead of acting.

        Each detection appends one JSON-safe summary dict (see
        :func:`repro.serving.api.detection_summary`) to a bounded log
        read back by :meth:`detections` and fanned out to
        :meth:`add_detection_listener` callbacks. ``event`` may be an
        event name, an expression string, or an :class:`EventNode`.
        This is the whole rule surface available to remote clients —
        conditions and actions are code and stay in-process.
        ``executor="async"`` records on the asyncio lane instead of the
        thread lanes (lets remote clients exercise async scheduling).
        """
        node = self._resolve_event(event)

        def record(occurrence, _name=name) -> None:
            self._record_detection(detection_summary(_name, occurrence))

        self.detector.rule(
            name, node, action=record, context=context,
            coupling=coupling, priority=priority, executor=executor,
        )
        return name

    def unwatch(self, name: str) -> None:
        """Delete a watched rule (any rule, in fact) by name."""
        self.rules.delete(name)

    def enable_rule(self, name: str) -> None:
        self.rules.enable(name)

    def disable_rule(self, name: str) -> None:
        self.rules.disable(name)

    def rule_names(self) -> list[str]:
        """User-defined rule names (internal ``$`` rules excluded)."""
        return sorted(
            name for name in self.rules.names() if not name.startswith("$")
        )

    def _record_detection(self, summary: dict) -> None:
        with self._detections_lock:
            self._detections.append(summary)
        for listener in list(self._detection_listeners):
            try:
                listener(summary)
            except Exception:  # noqa: BLE001 — observer bugs stay observers'
                pass

    def detections(self, rule: Optional[str] = None, *,
                   match: Optional[Callable[[str], bool]] = None,
                   clear: bool = False) -> list[dict]:
        """Recorded detection summaries, oldest first.

        ``rule`` filters to one rule name; ``match`` (local-only, used
        by the server for tenant scoping) filters by predicate on the
        rule name; ``clear=True`` consumes the returned entries,
        leaving non-matching ones in place.
        """
        if rule is not None:
            predicate = lambda s: s.get("rule") == rule  # noqa: E731
        elif match is not None:
            predicate = lambda s: match(s.get("rule", ""))  # noqa: E731
        else:
            predicate = lambda s: True  # noqa: E731
        with self._detections_lock:
            selected = [dict(s) for s in self._detections if predicate(s)]
            if clear and selected:
                kept = [s for s in self._detections if not predicate(s)]
                self._detections.clear()
                self._detections.extend(kept)
        return selected

    def add_detection_listener(self, listener: DetectionListener) -> None:
        """Observe watched-rule detections live (summary dict per hit)."""
        self._detection_listeners.append(listener)

    def remove_detection_listener(self, listener: DetectionListener) -> None:
        try:
            self._detection_listeners.remove(listener)
        except ValueError:
            pass

    def ping(self) -> dict:
        """Cheap liveness probe (the remote client's round-trip)."""
        return {"name": self.name, "healthy": not self._closed}

    def serve(self, host: str = "127.0.0.1", port: int = 0, *,
              tenants=None, max_frame: Optional[int] = None):
        """Put this system behind a multi-tenant TCP server.

        Returns a started :class:`~repro.serving.server.SentinelServer`
        (``port=0`` picks a free port — read ``server.port``). Close it
        before closing the system.
        """
        from repro.serving.protocol import DEFAULT_MAX_FRAME
        from repro.serving.server import SentinelServer

        return SentinelServer(
            self, host, port, tenants=tenants,
            max_frame=max_frame if max_frame is not None else DEFAULT_MAX_FRAME,
        ).start()

    # =====================================================================
    # Transactions
    # =====================================================================

    def begin(self) -> SentinelTransaction:
        """Start a top-level transaction; signals ``begin_transaction``."""
        if self.current() is not None:
            raise InvalidTransactionState(
                "a Sentinel transaction is already active on this thread"
            )
        oodb_txn = self.db.begin() if self.db is not None else None
        top_id = oodb_txn.txn_id if oodb_txn is not None else None
        root = self.txns.begin_top(label=f"{self.name}-txn", top_level_id=top_id)
        txn = SentinelTransaction(self, root, oodb_txn)
        if self.telemetry.active:
            # The root of this transaction's trace tree. It stays on the
            # thread's span stack until commit/abort, so every notify,
            # rule, and WAL flush in between nests under it.
            txn.span = self.telemetry.open_span(
                TransactionSpan, txn_id=txn.txn_id
            )
        self._local.txn = txn
        self.detector.set_current_transaction(root)
        # "The begin transaction event is always signaled at the
        # beginning of a transaction."
        self.detector.signal_system_event(BEGIN_TRANSACTION, txn.txn_id)
        return txn

    def current(self) -> Optional[SentinelTransaction]:
        return getattr(self._local, "txn", None)

    def commit(self, txn: Optional[SentinelTransaction] = None) -> None:
        """Commit: pre-commit (deferred rules), storage commit, commit
        events (graph flush), then the rule transaction tree."""
        txn = self._resolve(txn)
        if txn.oodb is not None:
            # The OODB pre-commit hook signals pre_commit_transaction,
            # which fires deferred rules before the storage commit.
            self.db.commit(txn.oodb)
        else:
            self.detector.signal_system_event(
                PRE_COMMIT_TRANSACTION, txn.txn_id
            )
        # Commit-event rules (including graph flush) run while the rule
        # transaction tree is still alive.
        self.detector.signal_system_event(COMMIT_TRANSACTION, txn.txn_id)
        txn.root.commit()
        self._finish(txn, outcome="committed")

    def abort(self, txn: Optional[SentinelTransaction] = None) -> None:
        """Abort: storage rollback, abort events (graph flush), tree abort."""
        txn = self._resolve(txn)
        if txn.oodb is not None and txn.oodb.is_active:
            self.db.abort(txn.oodb)
        self.detector.signal_system_event(ABORT_TRANSACTION, txn.txn_id)
        txn.root.abort()
        self._finish(txn, outcome="aborted")

    def _on_db_pre_commit(self, oodb_txn: OODBTransaction) -> None:
        txn = self.current()
        if txn is not None and txn.oodb is oodb_txn:
            self.detector.signal_system_event(
                PRE_COMMIT_TRANSACTION, txn.txn_id
            )

    def _resolve(self, txn: Optional[SentinelTransaction]) -> SentinelTransaction:
        txn = txn or self.current()
        if txn is None or txn.finished:
            raise InvalidTransactionState("no active Sentinel transaction")
        return txn

    def _finish(self, txn: SentinelTransaction,
                outcome: str = "committed") -> None:
        txn.finished = True
        if txn.span is not None:
            txn.span.close(outcome=outcome)
            txn.span = None
        if self.current() is txn:
            self._local.txn = None
        self.detector.set_current_transaction(None)

    @contextmanager
    def transaction(self) -> Iterator[SentinelTransaction]:
        """Commit on success, abort on error."""
        txn = self.begin()
        try:
            yield txn
        except BaseException:
            if not txn.finished:
                self.abort(txn)
            raise
        else:
            if not txn.finished:
                self.commit(txn)

    # =====================================================================
    # System rules
    # =====================================================================

    def _install_flush_rules(self) -> None:
        """Flush the event graph when a transaction commits or aborts.

        "Currently, we provide a mechanism to flush all events generated
        by a transaction when it commits" — implemented, per the paper,
        as rules on the commit/abort events; deactivate them
        (``sentinel.rules.disable(FLUSH_ON_COMMIT_RULE)``) to let
        composite events span transactions.
        """

        def flush_action(occurrence) -> None:
            self.detector.flush()

        self.detector.rule(
            FLUSH_ON_COMMIT_RULE,
            COMMIT_TRANSACTION,
            action=flush_action,
            priority=-1_000_000,  # run after every user rule
        )
        self.detector.rule(
            FLUSH_ON_ABORT_RULE,
            ABORT_TRANSACTION,
            action=flush_action,
            priority=-1_000_000,
        )

    # =====================================================================
    # Detached rule execution
    # =====================================================================

    def _run_detached(self, activation: RuleActivation) -> None:
        """Hand a DETACHED-coupled activation to the bounded queue.

        The paper left detached mode as future work; we provide the
        natural semantics: a worker thread, a separate transaction
        tree, no causal dependence on the triggering transaction.
        During ``close()`` the queue is draining, so the rule runs
        inline on the triggering thread instead (same fresh top-level
        transaction, just synchronous).
        """
        with self._detached_lock:
            closing = self._closing
        if closing:
            self._execute_detached(activation)
        else:
            self.detached.submit(activation)

    def _execute_detached(self, activation: RuleActivation) -> None:
        """Run one detached activation under a fresh top-level transaction."""
        self.activate()
        root = self.txns.begin_top(label=f"detached:{activation.rule.name}")
        activation.parent_txn = root
        previous = self.detector.current_transaction()
        self.detector.set_current_transaction(root)
        try:
            self.detector.scheduler.run_one(activation)
            root.commit()
        except Exception:
            if root.state.value == "active":
                root.abort()
            raise
        finally:
            self.detector.set_current_transaction(previous)

    def wait_detached(self, timeout: Optional[float] = 10.0) -> None:
        """Wait for the detached-rule backlog to drain (tests, shutdown).

        ``timeout`` is in seconds; pass ``None`` to wait forever (a
        detached rule may itself trigger further detached rules, so the
        wait covers the transitive backlog). If the timeout elapses
        first, raises :class:`TimeoutError` naming the number of
        activations still pending, with the per-queue breakdown (queued
        depth vs activations on workers) from the queue snapshot.
        """
        if self.detached.join(timeout):
            return
        backlog = self.detached.backlog()
        snapshot = self.detached.snapshot()
        raise TimeoutError(
            f"detached rules did not drain within {timeout}s; "
            f"{backlog} activation(s) still pending "
            f"(queued={snapshot['depth']}, active={snapshot['active']}, "
            f"capacity={snapshot['capacity']}, policy={snapshot['policy']})"
        )

    # =====================================================================
    # Persistent specifications (rules stored in the database)
    # =====================================================================

    SPEC_NAME_PREFIX = "$spec:"

    def store_spec(self, name: str, source: str) -> None:
        """Persist a specification document under ``name``.

        Sentinel stored rule definitions in the OODB; here the durable
        form is the specification *source* (conditions and actions are
        code, so they rebind from a namespace at load time).
        The spec is validated by parsing before it is stored.
        """
        from repro.snoop.parser import parse

        parse(source)  # reject broken specs before they hit the store
        db = self._require_db()
        document = _SpecDocument(name, source)
        with db.transaction() as txn:
            binding = self.SPEC_NAME_PREFIX + name
            if db.names.is_bound(binding):
                existing = txn.lookup(binding)
                existing.source = source
                txn.mark_dirty(existing)
            else:
                txn.persist(document, name=binding)

    def load_spec(self, name: str, namespace: Optional[dict] = None):
        """Rebuild the events and rules of a stored specification."""
        from repro.snoop.builder import build_spec

        db = self._require_db()
        with db.transaction() as txn:
            document = txn.lookup(self.SPEC_NAME_PREFIX + name)
            source = document.source
        return build_spec(source, self.detector, namespace or {})

    def stored_specs(self) -> list[str]:
        """Names of the specification documents stored in the database."""
        db = self._require_db()
        prefix = self.SPEC_NAME_PREFIX
        return sorted(
            name[len(prefix):]
            for name in db.names.names()
            if name.startswith(prefix)
        )

    def drop_spec(self, name: str) -> None:
        db = self._require_db()
        with db.transaction() as txn:
            binding = self.SPEC_NAME_PREFIX + name
            document = txn.lookup(binding)
            txn.unbind(binding)
            txn.remove(document)

    def _require_db(self) -> OpenOODB:
        if self.db is None:
            raise InvalidTransactionState(
                "persistent specifications need a database directory"
            )
        return self.db

    # =====================================================================
    # Introspection
    # =====================================================================

    def report(self) -> SystemReport:
        """A status snapshot across every module (operations/debugging).

        Counters come from the telemetry metrics registry (the default
        :class:`~repro.telemetry.processors.CounterProcessor`); with
        ``metrics=False`` the legacy per-module stats objects are read
        instead — the values are identical (see the telemetry parity
        tests).
        """
        detector = self.detector
        registry = self.metrics.registry if self.metrics is not None else None

        def counter(name: str, fallback: int) -> int:
            return registry.value(name) if registry is not None else fallback

        events = {
            "nodes": len(detector.graph),
            "named": len(detector.graph.names()),
            "shared_hits": detector.graph.stats.shared_hits,
            "detections": counter(
                "graph.detections", detector.graph.stats.detections
            ),
            "propagations": detector.graph.stats.propagations,
        }
        notifications = {
            "received": counter(
                "detector.notifications", detector.stats.notifications
            ),
            "suppressed": counter(
                "detector.suppressed", detector.stats.suppressed
            ),
            "triggers": counter("rules.triggers", detector.stats.triggers),
            "detached": counter(
                "detector.detached_dispatches",
                detector.stats.detached_dispatches,
            ),
        }
        scheduler_stats = detector.scheduler.stats
        rules = {
            "defined": len(detector.rules),
            "enabled": sum(1 for r in detector.rules.all() if r.enabled),
            "executions": counter(
                "rules.executions", scheduler_stats.executions
            ),
            "condition_rejections": counter(
                "rules.condition_rejections",
                scheduler_stats.condition_rejections,
            ),
            "failures": counter("rules.failures", scheduler_stats.failures),
            "max_nesting": scheduler_stats.max_depth_seen,
        }
        storage = None
        if self.db is not None:
            stats = self.db.storage.buffer_pool.stats
            storage = {
                "objects": len(self.db.persistence),
                "names": len(self.db.names.names()),
                "resident": len(self.db.address_space),
                "buffer_hit_rate": round(stats.hit_rate(), 3),
                "wal_flushed_lsn": self.db.storage.wal.flushed_lsn,
            }
        metrics = registry.to_dict() if registry is not None else {}
        if self.stage_latency is not None:
            metrics["stage_latency"] = self.stage_latency.percentiles()
        return SystemReport(
            name=self.name,
            events=events,
            notifications=notifications,
            rules=rules,
            storage=storage,
            metrics=metrics,
        )

    def report_text(self) -> str:
        """The report rendered as an indented text block."""
        data = self.report().to_dict()
        lines = [f"Sentinel system {data.pop('name')!r}"]
        for section, content in data.items():
            lines.append(f"  {section}:")
            for key, value in content.items():
                lines.append(f"    {key}: {value}")
        return "\n".join(lines) + "\n"

    def health(self) -> dict:
        """Liveness snapshot: the monitor's ``/health`` payload.

        ``healthy`` flips to False the moment ``close()`` begins, so a
        scraper (or load balancer) sees the instance drain before the
        endpoint itself goes away. The payload shape is defined in
        :mod:`repro.reporting`, the single schema module shared with
        ``LocalEventDetector.health()`` and ``SystemReport.to_dict()``.
        """
        from repro.reporting import system_health

        return system_health(self)

    # =====================================================================
    # Live monitoring
    # =====================================================================

    def monitor(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        spans: bool = True,
        span_capacity: int = 4096,
        profile: bool = True,
        slow_ms: Optional[float] = None,
        recorder_dir: Optional[str | os.PathLike] = None,
    ) -> "MonitorServer":
        """Start (or return) the live monitoring endpoint.

        Attaches the processors the endpoints need — a
        :class:`TraceLogProcessor` for ``/spans`` (``spans=True``), a
        :class:`~repro.monitor.RuleProfiler` for ``/profile`` and the
        labelled ``/metrics`` families (``profile=True``, with
        ``slow_ms`` as the slow-rule threshold), and a
        :class:`~repro.monitor.FlightRecorder` when ``recorder_dir``
        is given — then serves on ``host:port`` (port 0 = OS-assigned;
        read ``server.port``). The server lives until :meth:`close`,
        which detaches those processors again and shuts it down last,
        so ``/health`` reports the drain.
        """
        if self._monitor is not None:
            return self._monitor
        if self._closed:
            raise InvalidTransactionState("system is closed")
        from repro.monitor import FlightRecorder, MonitorServer, RuleProfiler

        trace: Optional[TraceLogProcessor] = None
        if spans:
            trace = self.telemetry.attach(
                TraceLogProcessor(capacity=span_capacity)
            )
            self._monitor_processors.append(trace)
        profiler: Optional["RuleProfiler"] = None
        if profile:
            profiler = self.telemetry.attach(RuleProfiler(slow_ms=slow_ms))
            self._monitor_processors.append(profiler)
        if recorder_dir is not None:
            recorder: "FlightRecorder" = self.telemetry.attach(
                FlightRecorder(recorder_dir, hub=self.telemetry)
            )
            self._monitor_processors.append(recorder)
        from repro.reporting import runtime_metric_lines

        self._monitor = MonitorServer(
            registry=self.metrics.registry if self.metrics else None,
            health=self.health,
            trace=trace,
            graph=self.detector.graph_snapshot,
            profiler=profiler,
            host=host,
            port=port,
            extra_metrics=lambda: runtime_metric_lines(self),
        ).start()
        return self._monitor

    @property
    def monitor_server(self) -> Optional["MonitorServer"]:
        return self._monitor

    # =====================================================================
    # Lifecycle
    # =====================================================================

    def close(self) -> None:
        """Shut down: join detached rules, abort open work, close the DB."""
        if self._closed:
            return
        # The ingest front door closes first, while the async lane is
        # still alive: buffered items flush through the detector (and
        # may still trigger rules, including detached ones drained
        # below). Late ingest() calls raise RuntimeError.
        ingest = self._ingest
        if ingest is not None:
            ingest.close()
        with self._detached_lock:
            # From here on, detached dispatches run inline on their
            # triggering thread instead of enqueuing (see _run_detached),
            # so the drain below cannot race new submissions.
            self._closing = True
        try:
            self.wait_detached()
        except TimeoutError:
            pass  # shutdown proceeds; the queue close below re-drains
        self.detached.close()
        current = self.current()
        if current is not None and not current.finished:
            self.abort(current)
        self.detector.shutdown()
        if self.db is not None:
            self.db.close()
        from repro.core.reactive import get_current_detector

        if get_current_detector() is self.detector:
            set_current_detector(None)
        # The monitor goes down last: /health keeps answering (503,
        # status "closing") for the whole drain above.
        if self._monitor is not None:
            self._monitor.close()
            self._monitor = None
        for processor in self._monitor_processors:
            self.telemetry.detach(processor)
            processor.close()
        self._monitor_processors.clear()
        self._closed = True

    def __enter__(self) -> "Sentinel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# =========================================================================
# Streaming-ingestion internals
# =========================================================================

#: queue sentinel telling the drain task to finish and exit
_CLOSE = object()


def _ingest_entry(item) -> tuple:
    """Normalize one :meth:`Sentinel.ingest` item to ``(kind, payload)``.

    ``kind`` is ``"raise"`` (explicit events, fed to ``raise_events``)
    or ``"notify"`` (method notifications, fed to ``notify_batch``).
    Normalizing at admission keeps malformed items failing in the
    caller's frame instead of asynchronously inside the drain task.
    """
    if isinstance(item, str):
        return ("raise", item)
    if isinstance(item, tuple):
        if len(item) == 2:
            return ("raise", item)
        if len(item) in (4, 5):
            return ("notify", item)
    raise TypeError(
        "ingest() items must be an event name, a (name, params) pair, "
        f"or a 4/5-tuple notify item; got {item!r}"
    )


class _IngestState:
    """The live machinery behind :meth:`Sentinel.ingest`.

    A bounded :class:`asyncio.Queue` on the detector's async-lane loop
    buffers admitted items; one drain task batches them (up to
    ``batch`` per flush) and applies each batch on a dedicated
    single-thread flush pool, so

    * ordering is total — one flush thread, admission order preserved,
      consecutive same-kind runs applied with one ``raise_events`` /
      ``notify_batch`` call each;
    * the loop stays responsive while a flush runs — rule coroutines
      triggered *by* the flush execute on the same loop concurrently;
    * a full queue suspends ``await ingest(...)`` (backpressure)
      without blocking any thread.
    """

    def __init__(self, sentinel: "Sentinel", capacity: int, batch: int):
        if capacity < 1:
            raise ValueError(f"ingest_capacity must be >= 1, got {capacity}")
        if batch < 1:
            raise ValueError(f"ingest_batch must be >= 1, got {batch}")
        self._sentinel = sentinel
        self.batch = batch
        self.lane = sentinel.detector.scheduler.async_lane
        self.loop = self.lane.loop
        self._flush_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="sentinel-ingest"
        )
        self.accepted = 0
        self.flushed = 0
        self.flushes = 0
        self.errors: deque = deque(maxlen=64)
        self._counter_lock = threading.Lock()
        self.closed = False
        # Queue and drain task belong to the lane's loop; creating them
        # there keeps every queue operation single-loop.
        asyncio.run_coroutine_threadsafe(
            self._start(capacity), self.loop
        ).result(timeout=10.0)

    async def _start(self, capacity: int) -> None:
        self.queue: asyncio.Queue = asyncio.Queue(capacity)
        self.drain_task = asyncio.get_running_loop().create_task(
            self._drain(), name="sentinel-ingest-drain"
        )

    # -- producer side -----------------------------------------------------

    async def put(self, entry: tuple) -> None:
        if self.closed:
            raise RuntimeError("ingest is closed")
        if asyncio.get_running_loop() is self.loop:
            await self.queue.put(entry)
        else:
            # Bridge from the caller's loop: the threadsafe put parks
            # on the bounded queue for us, and wrap_future suspends the
            # caller (not its loop) until there is room.
            await asyncio.wrap_future(
                asyncio.run_coroutine_threadsafe(
                    self.queue.put(entry), self.loop
                )
            )
        with self._counter_lock:
            self.accepted += 1

    # -- drain side --------------------------------------------------------

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self.queue.get()]
            while len(batch) < self.batch:
                try:
                    batch.append(self.queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            closing = any(entry is _CLOSE for entry in batch)
            if closing:
                # Take stragglers that raced in behind the sentinel so
                # close() flushes everything that was accepted.
                while True:
                    try:
                        batch.append(self.queue.get_nowait())
                    except asyncio.QueueEmpty:
                        break
            entries = [e for e in batch if e is not _CLOSE]
            if entries:
                try:
                    await loop.run_in_executor(
                        self._flush_pool, self._flush, entries
                    )
                except Exception as exc:  # noqa: BLE001 — drain survives
                    with self._counter_lock:
                        self.errors.append(f"{type(exc).__name__}: {exc}")
                else:
                    with self._counter_lock:
                        self.flushed += len(entries)
                        self.flushes += 1
            for _ in batch:
                self.queue.task_done()
            if closing:
                return

    def _flush(self, entries: list[tuple]) -> None:
        """Apply one drained batch, preserving admission order.

        Consecutive same-kind entries collapse into one detector batch
        call; a kind switch is a boundary (events must not be reordered
        across it).
        """
        detector = self._sentinel.detector
        index = 0
        while index < len(entries):
            kind = entries[index][0]
            stop = index
            while stop < len(entries) and entries[stop][0] == kind:
                stop += 1
            chunk = [entry[1] for entry in entries[index:stop]]
            if kind == "raise":
                detector.raise_events(chunk)
            else:
                detector.notify_batch(chunk)
            index = stop

    # -- barriers and lifecycle -------------------------------------------

    def flush(self, timeout: Optional[float] = 30.0) -> None:
        if threading.current_thread() is self.lane._thread:
            raise RuntimeError(
                "ingest_flush() must not be called from the ingestion "
                "loop thread (an async rule action should await instead)"
            )
        asyncio.run_coroutine_threadsafe(
            self.queue.join(), self.loop
        ).result(timeout)

    def close(self, timeout: Optional[float] = 30.0) -> None:
        if self.closed:
            return
        self.closed = True
        asyncio.run_coroutine_threadsafe(
            self.queue.put(_CLOSE), self.loop
        ).result(timeout)
        asyncio.run_coroutine_threadsafe(
            self._join_drain(), self.loop
        ).result(timeout)
        self._flush_pool.shutdown(wait=True)

    async def _join_drain(self) -> None:
        await self.drain_task

    def snapshot(self) -> dict:
        with self._counter_lock:
            accepted = self.accepted
            flushed = self.flushed
            flushes = self.flushes
            errors = len(self.errors)
        return {
            "accepted": accepted,
            "flushed": flushed,
            "flushes": flushes,
            "depth": self.queue.qsize(),
            "errors": errors,
            "capacity": self.queue.maxsize,
            "batch": self.batch,
        }
