"""The Sentinel facade: an active OODBMS.

Wires together every module of the architecture in Figure 1:

* the Open OODB substrate (optional — omit ``directory`` for a purely
  in-memory active system),
* the nested transaction manager for rule subtransactions,
* the local composite event detector with the Snoop event graph,
* the rule scheduler (serial or threaded),
* the system class's transaction events (``begin_transaction``,
  ``pre_commit_transaction``, ``commit_transaction``,
  ``abort_transaction``) signaled around every top-level transaction,
* the flush-on-commit/abort rules — real, deactivatable rules, exactly
  as the paper describes ("this is invoked as an action of a rule on
  abort and commit events. However, these can be easily modified by
  deactivating these rules if events across transaction boundaries need
  to be detected"),
* a detached-rule handler that runs DETACHED-coupled rules in their own
  thread under a fresh top-level transaction.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.clock import Clock
from repro.core.deferred import (
    ABORT_TRANSACTION,
    BEGIN_TRANSACTION,
    COMMIT_TRANSACTION,
    PRE_COMMIT_TRANSACTION,
    ensure_system_events,
)
from repro.core.detector import LocalEventDetector
from repro.core.reactive import Reactive, set_current_detector
from repro.core.rules import Rule
from repro.core.scheduler import RuleActivation, SerialExecutor, ThreadedExecutor
from repro.errors import InvalidTransactionState
from repro.oodb.database import OODBTransaction, OpenOODB
from repro.oodb.object_model import Persistent
from repro.transactions.nested import NestedTransaction, NestedTransactionManager

FLUSH_ON_COMMIT_RULE = "$flush_on_commit"
FLUSH_ON_ABORT_RULE = "$flush_on_abort"


class _SpecDocument(Persistent):
    """A stored specification-language document."""

    def __init__(self, spec_name: str, source: str):
        self.spec_name = spec_name
        self.source = source


class SentinelTransaction:
    """A top-level transaction of the active system.

    Pairs the (optional) OODB transaction with the root of a nested
    transaction tree under which all triggered rules execute.
    """

    def __init__(self, system: "Sentinel", root: NestedTransaction,
                 oodb_txn: Optional[OODBTransaction]):
        self._system = system
        self.root = root
        self.oodb = oodb_txn
        self.finished = False

    @property
    def txn_id(self) -> int:
        return self.oodb.txn_id if self.oodb is not None else self.root.txn_id

    # Object operations pass through to the OODB transaction.
    def persist(self, obj, name=None):
        return self._require_db().persist(obj, name)

    def fetch(self, oid):
        return self._require_db().fetch(oid)

    def lookup(self, name):
        return self._require_db().lookup(name)

    def save(self, obj):
        return self._require_db().save(obj)

    def mark_dirty(self, obj):
        return self._require_db().mark_dirty(obj)

    def remove(self, obj):
        return self._require_db().remove(obj)

    def extent(self, cls):
        return self._require_db().extent(cls)

    def bind(self, name, obj):
        return self._require_db().bind(name, obj)

    def unbind(self, name):
        return self._require_db().unbind(name)

    def _require_db(self) -> OODBTransaction:
        if self.oodb is None:
            raise InvalidTransactionState(
                "no database attached; open Sentinel with a directory for "
                "persistent objects"
            )
        return self.oodb

    def commit(self) -> None:
        self._system.commit(self)

    def abort(self) -> None:
        self._system.abort(self)


class Sentinel:
    """An active OODBMS instance (one application / Exodus client)."""

    def __init__(
        self,
        directory: Optional[str | os.PathLike] = None,
        clock: Optional[Clock] = None,
        executor: Optional[SerialExecutor | ThreadedExecutor] = None,
        sharing: bool = True,
        error_policy: str = "raise",
        name: str = "app",
        flush_on_boundaries: bool = True,
        pool_size: int = 128,
        activate: bool = True,
    ):
        self.name = name
        self.db: Optional[OpenOODB] = (
            OpenOODB(directory, pool_size=pool_size)
            if directory is not None
            else None
        )
        self.txns = NestedTransactionManager()
        self.detector = LocalEventDetector(
            clock=clock,
            executor=executor,
            txn_manager=self.txns,
            sharing=sharing,
            error_policy=error_policy,
            name=name,
        )
        ensure_system_events(self.detector)
        self.detector.detached_handler = self._run_detached
        self._detached_threads: list[threading.Thread] = []
        self._local = threading.local()
        self._closed = False
        if flush_on_boundaries:
            self._install_flush_rules()
        if self.db is not None:
            self.db.on_pre_commit.append(self._on_db_pre_commit)
            self.db.registry.register(_SpecDocument)
        if activate:
            self.activate()

    # -- plumbing convenience ---------------------------------------------------

    @property
    def rules(self):
        return self.detector.rules

    @property
    def graph(self):
        return self.detector.graph

    @property
    def clock(self):
        return self.detector.clock

    def activate(self) -> None:
        """Route reactive-method notifications (this thread) to us."""
        set_current_detector(self.detector)

    @contextmanager
    def active(self) -> Iterator["Sentinel"]:
        """Scoped activation for multi-application code::

            with orders_app.active():
                book.place_order("SKU-7", 5)   # notifies orders_app
        """
        from repro.core.reactive import get_current_detector

        previous = get_current_detector()
        set_current_detector(self.detector)
        try:
            yield self
        finally:
            set_current_detector(previous)

    def register_class(self, cls: type,
                       prefix: Optional[str] = None) -> dict:
        """Register a class with the active system.

        Reactive classes get primitive event nodes for their declared
        events (returned as a name -> node dict); persistent classes
        are added to the translation registry. A class may be either
        or both.
        """
        if self.db is not None and hasattr(cls, "persistent_state"):
            self.db.registry.register(cls)
        if hasattr(cls, "register_events"):
            return cls.register_events(self.detector, prefix=prefix)
        return {}

    # Event / rule definition passthroughs.
    def primitive_event(self, *args, **kwargs):
        return self.detector.primitive_event(*args, **kwargs)

    def explicit_event(self, *args, **kwargs):
        return self.detector.explicit_event(*args, **kwargs)

    def temporal_event(self, *args, **kwargs):
        return self.detector.temporal_event(*args, **kwargs)

    def event(self, name: str):
        return self.detector.event(name)

    def rule(self, *args, **kwargs) -> Rule:
        return self.detector.rule(*args, **kwargs)

    def raise_event(self, *args, **kwargs):
        return self.detector.raise_event(*args, **kwargs)

    def advance_time(self, delta: float) -> None:
        self.detector.advance_time(delta)

    # =====================================================================
    # Transactions
    # =====================================================================

    def begin(self) -> SentinelTransaction:
        """Start a top-level transaction; signals ``begin_transaction``."""
        if self.current() is not None:
            raise InvalidTransactionState(
                "a Sentinel transaction is already active on this thread"
            )
        oodb_txn = self.db.begin() if self.db is not None else None
        top_id = oodb_txn.txn_id if oodb_txn is not None else None
        root = self.txns.begin_top(label=f"{self.name}-txn", top_level_id=top_id)
        txn = SentinelTransaction(self, root, oodb_txn)
        self._local.txn = txn
        self.detector.set_current_transaction(root)
        # "The begin transaction event is always signaled at the
        # beginning of a transaction."
        self.detector.signal_system_event(BEGIN_TRANSACTION, txn.txn_id)
        return txn

    def current(self) -> Optional[SentinelTransaction]:
        return getattr(self._local, "txn", None)

    def commit(self, txn: Optional[SentinelTransaction] = None) -> None:
        """Commit: pre-commit (deferred rules), storage commit, commit
        events (graph flush), then the rule transaction tree."""
        txn = self._resolve(txn)
        if txn.oodb is not None:
            # The OODB pre-commit hook signals pre_commit_transaction,
            # which fires deferred rules before the storage commit.
            self.db.commit(txn.oodb)
        else:
            self.detector.signal_system_event(
                PRE_COMMIT_TRANSACTION, txn.txn_id
            )
        # Commit-event rules (including graph flush) run while the rule
        # transaction tree is still alive.
        self.detector.signal_system_event(COMMIT_TRANSACTION, txn.txn_id)
        txn.root.commit()
        self._finish(txn)

    def abort(self, txn: Optional[SentinelTransaction] = None) -> None:
        """Abort: storage rollback, abort events (graph flush), tree abort."""
        txn = self._resolve(txn)
        if txn.oodb is not None and txn.oodb.is_active:
            self.db.abort(txn.oodb)
        self.detector.signal_system_event(ABORT_TRANSACTION, txn.txn_id)
        txn.root.abort()
        self._finish(txn)

    def _on_db_pre_commit(self, oodb_txn: OODBTransaction) -> None:
        txn = self.current()
        if txn is not None and txn.oodb is oodb_txn:
            self.detector.signal_system_event(
                PRE_COMMIT_TRANSACTION, txn.txn_id
            )

    def _resolve(self, txn: Optional[SentinelTransaction]) -> SentinelTransaction:
        txn = txn or self.current()
        if txn is None or txn.finished:
            raise InvalidTransactionState("no active Sentinel transaction")
        return txn

    def _finish(self, txn: SentinelTransaction) -> None:
        txn.finished = True
        if self.current() is txn:
            self._local.txn = None
        self.detector.set_current_transaction(None)

    @contextmanager
    def transaction(self) -> Iterator[SentinelTransaction]:
        """Commit on success, abort on error."""
        txn = self.begin()
        try:
            yield txn
        except BaseException:
            if not txn.finished:
                self.abort(txn)
            raise
        else:
            if not txn.finished:
                self.commit(txn)

    # =====================================================================
    # System rules
    # =====================================================================

    def _install_flush_rules(self) -> None:
        """Flush the event graph when a transaction commits or aborts.

        "Currently, we provide a mechanism to flush all events generated
        by a transaction when it commits" — implemented, per the paper,
        as rules on the commit/abort events; deactivate them
        (``sentinel.rules.disable(FLUSH_ON_COMMIT_RULE)``) to let
        composite events span transactions.
        """

        def flush_action(occurrence) -> None:
            self.detector.flush()

        self.detector.rule(
            FLUSH_ON_COMMIT_RULE,
            COMMIT_TRANSACTION,
            lambda occ: True,
            flush_action,
            priority=-1_000_000,  # run after every user rule
        )
        self.detector.rule(
            FLUSH_ON_ABORT_RULE,
            ABORT_TRANSACTION,
            lambda occ: True,
            flush_action,
            priority=-1_000_000,
        )

    # =====================================================================
    # Detached rule execution
    # =====================================================================

    def _run_detached(self, activation: RuleActivation) -> None:
        """Run a DETACHED-coupled rule in its own top-level transaction.

        The paper left detached mode as future work; we provide the
        natural semantics: a separate thread, a separate transaction
        tree, no causal dependence on the triggering transaction.
        """

        def body() -> None:
            self.activate()
            root = self.txns.begin_top(label=f"detached:{activation.rule.name}")
            activation.parent_txn = root
            previous = self.detector.current_transaction()
            self.detector.set_current_transaction(root)
            try:
                self.detector.scheduler.run_one(activation)
                root.commit()
            except Exception:
                if root.state.value == "active":
                    root.abort()
                raise
            finally:
                self.detector.set_current_transaction(previous)

        thread = threading.Thread(
            target=body, name=f"detached-{activation.rule.name}", daemon=True
        )
        self._detached_threads.append(thread)
        thread.start()

    def wait_detached(self, timeout: float = 10.0) -> None:
        """Join all detached-rule threads (tests and orderly shutdown)."""
        for thread in self._detached_threads:
            thread.join(timeout)
        self._detached_threads = [
            t for t in self._detached_threads if t.is_alive()
        ]

    # =====================================================================
    # Persistent specifications (rules stored in the database)
    # =====================================================================

    SPEC_NAME_PREFIX = "$spec:"

    def store_spec(self, name: str, source: str) -> None:
        """Persist a specification document under ``name``.

        Sentinel stored rule definitions in the OODB; here the durable
        form is the specification *source* (conditions and actions are
        code, so they rebind from a namespace at load time).
        The spec is validated by parsing before it is stored.
        """
        from repro.snoop.parser import parse

        parse(source)  # reject broken specs before they hit the store
        db = self._require_db()
        document = _SpecDocument(name, source)
        with db.transaction() as txn:
            binding = self.SPEC_NAME_PREFIX + name
            if db.names.is_bound(binding):
                existing = txn.lookup(binding)
                existing.source = source
                txn.mark_dirty(existing)
            else:
                txn.persist(document, name=binding)

    def load_spec(self, name: str, namespace: Optional[dict] = None):
        """Rebuild the events and rules of a stored specification."""
        from repro.snoop.builder import build_spec

        db = self._require_db()
        with db.transaction() as txn:
            document = txn.lookup(self.SPEC_NAME_PREFIX + name)
            source = document.source
        return build_spec(source, self.detector, namespace or {})

    def stored_specs(self) -> list[str]:
        """Names of the specification documents stored in the database."""
        db = self._require_db()
        prefix = self.SPEC_NAME_PREFIX
        return sorted(
            name[len(prefix):]
            for name in db.names.names()
            if name.startswith(prefix)
        )

    def drop_spec(self, name: str) -> None:
        db = self._require_db()
        with db.transaction() as txn:
            binding = self.SPEC_NAME_PREFIX + name
            document = txn.lookup(binding)
            txn.unbind(binding)
            txn.remove(document)

    def _require_db(self) -> OpenOODB:
        if self.db is None:
            raise InvalidTransactionState(
                "persistent specifications need a database directory"
            )
        return self.db

    # =====================================================================
    # Introspection
    # =====================================================================

    def report(self) -> dict:
        """A status snapshot across every module (operations/debugging)."""
        detector = self.detector
        data = {
            "name": self.name,
            "events": {
                "nodes": len(detector.graph),
                "named": len(detector.graph.names()),
                "shared_hits": detector.graph.stats.shared_hits,
                "detections": detector.graph.stats.detections,
                "propagations": detector.graph.stats.propagations,
            },
            "notifications": {
                "received": detector.stats.notifications,
                "suppressed": detector.stats.suppressed,
                "triggers": detector.stats.triggers,
                "detached": detector.stats.detached_dispatches,
            },
            "rules": {
                "defined": len(detector.rules),
                "enabled": sum(1 for r in detector.rules.all() if r.enabled),
                "executions": detector.scheduler.stats.executions,
                "condition_rejections":
                    detector.scheduler.stats.condition_rejections,
                "failures": detector.scheduler.stats.failures,
                "max_nesting": detector.scheduler.stats.max_depth_seen,
            },
        }
        if self.db is not None:
            stats = self.db.storage.buffer_pool.stats
            data["storage"] = {
                "objects": len(self.db.persistence),
                "names": len(self.db.names.names()),
                "resident": len(self.db.address_space),
                "buffer_hit_rate": round(stats.hit_rate(), 3),
                "wal_flushed_lsn": self.db.storage.wal.flushed_lsn,
            }
        return data

    def report_text(self) -> str:
        """The report rendered as an indented text block."""
        data = self.report()
        lines = [f"Sentinel system {data.pop('name')!r}"]
        for section, content in data.items():
            lines.append(f"  {section}:")
            for key, value in content.items():
                lines.append(f"    {key}: {value}")
        return "\n".join(lines) + "\n"

    # =====================================================================
    # Lifecycle
    # =====================================================================

    def close(self) -> None:
        """Shut down: join detached rules, abort open work, close the DB."""
        if self._closed:
            return
        self.wait_detached()
        current = self.current()
        if current is not None and not current.finished:
            self.abort(current)
        self.detector.shutdown()
        if self.db is not None:
            self.db.close()
        from repro.core.reactive import get_current_detector

        if get_current_detector() is self.detector:
            set_current_detector(None)
        self._closed = True

    def __enter__(self) -> "Sentinel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
