"""The Open OODB facade: transaction bracketing plus object management.

:class:`OpenOODB` is what an application (and the Sentinel layer) talks
to. It owns the storage manager and the object-management modules and
exposes transaction bracketing with the four *system events* Sentinel
hooks: ``begin``, ``pre_commit``, ``commit``, ``abort``. In the paper
these are methods of the REACTIVE system class ("we specify an event
interface to make the methods beginTransaction and commitTransaction of
the system class generate events"); here they are hook lists the event
detector subscribes to.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from repro.errors import InvalidTransactionState
from repro.oodb.address_space import AddressSpaceManager
from repro.oodb.name_manager import NameManager
from repro.oodb.object_model import OID, ClassRegistry, Persistent
from repro.oodb.persistence import IndexJournal, PersistenceManager
from repro.storage.manager import StorageManager, StorageTransaction, TxnStatus
from repro.telemetry.hub import TelemetryHub

TxnHook = Callable[["OODBTransaction"], None]


class OODBTransaction:
    """A top-level transaction over the OODB.

    Wraps the storage transaction and tracks the dirty objects to be
    written back at commit plus the index journal used on abort.
    """

    def __init__(self, db: "OpenOODB", storage_txn: StorageTransaction):
        self._db = db
        self.storage_txn = storage_txn
        self.journal = IndexJournal()
        self._dirty: dict[OID, Persistent] = {}

    @property
    def txn_id(self) -> int:
        return self.storage_txn.txn_id

    @property
    def is_active(self) -> bool:
        return self.storage_txn.status is TxnStatus.ACTIVE

    # -- object operations (delegate to the owning database) -----------------

    def persist(self, obj: Persistent, name: Optional[str] = None) -> OID:
        return self._db.persist(self, obj, name)

    def fetch(self, oid: OID) -> Persistent:
        return self._db.fetch(self, oid)

    def lookup(self, name: str) -> Persistent:
        return self._db.lookup(self, name)

    def save(self, obj: Persistent) -> None:
        return self._db.save(self, obj)

    def mark_dirty(self, obj: Persistent) -> None:
        """Queue ``obj`` for write-back at commit."""
        if obj.oid is not None:
            self._dirty[obj.oid] = obj
            self.journal.touched_oids.add(obj.oid)

    def remove(self, obj: Persistent) -> None:
        return self._db.remove(self, obj)

    def extent(self, cls: type | str) -> list[Persistent]:
        """All persistent instances of a class (for query conditions)."""
        return self._db.extent(self, cls)

    def bind(self, name: str, obj: Persistent) -> None:
        return self._db.bind(self, name, obj)

    def unbind(self, name: str) -> None:
        return self._db.unbind(self, name)

    def commit(self) -> None:
        self._db.commit(self)

    def abort(self) -> None:
        self._db.abort(self)


class OpenOODB:
    """Passive object database: the substrate Sentinel makes active."""

    def __init__(self, directory: str | os.PathLike, pool_size: int = 128,
                 lock_timeout: float = 10.0,
                 telemetry: Optional[TelemetryHub] = None):
        self.storage = StorageManager(
            directory, pool_size=pool_size, lock_timeout=lock_timeout,
            telemetry=telemetry,
        )
        self.registry = ClassRegistry()
        self.address_space = AddressSpaceManager()
        self.names = NameManager()
        self.persistence = PersistenceManager(
            self.storage, self.registry, self.address_space, self.names
        )
        # System-event hooks (Sentinel's transaction events).
        self.on_begin: list[TxnHook] = []
        self.on_pre_commit: list[TxnHook] = []
        self.on_commit: list[TxnHook] = []
        self.on_abort: list[TxnHook] = []
        self._local = threading.local()
        self._closed = False

    # -- transactions ------------------------------------------------------------

    def begin(self) -> OODBTransaction:
        if self.current() is not None:
            raise InvalidTransactionState(
                "a top-level transaction is already active on this thread; "
                "use nested transactions for rule execution"
            )
        txn = OODBTransaction(self, self.storage.begin())
        self._local.txn = txn
        for hook in list(self.on_begin):
            hook(txn)
        return txn

    def current(self) -> Optional[OODBTransaction]:
        """The transaction active on this thread, if any."""
        return getattr(self._local, "txn", None)

    def commit(self, txn: OODBTransaction) -> None:
        txn.storage_txn.require_active()
        # Write back dirty objects before the pre-commit point so that
        # deferred rules (which run at pre-commit) see current state.
        self._flush_dirty(txn)
        for hook in list(self.on_pre_commit):
            hook(txn)
        # Rules run at pre-commit may have dirtied more objects.
        self._flush_dirty(txn)
        self.storage.commit(txn.storage_txn)
        self._clear_current(txn)
        for hook in list(self.on_commit):
            hook(txn)

    def abort(self, txn: OODBTransaction) -> None:
        txn.storage_txn.require_active()
        self.storage.abort(txn.storage_txn)
        self.persistence.rollback_indexes(txn.journal)
        txn._dirty.clear()
        self._clear_current(txn)
        for hook in list(self.on_abort):
            hook(txn)

    def _flush_dirty(self, txn: OODBTransaction) -> None:
        while txn._dirty:
            __, obj = txn._dirty.popitem()
            self.persistence.save(txn.storage_txn, txn.journal, obj)

    def _clear_current(self, txn: OODBTransaction) -> None:
        if self.current() is txn:
            self._local.txn = None

    @contextmanager
    def transaction(self) -> Iterator[OODBTransaction]:
        """``with db.transaction() as txn:`` — commit on success, abort on error."""
        txn = self.begin()
        try:
            yield txn
        except BaseException:
            if txn.is_active:
                self.abort(txn)
            raise
        else:
            if txn.is_active:
                self.commit(txn)

    # -- object operations -----------------------------------------------------------

    def persist(
        self, txn: OODBTransaction, obj: Persistent, name: Optional[str] = None
    ) -> OID:
        return self.persistence.persist(txn.storage_txn, txn.journal, obj, name)

    def fetch(self, txn: OODBTransaction, oid: OID) -> Persistent:
        obj = self.persistence.fetch(txn.storage_txn, oid)
        # Record the access: if this transaction aborts, the resident
        # copy may have been mutated in memory and must be re-faulted.
        txn.journal.touched_oids.add(oid)
        return obj

    def lookup(self, txn: OODBTransaction, name: str) -> Persistent:
        obj = self.persistence.lookup(txn.storage_txn, name)
        if obj.oid is not None:
            txn.journal.touched_oids.add(obj.oid)
        return obj

    def save(self, txn: OODBTransaction, obj: Persistent) -> None:
        self.persistence.save(txn.storage_txn, txn.journal, obj)

    def remove(self, txn: OODBTransaction, obj: Persistent) -> None:
        self.persistence.remove(txn.storage_txn, txn.journal, obj)

    def extent(self, txn: OODBTransaction, cls: type | str) -> list[Persistent]:
        class_name = cls if isinstance(cls, str) else cls.__name__
        objects = list(self.persistence.extent(txn.storage_txn, class_name))
        for obj in objects:
            if obj.oid is not None:
                txn.journal.touched_oids.add(obj.oid)
        return objects

    def bind(self, txn: OODBTransaction, name: str, obj: Persistent) -> None:
        if obj.oid is None:
            self.persist(txn, obj, name)
        else:
            self.persistence.bind(txn.storage_txn, txn.journal, name, obj.oid)

    def unbind(self, txn: OODBTransaction, name: str) -> None:
        self.persistence.unbind(txn.storage_txn, txn.journal, name)

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        current = self.current()
        if current is not None and current.is_active:
            self.abort(current)
        self.storage.close()
        self.address_space.clear()
        self._closed = True

    def __enter__(self) -> "OpenOODB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
