"""Name manager: persistent names as database entry points.

Open OODB applications reach persistent objects through names bound in
the name manager. Bindings are stored as records in the same heap as
the objects themselves (so they are transactional) with an in-memory
index for lookup; the index is journaled per transaction so aborts
restore it.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.errors import NameConflict, ObjectNotFound
from repro.oodb.object_model import OID
from repro.storage.heap import RecordId

_BINDING_MARKER = "$name_binding"


def binding_record(name: str, oid: OID) -> dict:
    return {_BINDING_MARKER: name, "oid": oid.value}


def is_binding_record(value) -> bool:
    return isinstance(value, dict) and _BINDING_MARKER in value


class NameManager:
    """In-memory name index over stored binding records."""

    def __init__(self):
        self._bindings: dict[str, tuple[OID, RecordId]] = {}
        self._lock = threading.RLock()

    def load(self, name: str, oid: OID, rid: RecordId) -> None:
        """Install a binding discovered while scanning the store."""
        with self._lock:
            self._bindings[name] = (oid, rid)

    def bind(self, name: str, oid: OID, rid: RecordId) -> None:
        with self._lock:
            if name in self._bindings:
                bound_oid, __ = self._bindings[name]
                raise NameConflict(
                    f"name {name!r} is already bound to {bound_oid}"
                )
            self._bindings[name] = (oid, rid)

    def unbind(self, name: str) -> tuple[OID, RecordId]:
        with self._lock:
            if name not in self._bindings:
                raise ObjectNotFound(f"no binding for name {name!r}")
            return self._bindings.pop(name)

    def lookup(self, name: str) -> OID:
        with self._lock:
            if name not in self._bindings:
                raise ObjectNotFound(f"no binding for name {name!r}")
            return self._bindings[name][0]

    def lookup_rid(self, name: str) -> RecordId:
        with self._lock:
            if name not in self._bindings:
                raise ObjectNotFound(f"no binding for name {name!r}")
            return self._bindings[name][1]

    def is_bound(self, name: str) -> bool:
        with self._lock:
            return name in self._bindings

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._bindings)

    def find_name(self, oid: OID) -> Optional[str]:
        """Reverse lookup: first name bound to ``oid``, if any."""
        with self._lock:
            for name, (bound, __) in self._bindings.items():
                if bound == oid:
                    return name
        return None
