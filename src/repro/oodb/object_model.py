"""Object model: OIDs, persistence-capable objects, and the class registry.

The Open OODB model makes any C++ object *persistence-capable* once its
class has been processed; objects become persistent when reachable from
a persistent name. We reproduce the essentials:

* :class:`OID` — immutable object identifier, a parameter of every
  primitive event (the paper: "we include the identification of the
  object (i.e., oid) as one of the event parameters").
* :class:`Persistent` — base class marking instances as
  persistence-capable; persistent state is the set of public, atomic
  attributes (underscore-prefixed attributes are transient).
* :class:`ClassRegistry` — maps stored class names back to Python
  classes when objects are faulted in.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Optional, Type

from repro.errors import TranslationError


@dataclass(frozen=True, order=True)
class OID:
    """Stable identity of a persistent object."""

    value: int

    def __str__(self) -> str:
        return f"oid:{self.value}"


class Persistent:
    """Base class for persistence-capable objects.

    Instances carry a private ``_oid`` (``None`` while transient).
    Attributes whose names start with ``_`` are never stored; everything
    else must be a serializer-supported value or a reference to another
    :class:`Persistent` object (stored as an OID reference).
    """

    _oid: Optional[OID] = None

    @property
    def oid(self) -> Optional[OID]:
        return self._oid

    @property
    def is_persistent(self) -> bool:
        return self._oid is not None

    def persistent_state(self) -> dict[str, Any]:
        """The attribute dict that gets stored. Override to customize."""
        return {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_")
        }

    def load_state(self, state: dict[str, Any]) -> None:
        """Install stored attributes. Override to customize."""
        for key, value in state.items():
            setattr(self, key, value)


class ClassRegistry:
    """Maps class names to Python classes for fault-in.

    Registration happens automatically the first time an instance of a
    class is made persistent; classes loaded before their instances are
    faulted in can be registered explicitly (mirroring the Open OODB
    requirement that applications link the class definitions they use).
    """

    def __init__(self):
        self._classes: dict[str, Type[Persistent]] = {}
        self._lock = threading.Lock()

    def register(self, cls: Type[Persistent], name: Optional[str] = None) -> str:
        class_name = name or cls.__name__
        with self._lock:
            existing = self._classes.get(class_name)
            if existing is not None and existing is not cls:
                raise TranslationError(
                    f"class name {class_name!r} already registered "
                    f"to {existing.__module__}.{existing.__qualname__}"
                )
            self._classes[class_name] = cls
        return class_name

    def lookup(self, class_name: str) -> Type[Persistent]:
        with self._lock:
            cls = self._classes.get(class_name)
        if cls is None:
            raise TranslationError(
                f"class {class_name!r} is not registered; import and "
                f"register it before faulting in its instances"
            )
        return cls

    def known(self, class_name: str) -> bool:
        with self._lock:
            return class_name in self._classes

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._classes)
