"""Address-space manager: the live-object cache.

Open OODB's address space manager guaranteed that within one
application a persistent object has exactly one in-memory
representation — faulting the same OID twice returns the same pointer.
We reproduce that invariant with an OID -> object cache, which is also
what makes instance-level events meaningful (the detector compares
object identity).
"""

from __future__ import annotations

import threading
from typing import Iterator, Optional

from repro.oodb.object_model import OID, Persistent


class AddressSpaceManager:
    """Cache of resident persistent objects, one per OID."""

    def __init__(self):
        self._resident: dict[OID, Persistent] = {}
        self._lock = threading.RLock()

    def lookup(self, oid: OID) -> Optional[Persistent]:
        with self._lock:
            return self._resident.get(oid)

    def install(self, oid: OID, obj: Persistent) -> Persistent:
        """Register ``obj`` as the resident copy of ``oid``.

        If another object already claims the OID (a concurrent fault-in)
        the existing one wins — one OID, one object.
        """
        with self._lock:
            existing = self._resident.get(oid)
            if existing is not None:
                return existing
            self._resident[oid] = obj
            obj._oid = oid
            return obj

    def evict(self, oid: OID) -> None:
        with self._lock:
            obj = self._resident.pop(oid, None)
            if obj is not None:
                obj._oid = None

    def clear(self) -> None:
        """Drop every resident object (session shutdown)."""
        with self._lock:
            for obj in self._resident.values():
                obj._oid = None
            self._resident.clear()

    def resident_oids(self) -> list[OID]:
        with self._lock:
            return sorted(self._resident)

    def __len__(self) -> int:
        with self._lock:
            return len(self._resident)

    def __iter__(self) -> Iterator[Persistent]:
        with self._lock:
            return iter(list(self._resident.values()))
