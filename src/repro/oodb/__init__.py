"""Open OODB substrate: the passive object manager Sentinel extends.

The Texas Instruments Open OODB Toolkit provided Sentinel's passive
half: persistent C++ objects with OIDs, a name manager, an address-space
manager (faulting/swizzling), object translation, and transaction
bracketing over Exodus. This package reproduces those modules for
Python objects:

* :mod:`repro.oodb.object_model` — OIDs, the class registry, and the
  persistence-capable object protocol.
* :mod:`repro.oodb.translation` — object state <-> stored form.
* :mod:`repro.oodb.address_space` — the live-object cache (one OID, one
  Python object per session).
* :mod:`repro.oodb.name_manager` — persistent name bindings.
* :mod:`repro.oodb.persistence` — the persistence manager.
* :mod:`repro.oodb.database` — the :class:`OpenOODB` facade with
  transaction bracketing and the system-event hooks Sentinel plugs into.
"""

from repro.oodb.object_model import OID, ClassRegistry, Persistent
from repro.oodb.address_space import AddressSpaceManager
from repro.oodb.name_manager import NameManager
from repro.oodb.persistence import PersistenceManager
from repro.oodb.database import OpenOODB, OODBTransaction

__all__ = [
    "OID",
    "ClassRegistry",
    "Persistent",
    "AddressSpaceManager",
    "NameManager",
    "PersistenceManager",
    "OpenOODB",
    "OODBTransaction",
]
