"""Persistence manager: OIDs, fault-in, and write-back.

Objects are stored one record each::

    {"$object": oid, "class": <name>, "state": {...}}

The manager keeps an OID -> record-id index (rebuilt by scanning on
open, maintained incrementally afterwards) and journals index changes
per transaction so an abort restores the in-memory view.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ObjectNotFound
from repro.oodb import translation
from repro.oodb.address_space import AddressSpaceManager
from repro.oodb.name_manager import NameManager, binding_record, is_binding_record
from repro.oodb.object_model import OID, ClassRegistry, Persistent
from repro.storage.heap import RecordId
from repro.storage.manager import StorageManager, StorageTransaction

_OBJECT_MARKER = "$object"


@dataclass
class IndexJournal:
    """Per-transaction undo journal for the in-memory indexes."""

    added_oids: list[OID] = field(default_factory=list)
    removed_oids: list[tuple[OID, RecordId]] = field(default_factory=list)
    bound_names: list[str] = field(default_factory=list)
    unbound_names: list[tuple[str, OID, RecordId]] = field(default_factory=list)
    touched_oids: set[OID] = field(default_factory=set)


class PersistenceManager:
    """Moves objects between the address space and the storage manager."""

    def __init__(
        self,
        storage: StorageManager,
        registry: ClassRegistry,
        address_space: AddressSpaceManager,
        names: NameManager,
    ):
        self._storage = storage
        self._registry = registry
        self._space = address_space
        self._names = names
        self._oid_index: dict[OID, RecordId] = {}
        self._next_oid = 1
        self._lock = threading.RLock()
        self._bootstrap()

    def _bootstrap(self) -> None:
        """Scan the store to rebuild the OID and name indexes."""
        txn = self._storage.begin()
        try:
            for rid, value in self._storage.scan(txn):
                if is_binding_record(value):
                    self._names.load(value["$name_binding"], OID(value["oid"]), rid)
                elif isinstance(value, dict) and _OBJECT_MARKER in value:
                    oid = OID(value[_OBJECT_MARKER])
                    self._oid_index[oid] = rid
                    self._next_oid = max(self._next_oid, oid.value + 1)
        finally:
            self._storage.commit(txn)

    # -- lifecycle ---------------------------------------------------------------

    def persist(
        self,
        txn: StorageTransaction,
        journal: IndexJournal,
        obj: Persistent,
        name: Optional[str] = None,
    ) -> OID:
        """Make ``obj`` persistent; optionally bind ``name`` to it."""
        if obj.is_persistent:
            oid = obj.oid
        else:
            self._registry.register(type(obj))
            with self._lock:
                oid = OID(self._next_oid)
                self._next_oid += 1
            record = translation.encode_state(obj)
            record[_OBJECT_MARKER] = oid.value
            rid = self._storage.insert(txn, record)
            with self._lock:
                self._oid_index[oid] = rid
            journal.added_oids.append(oid)
            self._space.install(oid, obj)
        if name is not None:
            self.bind(txn, journal, name, oid)
        journal.touched_oids.add(oid)
        return oid

    def fetch(self, txn: StorageTransaction, oid: OID) -> Persistent:
        """Return the resident object for ``oid``, faulting it in if needed."""
        resident = self._space.lookup(oid)
        if resident is not None:
            return resident
        with self._lock:
            rid = self._oid_index.get(oid)
        if rid is None:
            raise ObjectNotFound(str(oid))
        record = self._storage.read(txn, rid)
        obj = translation.decode_state(
            record, self._registry, resolve_ref=lambda ref: self.fetch(txn, ref)
        )
        return self._space.install(oid, obj)

    def save(
        self, txn: StorageTransaction, journal: IndexJournal, obj: Persistent
    ) -> None:
        """Write ``obj``'s current state back to the store."""
        if not obj.is_persistent:
            raise ObjectNotFound("object is transient; persist() it first")
        with self._lock:
            rid = self._oid_index.get(obj.oid)
        if rid is None:
            raise ObjectNotFound(str(obj.oid))
        record = translation.encode_state(obj)
        record[_OBJECT_MARKER] = obj.oid.value
        self._storage.update(txn, rid, record)
        journal.touched_oids.add(obj.oid)

    def remove(
        self, txn: StorageTransaction, journal: IndexJournal, obj: Persistent
    ) -> None:
        """Delete ``obj`` from the store and evict it."""
        if not obj.is_persistent:
            raise ObjectNotFound("object is transient")
        oid = obj.oid
        with self._lock:
            rid = self._oid_index.pop(oid, None)
        if rid is None:
            raise ObjectNotFound(str(oid))
        self._storage.delete(txn, rid)
        journal.removed_oids.append((oid, rid))
        journal.touched_oids.add(oid)
        self._space.evict(oid)

    def extent(self, txn: StorageTransaction, class_name: str):
        """Iterate every persistent instance of ``class_name``.

        Rule conditions are "a simple or a complex query on the current
        database state" (paper §1); the extent is the entry point for
        such queries. Scan-based: cost is proportional to the store.
        """
        for __, value in self._storage.scan(txn):
            if (
                isinstance(value, dict)
                and value.get("class") == class_name
                and _OBJECT_MARKER in value
            ):
                yield self.fetch(txn, OID(value[_OBJECT_MARKER]))

    # -- names ----------------------------------------------------------------------

    def bind(
        self, txn: StorageTransaction, journal: IndexJournal, name: str, oid: OID
    ) -> None:
        rid = self._storage.insert(txn, binding_record(name, oid))
        self._names.bind(name, oid, rid)
        journal.bound_names.append(name)

    def unbind(
        self, txn: StorageTransaction, journal: IndexJournal, name: str
    ) -> None:
        oid, rid = self._names.unbind(name)
        self._storage.delete(txn, rid)
        journal.unbound_names.append((name, oid, rid))

    def lookup(self, txn: StorageTransaction, name: str) -> Persistent:
        return self.fetch(txn, self._names.lookup(name))

    # -- abort handling --------------------------------------------------------------

    def rollback_indexes(self, journal: IndexJournal) -> None:
        """Reverse the in-memory index effects of an aborted transaction.

        Storage rollback is handled by the WAL; this keeps the OID
        index, name index, and address space coherent with it. Every
        object the transaction touched is evicted so later readers
        re-fault the committed state.
        """
        with self._lock:
            for oid in journal.added_oids:
                self._oid_index.pop(oid, None)
        for oid, rid in journal.removed_oids:
            with self._lock:
                self._oid_index[oid] = rid
        for name in journal.bound_names:
            if self._names.is_bound(name):
                self._names.unbind(name)
        for name, oid, rid in journal.unbound_names:
            self._names.load(name, oid, rid)
        for oid in journal.touched_oids:
            self._space.evict(oid)

    # -- introspection ----------------------------------------------------------------

    def known_oids(self) -> list[OID]:
        with self._lock:
            return sorted(self._oid_index)

    def __len__(self) -> int:
        with self._lock:
            return len(self._oid_index)
