"""Object translation: live objects <-> stored records.

The Open OODB "object translation" module converted between in-memory
C++ object layouts and Exodus storage objects, rewriting embedded
pointers. Here the stored form is a serializer dict::

    {"class": <class name>, "state": {attr: value | {"$ref": oid}}}

References to other :class:`Persistent` objects are stored as OID
references and resolved lazily by the persistence manager on fault-in
(our pointer swizzling).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import TranslationError
from repro.oodb.object_model import OID, ClassRegistry, Persistent

_REF_KEY = "$ref"


def encode_state(obj: Persistent) -> dict[str, Any]:
    """Build the stored form of ``obj``'s persistent state."""
    state = {}
    for key, value in obj.persistent_state().items():
        state[key] = _encode_value(key, value)
    return {"class": type(obj).__name__, "state": state}


def _encode_value(key: str, value: Any) -> Any:
    if isinstance(value, Persistent):
        if value.oid is None:
            raise TranslationError(
                f"attribute {key!r} references a transient object; "
                f"make it persistent first (no persistence-by-reachability "
                f"across a single save)"
            )
        return {_REF_KEY: value.oid.value}
    if isinstance(value, OID):
        return {_REF_KEY: value.value}
    if isinstance(value, (list, tuple)):
        return [_encode_value(key, v) for v in value]
    if isinstance(value, dict):
        if _REF_KEY in value:
            raise TranslationError(
                f"attribute {key!r} uses the reserved key {_REF_KEY!r}"
            )
        return {k: _encode_value(key, v) for k, v in value.items()}
    return value


def decode_state(
    record: dict[str, Any],
    registry: ClassRegistry,
    resolve_ref: Callable[[OID], Any],
) -> Persistent:
    """Instantiate an object from its stored form.

    ``resolve_ref`` maps an OID to a live object (typically the
    persistence manager's ``fetch``), giving lazy-by-one-level
    swizzling: referenced objects fault in when the referrer does.
    """
    if "class" not in record or "state" not in record:
        raise TranslationError(f"malformed stored object: {record!r}")
    cls = registry.lookup(record["class"])
    obj = cls.__new__(cls)  # bypass __init__: state comes from the store
    state = {
        key: _decode_value(value, resolve_ref)
        for key, value in record["state"].items()
    }
    obj.load_state(state)
    return obj


def _decode_value(value: Any, resolve_ref: Callable[[OID], Any]) -> Any:
    if isinstance(value, dict):
        if set(value) == {_REF_KEY}:
            return resolve_ref(OID(value[_REF_KEY]))
        return {k: _decode_value(v, resolve_ref) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v, resolve_ref) for v in value]
    return value
