"""The shared status-report schema.

Three views of a running active system used to assemble their payloads
independently — ``SystemReport.to_dict()`` (the ``report`` CLI),
``Sentinel.health()`` (the monitor's ``/health``), and
``LocalEventDetector.health()`` (the detector slice nested inside it).
Drift between them meant a key present in one view silently missing
from another. This module is now the single place the shapes are
defined; the three callers delegate here, and the schema tests assert
against these builders only.

Builders return plain JSON-safe dicts. Key names are part of the
public monitoring contract — scrapers and the CLI parse them — so
changes here are API changes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Optional

if TYPE_CHECKING:
    from repro.core.detector import LocalEventDetector
    from repro.core.scheduler import DetachedRuleQueue
    from repro.core.sharding import ShardedRuntime
    from repro.sentinel import Sentinel, SystemReport


# =========================================================================
# Building blocks
# =========================================================================

def shard_health(runtime: "ShardedRuntime") -> dict[str, Any]:
    """The sharded runtime's slice: count, mode, per-shard counters."""
    return {
        "count": runtime.shards,
        "sharded": runtime.active,
        "per_shard": runtime.snapshot(),
    }


def detached_queue_health(queue: "DetachedRuleQueue") -> dict[str, Any]:
    """The detached-rule queue's gauges and counters."""
    return queue.snapshot()


def telemetry_health(telemetry) -> dict[str, Any]:
    return {
        "active": telemetry.active,
        "processors": len(telemetry.processors),
        "dropped": telemetry.dropped,
    }


def faults_health() -> dict[str, Any]:
    """The fault-injection slice: armed state and injection totals."""
    from repro.faults import registry as faults
    from repro.faults.retry import retry_counters

    injected = faults.injected_counts()
    counters = retry_counters()
    return {
        "enabled": faults.ENABLED,
        "injected": sum(injected.values()),
        "points_fired": len(injected),
        "retries": sum(c["retries"] for c in counters.values()),
        "giveups": sum(c["giveups"] for c in counters.values()),
    }


# =========================================================================
# The three public payloads
# =========================================================================

def detector_health(detector: "LocalEventDetector") -> dict[str, Any]:
    """``LocalEventDetector.health()``: the detector slice of /health."""
    return {
        "name": detector.name,
        "suppressed": detector._is_suppressed(),
        "collect_mode": detector.collect_mode,
        "shards": shard_health(detector.runtime),
        "rule_errors": len(detector.scheduler.errors),
        "telemetry": telemetry_health(detector.telemetry),
    }


def system_health(system: "Sentinel") -> dict[str, Any]:
    """``Sentinel.health()``: the monitor's full /health payload."""
    if system._closed:
        status = "closed"
    elif system._closing:
        status = "closing"
    else:
        status = "ok"
    data: dict[str, Any] = {
        "healthy": status == "ok",
        "status": status,
        "name": system.name,
        "detached_backlog": system.detached.backlog(),
        "detached_queue": detached_queue_health(system.detached),
        "detector": detector_health(system.detector),
        "faults": faults_health(),
    }
    stage_latency = getattr(system, "stage_latency", None)
    if stage_latency is not None:
        # p50/p95/p99 per lifecycle stage (ingest, detect, condition,
        # action, commit, shard_hop, detached_wait, wire); stages with
        # no samples are omitted.
        data["latency"] = stage_latency.percentiles()
    for provider in tuple(getattr(system, "extra_health_providers", ())):
        # e.g. an attached SentinelServer's serving slice (address,
        # connections, draining); a broken provider must not take down
        # the health endpoint.
        try:
            data.update(provider())
        except Exception:  # noqa: BLE001
            continue
    if system.db is not None:
        wal = system.db.storage.wal
        stats = system.db.storage.buffer_pool.stats
        data["storage"] = {
            # records appended but not yet forced to disk
            "wal_flush_lag": max(0, wal.next_lsn - wal.flushed_lsn - 1),
            "wal_flushed_lsn": wal.flushed_lsn,
            "buffer_hit_rate": round(stats.hit_rate(), 4),
            "buffer_evictions": stats.evictions,
        }
    return data


def system_report_dict(report: "SystemReport") -> dict[str, Any]:
    """``SystemReport.to_dict()``: the report CLI / API payload."""
    data: dict[str, Any] = {
        "name": report.name,
        "events": dict(report.events),
        "notifications": dict(report.notifications),
        "rules": dict(report.rules),
    }
    if report.storage is not None:
        data["storage"] = dict(report.storage)
    return data


# =========================================================================
# Prometheus families for the runtime slices
# =========================================================================

def runtime_metric_lines(system: "Sentinel",
                         prefix: str = "sentinel") -> list[str]:
    """Exposition lines for the per-shard and detached-queue families.

    These are live gauges/counters read from the runtime structures at
    scrape time (not from the metrics registry), labelled by shard:
    ``<prefix>_shard_occurrences_total{shard="0"} ...`` plus the
    detached queue's depth/capacity gauges and outcome counters.
    """
    from repro.monitor.prometheus import render_gauge

    lines: list[str] = []
    shard_counters = (
        "occurrences", "detections", "cross_shard_out", "cross_shard_in",
        "lock_acquisitions", "forwarded",
    )
    rows = system.detector.runtime.snapshot()
    for metric in shard_counters:
        family = f"{prefix}_shard_{metric}_total"
        lines.append(f"# TYPE {family} counter")
        for row in rows:
            lines.append(f'{family}{{shard="{row["shard"]}"}} {row[metric]}')
    family = f"{prefix}_shard_pending"
    lines.append(f"# TYPE {family} gauge")
    for row in rows:
        lines.append(f'{family}{{shard="{row["shard"]}"}} {row["pending"]}')
    lines.extend(render_gauge(
        f"{prefix}_shards", system.detector.runtime.shards,
        help_text="Configured detection shard count",
    ))

    queue = system.detached.snapshot()
    for gauge in ("depth", "active", "capacity"):
        lines.extend(render_gauge(
            f"{prefix}_detached_queue_{gauge}", queue[gauge]
        ))
    for counter in ("submitted", "executed", "dropped", "spilled",
                    "blocked", "errors"):
        family = f"{prefix}_detached_queue_{counter}_total"
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family} {queue[counter]}")
    stage_latency = getattr(system, "stage_latency", None)
    if stage_latency is not None:
        lines.extend(stage_latency.prometheus_lines(prefix))
    lines.extend(fault_metric_lines())
    for provider in tuple(getattr(system, "extra_metric_providers", ())):
        # e.g. an attached SentinelServer's per-tenant families; a
        # broken provider must not take down the whole scrape.
        try:
            lines.extend(provider())
        except Exception:  # noqa: BLE001
            continue
    return lines


def serving_metric_lines(server, prefix: str = "sentinel") -> list[str]:
    """Exposition lines for a :class:`SentinelServer`'s tenant families.

    Per-tenant counters labelled ``{tenant="..."}``:
    ``<prefix>_tenant_events_total``, ``_batches_total``,
    ``_detections_total``, ``_quota_rejections_total``,
    ``_errors_total``; gauges ``<prefix>_tenant_rules`` /
    ``_connections``; plus the server-wide
    ``<prefix>_serving_connections`` gauge.
    """
    from repro.monitor.prometheus import escape_label, render_gauge

    lines: list[str] = []
    snapshots = [tenant.snapshot() for tenant in server.tenants.all()]
    counter_keys = (
        "events", "batches", "detections", "quota_rejections", "errors",
    )
    for key in counter_keys:
        family = f"{prefix}_tenant_{key}_total"
        lines.append(f"# TYPE {family} counter")
        for snapshot in snapshots:
            tenant = escape_label(snapshot["tenant"])
            lines.append(f'{family}{{tenant="{tenant}"}} {snapshot[key]}')
    for key in ("rules", "connections"):
        family = f"{prefix}_tenant_{key}"
        lines.append(f"# TYPE {family} gauge")
        for snapshot in snapshots:
            tenant = escape_label(snapshot["tenant"])
            lines.append(f'{family}{{tenant="{tenant}"}} {snapshot[key]}')
    lines.extend(render_gauge(
        f"{prefix}_serving_connections", server.connections(),
        help_text="Live client connections on the serving endpoint",
    ))
    return lines


def fault_metric_lines(prefix: str = "repro") -> list[str]:
    """Exposition lines for the fault-injection and retry families.

    ``repro_faults_injected_total{point=...}`` counts faults/crashes
    actually raised per site; ``repro_retries_total{site=...}`` counts
    retry attempts the bounded-backoff wrapper absorbed. Both families
    are empty (headers only) when injection has never been armed, so
    production scrapes carry two constant lines of overhead.
    """
    from repro.faults import registry as faults
    from repro.faults.retry import retry_counters

    lines: list[str] = []
    family = f"{prefix}_faults_injected_total"
    lines.append(f"# TYPE {family} counter")
    for point, count in sorted(faults.injected_counts().items()):
        lines.append(f'{family}{{point="{point}"}} {count}')
    family = f"{prefix}_retries_total"
    lines.append(f"# TYPE {family} counter")
    for site, counters in sorted(retry_counters().items()):
        lines.append(f'{family}{{site="{site}"}} {counters["retries"]}')
    return lines
