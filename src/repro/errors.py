"""Exception hierarchy for the Sentinel reproduction.

Every error raised by the library derives from :class:`SentinelError` so
applications can install a single catch-all handler around rule
execution, mirroring the error discipline of the original system where
Open OODB and Exodus errors were funneled through one reporting path.
"""

from __future__ import annotations


class SentinelError(Exception):
    """Base class for all errors raised by this library."""


class RemovedAPIError(SentinelError):
    """A call used an API that has been removed after its deprecation
    cycle (positional ``rule()`` arguments, the ``and_``/``or_``/``seq``
    builder methods). The message names the migration tool that
    rewrites old call sites."""


# ---------------------------------------------------------------------------
# Storage-layer errors (the Exodus-simulator substrate).
# ---------------------------------------------------------------------------


class StorageError(SentinelError):
    """Base class for storage-manager failures."""


class PageError(StorageError):
    """A slotted-page operation failed (overflow, bad slot, corruption)."""


class BufferError_(StorageError):
    """The buffer pool could not satisfy a request (all frames pinned)."""


class WALError(StorageError):
    """The write-ahead log is corrupt or an append/flush failed."""


class RecoveryError(StorageError):
    """Crash recovery could not be completed."""


class RecordNotFound(StorageError):
    """A record id does not name a live record."""


# ---------------------------------------------------------------------------
# Transaction-layer errors.
# ---------------------------------------------------------------------------


class TransactionError(SentinelError):
    """Base class for transaction-manager failures."""


class TransactionAborted(TransactionError):
    """The transaction was aborted (by the user, a deadlock, or a rule)."""


class DeadlockError(TransactionAborted):
    """The lock manager chose this transaction as a deadlock victim."""


class LockTimeout(TransactionError):
    """A lock request could not be granted within its timeout."""


class InvalidTransactionState(TransactionError):
    """An operation was attempted on a finished or unknown transaction."""


# ---------------------------------------------------------------------------
# OODB-layer errors (the Open OODB simulator).
# ---------------------------------------------------------------------------


class OODBError(SentinelError):
    """Base class for object-manager failures."""


class ObjectNotFound(OODBError):
    """No persistent object exists with the requested OID or name."""


class NameConflict(OODBError):
    """A persistent name is already bound to another object."""


class TranslationError(OODBError):
    """An object could not be translated to or from its stored form."""


# ---------------------------------------------------------------------------
# Event / rule errors (the Sentinel layer proper).
# ---------------------------------------------------------------------------


class EventError(SentinelError):
    """Base class for event-specification and detection failures."""


class UnknownEvent(EventError):
    """An event name was referenced before being defined."""


class DuplicateEvent(EventError):
    """An event name was defined twice in the same detector."""


class InvalidEventExpression(EventError):
    """An event expression is structurally invalid (e.g. A with 2 args)."""


class RuleError(SentinelError):
    """Base class for rule-management failures."""


class UnknownRule(RuleError):
    """A rule name was referenced before being defined."""


class DuplicateRule(RuleError):
    """A rule name was registered twice with the same rule manager."""


class RuleExecutionError(RuleError):
    """A condition or action function raised; wraps the original error."""

    def __init__(self, rule_name: str, phase: str, cause: BaseException):
        # Truncate the cause text: nested rule failures wrap each other,
        # and embedding full reprs would grow the message exponentially
        # (each level re-escapes the inner quotes).
        cause_text = repr(cause)
        if len(cause_text) > 300:
            cause_text = cause_text[:300] + "...(truncated)"
        super().__init__(f"rule {rule_name!r} failed in {phase}: {cause_text}")
        self.rule_name = rule_name
        self.phase = phase
        self.cause = cause


# ---------------------------------------------------------------------------
# Snoop language errors.
# ---------------------------------------------------------------------------


class SnoopError(SentinelError):
    """Base class for Snoop specification-language failures."""


class SnoopSyntaxError(SnoopError):
    """The Sentinel/Snoop source text failed to lex or parse."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SnoopSemanticError(SnoopError):
    """The specification parsed but is semantically invalid."""


# ---------------------------------------------------------------------------
# Global (inter-application) event detection errors.
# ---------------------------------------------------------------------------


class GlobalDetectorError(SentinelError):
    """Base class for global event detector failures."""


class UnknownApplication(GlobalDetectorError):
    """A message referenced an application id that is not registered."""


# ---------------------------------------------------------------------------
# Serving-layer errors (the multi-tenant Sentinel server and client).
# ---------------------------------------------------------------------------


class ServingError(SentinelError):
    """Base class for wire-protocol serving failures."""


class ProtocolError(ServingError):
    """A frame or request violated the wire protocol."""


class FrameTooLarge(ProtocolError):
    """A frame declared a length above the negotiated maximum."""


class ConnectionClosed(ServingError):
    """The peer closed the connection (possibly mid-frame)."""


class AuthenticationError(ServingError):
    """A hello carried an unknown tenant or a bad bearer token."""


class QuotaExceeded(ServingError):
    """A tenant exceeded its rule count or event-rate quota."""


class BatchTooLarge(QuotaExceeded):
    """A single batch exceeds the token bucket's burst capacity, so it
    can never be admitted no matter how long the client waits — the
    batch must be split (retrying cannot help)."""


class RemoteError(ServingError):
    """The server reported an error code this client does not know."""


# =========================================================================
# The error-code registry
# =========================================================================
#
# One stable numeric code per exception class, shared by the wire
# protocol (``repro.serving``) and the CLI. Codes are grouped by layer
# in blocks of ten and are append-only: a published code never changes
# meaning, so old clients can always map a code back to the nearest
# exception type they know.

ERROR_CODE_REGISTRY: dict[int, type[SentinelError]] = {
    1: SentinelError,
    2: RemovedAPIError,
    # storage (1x)
    10: StorageError,
    11: PageError,
    12: BufferError_,
    13: WALError,
    14: RecoveryError,
    15: RecordNotFound,
    # transactions (2x)
    20: TransactionError,
    21: TransactionAborted,
    22: DeadlockError,
    23: LockTimeout,
    24: InvalidTransactionState,
    # OODB (3x)
    30: OODBError,
    31: ObjectNotFound,
    32: NameConflict,
    33: TranslationError,
    # events (4x)
    40: EventError,
    41: UnknownEvent,
    42: DuplicateEvent,
    43: InvalidEventExpression,
    # rules (5x)
    50: RuleError,
    51: UnknownRule,
    52: DuplicateRule,
    53: RuleExecutionError,
    # Snoop language (6x)
    60: SnoopError,
    61: SnoopSyntaxError,
    62: SnoopSemanticError,
    # global detection (7x)
    70: GlobalDetectorError,
    71: UnknownApplication,
    # serving (8x)
    80: ServingError,
    81: ProtocolError,
    82: FrameTooLarge,
    83: ConnectionClosed,
    84: AuthenticationError,
    85: QuotaExceeded,
    86: RemoteError,
    87: BatchTooLarge,
}

_CODE_BY_CLASS: dict[type[BaseException], int] = {
    cls: code for code, cls in ERROR_CODE_REGISTRY.items()
}


def error_code(error: BaseException | type[BaseException]) -> int:
    """The stable numeric code of an exception (most-derived match).

    Unregistered :class:`SentinelError` subclasses inherit the code of
    their nearest registered ancestor, so adding a new exception type
    never breaks old peers — it just arrives as its parent until the
    registry entry ships.
    """
    cls = error if isinstance(error, type) else type(error)
    for ancestor in cls.__mro__:
        code = _CODE_BY_CLASS.get(ancestor)
        if code is not None:
            return code
    return _CODE_BY_CLASS[SentinelError]


def exception_for(code: int, message: str) -> SentinelError:
    """Rebuild the exception a wire error code names.

    Unknown codes come back as :class:`RemoteError` (the server is
    newer than this client). Classes with structured constructors
    (e.g. :class:`RuleExecutionError`) are rebuilt carrying only the
    rendered message — the *type* survives the wire, the wrapped cause
    object does not.
    """
    cls = ERROR_CODE_REGISTRY.get(code, RemoteError)
    try:
        return cls(message)
    except TypeError:
        error = cls.__new__(cls)
        Exception.__init__(error, message)
        return error


#: process exit codes (sysexits-style, kept coarse on purpose)
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2


def cli_exit_code(error: BaseException) -> int:
    """The process exit code for an error that escaped a CLI command.

    The *fine-grained* identity travels as the ``E<code>`` suffix the
    CLI prints (from :func:`error_code`); the exit code itself stays
    coarse so shell callers keep the stable 1 = library error,
    2 = usage/file error contract.
    """
    if isinstance(error, (FileNotFoundError, IsADirectoryError,
                          PermissionError, NotADirectoryError)):
        return EXIT_USAGE
    return EXIT_ERROR
