"""Exception hierarchy for the Sentinel reproduction.

Every error raised by the library derives from :class:`SentinelError` so
applications can install a single catch-all handler around rule
execution, mirroring the error discipline of the original system where
Open OODB and Exodus errors were funneled through one reporting path.
"""

from __future__ import annotations


class SentinelError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Storage-layer errors (the Exodus-simulator substrate).
# ---------------------------------------------------------------------------


class StorageError(SentinelError):
    """Base class for storage-manager failures."""


class PageError(StorageError):
    """A slotted-page operation failed (overflow, bad slot, corruption)."""


class BufferError_(StorageError):
    """The buffer pool could not satisfy a request (all frames pinned)."""


class WALError(StorageError):
    """The write-ahead log is corrupt or an append/flush failed."""


class RecoveryError(StorageError):
    """Crash recovery could not be completed."""


class RecordNotFound(StorageError):
    """A record id does not name a live record."""


# ---------------------------------------------------------------------------
# Transaction-layer errors.
# ---------------------------------------------------------------------------


class TransactionError(SentinelError):
    """Base class for transaction-manager failures."""


class TransactionAborted(TransactionError):
    """The transaction was aborted (by the user, a deadlock, or a rule)."""


class DeadlockError(TransactionAborted):
    """The lock manager chose this transaction as a deadlock victim."""


class LockTimeout(TransactionError):
    """A lock request could not be granted within its timeout."""


class InvalidTransactionState(TransactionError):
    """An operation was attempted on a finished or unknown transaction."""


# ---------------------------------------------------------------------------
# OODB-layer errors (the Open OODB simulator).
# ---------------------------------------------------------------------------


class OODBError(SentinelError):
    """Base class for object-manager failures."""


class ObjectNotFound(OODBError):
    """No persistent object exists with the requested OID or name."""


class NameConflict(OODBError):
    """A persistent name is already bound to another object."""


class TranslationError(OODBError):
    """An object could not be translated to or from its stored form."""


# ---------------------------------------------------------------------------
# Event / rule errors (the Sentinel layer proper).
# ---------------------------------------------------------------------------


class EventError(SentinelError):
    """Base class for event-specification and detection failures."""


class UnknownEvent(EventError):
    """An event name was referenced before being defined."""


class DuplicateEvent(EventError):
    """An event name was defined twice in the same detector."""


class InvalidEventExpression(EventError):
    """An event expression is structurally invalid (e.g. A with 2 args)."""


class RuleError(SentinelError):
    """Base class for rule-management failures."""


class UnknownRule(RuleError):
    """A rule name was referenced before being defined."""


class DuplicateRule(RuleError):
    """A rule name was registered twice with the same rule manager."""


class RuleExecutionError(RuleError):
    """A condition or action function raised; wraps the original error."""

    def __init__(self, rule_name: str, phase: str, cause: BaseException):
        # Truncate the cause text: nested rule failures wrap each other,
        # and embedding full reprs would grow the message exponentially
        # (each level re-escapes the inner quotes).
        cause_text = repr(cause)
        if len(cause_text) > 300:
            cause_text = cause_text[:300] + "...(truncated)"
        super().__init__(f"rule {rule_name!r} failed in {phase}: {cause_text}")
        self.rule_name = rule_name
        self.phase = phase
        self.cause = cause


# ---------------------------------------------------------------------------
# Snoop language errors.
# ---------------------------------------------------------------------------


class SnoopError(SentinelError):
    """Base class for Snoop specification-language failures."""


class SnoopSyntaxError(SnoopError):
    """The Sentinel/Snoop source text failed to lex or parse."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SnoopSemanticError(SnoopError):
    """The specification parsed but is semantically invalid."""


# ---------------------------------------------------------------------------
# Global (inter-application) event detection errors.
# ---------------------------------------------------------------------------


class GlobalDetectorError(SentinelError):
    """Base class for global event detector failures."""


class UnknownApplication(GlobalDetectorError):
    """A message referenced an application id that is not registered."""
