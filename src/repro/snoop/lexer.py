"""Tokenizer for the Sentinel specification dialect.

Line-oriented: a NEWLINE token separates declarations (so ``;`` is free
to be the Snoop sequence operator). Newlines inside parentheses or
brackets are insignificant, allowing multi-line rule specifications.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.errors import SnoopSyntaxError


class TokenType(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    NEWLINE = "newline"
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    EQUALS = "="
    CARET = "^"
    PIPE = "|"
    SEMI = ";"
    PLUS = "+"
    STAR = "*"
    DOT = "."
    COLON = ":"
    AMPAMP = "&&"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"


_SINGLE = {
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ",": TokenType.COMMA,
    "=": TokenType.EQUALS,
    "^": TokenType.CARET,
    "|": TokenType.PIPE,
    ";": TokenType.SEMI,
    "+": TokenType.PLUS,
    "*": TokenType.STAR,
    ".": TokenType.DOT,
    ":": TokenType.COLON,
}

_OPENERS = (TokenType.LPAREN, TokenType.LBRACKET)
_CLOSERS = (TokenType.RPAREN, TokenType.RBRACKET)


def tokenize(source: str) -> list[Token]:
    """Produce the token list for ``source`` (ends with EOF)."""
    tokens: list[Token] = []
    depth = 0  # paren/bracket nesting: newlines inside are insignificant

    def emit(type_: TokenType, value: str, line: int, column: int) -> None:
        nonlocal depth
        if type_ in _OPENERS:
            depth += 1
        elif type_ in _CLOSERS:
            depth = max(0, depth - 1)
        if type_ is TokenType.NEWLINE:
            if depth > 0:
                return  # line continuation inside parentheses
            if not tokens or tokens[-1].type is TokenType.NEWLINE:
                return  # collapse blank lines
        tokens.append(Token(type_, value, line, column))

    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        text = _strip_comment(raw_line)
        column = 0
        length = len(text)
        while column < length:
            ch = text[column]
            if ch in " \t\r":
                column += 1
                continue
            start = column
            if ch == '"' or ch == "'":
                value, column = _read_string(text, column, line_number)
                emit(TokenType.STRING, value, line_number, start + 1)
            elif ch.isdigit() or (
                ch in "+-" and column + 1 < length and text[column + 1].isdigit()
                and _number_context(tokens)
            ):
                value, column = _read_number(text, column)
                emit(TokenType.NUMBER, value, line_number, start + 1)
            elif ch.isalpha() or ch == "_":
                end = column
                while end < length and (text[end].isalnum() or text[end] == "_"):
                    end += 1
                emit(TokenType.IDENT, text[column:end], line_number, start + 1)
                column = end
            elif text.startswith("&&", column):
                emit(TokenType.AMPAMP, "&&", line_number, start + 1)
                column += 2
            elif ch in _SINGLE:
                emit(_SINGLE[ch], ch, line_number, start + 1)
                column += 1
            else:
                raise SnoopSyntaxError(
                    f"unexpected character {ch!r}", line_number, column + 1
                )
        emit(TokenType.NEWLINE, "\n", line_number, length + 1)
    # Trim a trailing newline so EOF follows the last real token.
    while tokens and tokens[-1].type is TokenType.NEWLINE:
        tokens.pop()
    tokens.append(Token(TokenType.EOF, "", len(source.splitlines()) + 1, 1))
    return tokens


def _strip_comment(line: str) -> str:
    """Remove ``#`` and ``//`` comments, respecting string literals."""
    in_string: str | None = None
    for i, ch in enumerate(line):
        if in_string:
            if ch == in_string:
                in_string = None
            continue
        if ch in "\"'":
            in_string = ch
        elif ch == "#":
            return line[:i]
        elif ch == "/" and line[i : i + 2] == "//":
            return line[:i]
    return line


def _read_string(text: str, column: int, line: int) -> tuple[str, int]:
    quote = text[column]
    end = column + 1
    while end < len(text) and text[end] != quote:
        end += 1
    if end >= len(text):
        raise SnoopSyntaxError("unterminated string literal", line, column + 1)
    return text[column + 1 : end], end + 1


def _read_number(text: str, column: int) -> tuple[str, int]:
    end = column
    if text[end] in "+-":
        end += 1
    seen_dot = False
    while end < len(text) and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
        if text[end] == ".":
            # Only part of the number when followed by a digit.
            if end + 1 >= len(text) or not text[end + 1].isdigit():
                break
            seen_dot = True
        end += 1
    return text[column:end], end


def _number_context(tokens: list[Token]) -> bool:
    """A leading sign is part of a number only after ',' '(' '[' or '='."""
    if not tokens:
        return False
    return tokens[-1].type in (
        TokenType.COMMA,
        TokenType.LPAREN,
        TokenType.LBRACKET,
        TokenType.EQUALS,
    )


def token_stream(source: str) -> Iterator[Token]:
    return iter(tokenize(source))
