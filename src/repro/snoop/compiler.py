"""Runtime compiler for the detection fast path (``dispatch="compiled"``).

The Snoop preprocessor of the paper compiles event expressions ahead of
time (§2); :mod:`repro.snoop.codegen` reproduces the *source-emission*
half of that pipeline. This module is the other half: a runtime
compiler that flattens the live event graph into per-notify dispatch
plans, selected with ``Sentinel(dispatch="compiled")`` /
``LocalEventDetector(dispatch="compiled")``.

What gets precomputed, at rule-registration time (lazily, on the first
signal after the graph changes):

* a **route table** ``(class_name, method_name, modifier) -> fan-out
  entries`` replacing the per-notify MRO walk + ``node.matches`` scan;
* per node, per active context, **flattened subscriber arrays**: the
  composite parents whose context counter is live, and the rules whose
  ``enabled``/context/trigger-mode checks fold down to a single
  ``occurred_at > since`` comparison;
* slotted fan-out records (``_Fan``) so the hot loop performs no
  per-event dict lookups (occurrences themselves are ``slots=True``
  dataclasses, see :mod:`repro.core.params`).

Plans are invalidated by ``EventGraph.version``, a topology stamp
bumped on node registration/naming, rule (un)subscription and context
counter edits; the engine compares one int per notify and rebuilds
lazily on mismatch.

Semantics are bit-for-bit those of the interpreted path — the replay
oracle parity suite runs both modes across all four parameter contexts
and shard counts. Whenever a feature needs the interpreted machinery
(active telemetry spans and stage-latency stamping, scheduler
listeners, ``$RULE`` meta-events, transactional rule subtransactions,
threaded executors, collect mode, detached coupling), the engine
delegates to the interpreted implementation for exactly that call, so
observability and transactional semantics are preserved unchanged.

In sharded mode (``shards > 1``) the compiled front-end performs the
route lookup and occurrence construction, then stages the occurrence on
the :class:`~repro.core.sharding.ShardedRuntime` driver exactly like
the interpreted path — shard pinning and cross-shard channels are
untouched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.core.events.primitive import ExplicitEventNode
from repro.core.params import EventModifier, PrimitiveOccurrence, atomic
from repro.core.rules import CouplingMode, TriggerMode
from repro.core.scheduler import (
    RULE_CLASS,
    RuleActivation,
    SerialExecutor,
)
from repro.errors import RuleExecutionError

if TYPE_CHECKING:
    from repro.core.detector import LocalEventDetector

_NEG_INF = float("-inf")

#: fast common-case spellings; anything else goes through
#: ``EventModifier.parse`` so error behaviour matches the interpreter
_MOD_BY_KEY: dict[Any, EventModifier] = {
    "begin": EventModifier.BEGIN,
    "end": EventModifier.END,
    EventModifier.BEGIN: EventModifier.BEGIN,
    EventModifier.END: EventModifier.END,
}


class _Fan:
    """Compiled fan-out of one primitive/explicit node.

    ``ctxs`` is a tuple of ``(ctx, parents, rules)`` triples in the
    node's active-context order; ``parents`` holds ``(parent, port)``
    pairs whose context counter was live at compile time, ``rules``
    holds ``(rule, since)`` pairs with the enabled/context/trigger-mode
    checks already folded (``since`` is ``-inf`` for PREVIOUS rules).
    """

    __slots__ = (
        "node", "event_name", "instance", "snapshot", "is_global", "ctxs",
    )

    def __init__(self, detector: "LocalEventDetector", node) -> None:
        self.node = node
        self.event_name = node.display_name
        self.instance = getattr(node, "instance", None)
        self.snapshot = bool(getattr(node, "snapshot_state", False))
        self.is_global = node.display_name in detector._global_events
        ctxs = []
        for ctx in tuple(node._context_counts):
            parents = tuple(
                (parent, port)
                for parent, port in node.event_subscribers
                if parent.context_active(ctx)
            )
            rules = tuple(
                (
                    rule,
                    rule.since
                    if rule.trigger_mode is TriggerMode.NOW
                    else _NEG_INF,
                )
                for rule in node.rule_subscribers
                if rule.enabled and rule.context is ctx
            )
            ctxs.append((ctx, parents, rules))
        self.ctxs = tuple(ctxs)


class _Plan:
    """One immutable compilation of the graph at a given version."""

    __slots__ = (
        "version", "routes", "explicit", "mro_cache", "has_rule_prims",
    )

    def __init__(self, detector: "LocalEventDetector") -> None:
        graph = detector.graph
        self.version = graph.version
        fans: dict[int, _Fan] = {}

        def fan_of(node) -> _Fan:
            fan = fans.get(id(node))
            if fan is None:
                fan = fans[id(node)] = _Fan(detector, node)
            return fan

        routes: dict[tuple, tuple] = {}
        for class_name, nodes in graph._class_index.items():
            for node in nodes:
                key = (class_name, node.method_name, node.modifier)
                routes[key] = routes.get(key, ()) + (fan_of(node),)
        self.routes = routes
        self.explicit = {
            name: fan_of(node)
            for name, node in graph._by_name.items()
            if isinstance(node, ExplicitEventNode)
        }
        #: (type(instance), class_name, method, modifier) -> fan tuple;
        #: lazily filled for instance notifies whose MRO may widen the
        #: candidate class list (inheritance property, paper §3.2.2)
        self.mro_cache: dict[tuple, tuple] = {}
        self.has_rule_prims = bool(graph._class_index.get(RULE_CLASS))

    def fans_for_instance(
        self,
        instance: Any,
        class_name: str,
        method_name: str,
        modifier: EventModifier,
    ) -> tuple:
        key = (type(instance), class_name, method_name, modifier)
        fans = self.mro_cache.get(key)
        if fans is None:
            candidates = [class_name]
            mro_names = [c.__name__ for c in type(instance).__mro__]
            if class_name in mro_names:
                candidates = mro_names
            fans = tuple(
                fan
                for candidate in candidates
                for fan in self.routes.get(
                    (candidate, method_name, modifier), ()
                )
            )
            self.mro_cache[key] = fans
        return fans


class CompiledDispatchEngine:
    """Specialized ``notify``/``raise_event`` for one detector.

    Installed by ``LocalEventDetector(dispatch="compiled")`` as instance
    attributes over the interpreted methods, so interpreted-mode
    detectors pay nothing for the feature's existence.
    """

    __slots__ = (
        "_det", "_plan", "_serial", "_stats", "_local", "_clock",
        "_graph", "_runtime", "_ingest_lock", "_telemetry", "_scheduler",
        "_occ_listeners", "_trig_listeners",
    )

    def __init__(self, detector: "LocalEventDetector") -> None:
        self._det = detector
        self._plan: Optional[_Plan] = None
        self._serial = isinstance(detector.scheduler.executor, SerialExecutor)
        # Stable per-detector references, bound once so the hot path
        # performs no repeated attribute chains. All of these are
        # created in LocalEventDetector.__init__ and never reassigned
        # (the listener lists mutate in place).
        self._stats = detector.stats
        self._local = detector._local
        self._clock = detector.clock
        self._graph = detector.graph
        self._runtime = detector.runtime
        self._ingest_lock = (
            None if detector.runtime.active else detector.runtime.ingest_lock
        )
        self._telemetry = detector.telemetry
        self._scheduler = detector.scheduler
        self._occ_listeners = detector.occurrence_listeners
        self._trig_listeners = detector.trigger_listeners

    # -- plan management ---------------------------------------------------

    def plan(self) -> _Plan:
        """The current plan, recompiled if the graph changed."""
        plan = self._plan
        if plan is None or plan.version != self._det.graph.version:
            plan = self._plan = _Plan(self._det)
        return plan

    # -- the compiled notify hot path --------------------------------------

    def notify(
        self,
        instance: Any,
        class_name: str,
        method_name: str,
        modifier: "EventModifier | str",
        arguments: "dict[str, Any] | tuple" = (),
        txn_id: Optional[int] = None,
    ) -> list[PrimitiveOccurrence]:
        if self._telemetry.active:
            # Traced mode keeps the interpreted path so every span,
            # stage-latency stamp and trace id is emitted identically.
            from repro.core.detector import LocalEventDetector

            return LocalEventDetector.notify(
                self._det, instance, class_name, method_name, modifier,
                arguments, txn_id,
            )
        stats = self._stats
        stats.notifications += 1
        dlocal = self._local
        if getattr(dlocal, "suppressed", False):
            stats.suppressed += 1
            return []
        mod = _MOD_BY_KEY.get(modifier)
        if mod is None:
            mod = EventModifier.parse(modifier)
        plan = self._plan
        if plan is None or plan.version != self._graph.version:
            plan = self._plan = _Plan(self._det)
        if instance is None:
            fans = plan.routes.get((class_name, method_name, mod), ())
            identity = None
        else:
            fans = plan.fans_for_instance(
                instance, class_name, method_name, mod
            )
            identity = getattr(instance, "oid", None)
            if identity is None:
                identity = instance
        if isinstance(arguments, dict):
            arguments = tuple(arguments.items())
        arguments = tuple((k, atomic(v)) for k, v in arguments)
        current_txn = getattr(dlocal, "txn", None)
        if txn_id is None:
            txn_id = (
                current_txn.top_level_id if current_txn is not None else None
            )
        occurrences: list[PrimitiveOccurrence] = []
        frame: list[RuleActivation] = []
        frames = getattr(dlocal, "frames", None)
        if frames is None:
            frames = dlocal.frames = []
        frames.append(frame)
        lock = self._ingest_lock
        sharded = lock is None
        if not sharded:
            lock.acquire()
        try:
            # The clock ticks exactly once per notify, matched or not —
            # replay parity depends on identical timestamps.
            at = self._clock.tick()
            if fans:
                graph = self._graph
                gstats = graph.stats
                observers = graph.observers
                occ_listeners = self._occ_listeners
                trig_listeners = self._trig_listeners
                det = self._det
                for fan in fans:
                    if fan.instance is not None \
                            and fan.instance != instance:
                        continue
                    occurrence = PrimitiveOccurrence(
                        event_name=fan.event_name,
                        at=at,
                        class_name=class_name,
                        instance=identity,
                        method_name=method_name,
                        modifier=mod,
                        arguments=arguments,
                        txn_id=txn_id,
                        state_snapshot=(
                            det._snapshot(fan.node, instance)
                            if fan.snapshot else None
                        ),
                    )
                    occurrences.append(occurrence)
                    if occ_listeners:
                        for listener in occ_listeners:
                            listener(occurrence)
                    if sharded:
                        self._runtime.submit_occur(fan.node, occurrence)
                    else:
                        # Single-shard fan-out over the folded arrays.
                        counts = fan.node.detections_by_context
                        for ctx, parents, rules in fan.ctxs:
                            gstats.detections += 1
                            counts[ctx] = counts.get(ctx, 0) + 1
                            if observers:
                                graph.notify_observers(
                                    fan.node, occurrence, ctx
                                )
                            for parent, port in parents:
                                gstats.propagations += 1
                                # Composite operators keep their
                                # interpreted on_child; rules they
                                # trigger land in this frame via the
                                # graph emitter, preserving interpreted
                                # activation order.
                                parent.on_child(port, occurrence, ctx)
                            for rule, since in rules:
                                if at > since:
                                    rule.triggered_count += 1
                                    stats.triggers += 1
                                    if trig_listeners:
                                        for listener in trig_listeners:
                                            listener(rule, occurrence)
                                    frame.append(RuleActivation(
                                        rule, occurrence,
                                        parent_txn=current_txn,
                                    ))
                    if fan.is_global:
                        det._forward_global(occurrence)
            if sharded:
                self._runtime.run()
        finally:
            if not sharded:
                lock.release()
            frames.pop()
        if frame:
            self._run_frame(self._det, plan, frame)
        return occurrences

    def _fanout(
        self,
        det: "LocalEventDetector",
        fan: _Fan,
        occurrence: PrimitiveOccurrence,
        at: float,
        frame: list,
    ) -> None:
        """Single-shard fan-out with the folded subscriber arrays
        (shared by ``raise_event``; ``notify`` inlines the same loop)."""
        graph = self._graph
        gstats = graph.stats
        observers = graph.observers
        trigger_listeners = self._trig_listeners
        node = fan.node
        counts = node.detections_by_context
        dstats = self._stats
        dlocal = self._local
        for ctx, parents, rules in fan.ctxs:
            gstats.detections += 1
            counts[ctx] = counts.get(ctx, 0) + 1
            if observers:
                graph.notify_observers(node, occurrence, ctx)
            for parent, port in parents:
                gstats.propagations += 1
                parent.on_child(port, occurrence, ctx)
            for rule, since in rules:
                if at > since:
                    rule.triggered_count += 1
                    dstats.triggers += 1
                    if trigger_listeners:
                        for listener in trigger_listeners:
                            listener(rule, occurrence)
                    frame.append(RuleActivation(
                        rule, occurrence,
                        parent_txn=getattr(dlocal, "txn", None),
                    ))

    # -- compiled explicit events ------------------------------------------

    def raise_event(self, name: str, txn_id: Optional[int] = None,
                    **params: Any) -> PrimitiveOccurrence:
        det = self._det
        fan = None
        if not det.telemetry.active:
            plan = self._plan
            if plan is None or plan.version != det.graph.version:
                plan = self._plan = _Plan(det)
            fan = plan.explicit.get(name)
        if fan is None:
            # Unknown names, non-explicit nodes and traced mode all take
            # the interpreted path (identical errors and spans).
            from repro.core.detector import LocalEventDetector

            return LocalEventDetector.raise_event(
                det, name, txn_id=txn_id, **params
            )
        dlocal = det._local
        if txn_id is None:
            current = getattr(dlocal, "txn", None)
            txn_id = current.top_level_id if current is not None else None
        frame: list[RuleActivation] = []
        frames = getattr(dlocal, "frames", None)
        if frames is None:
            frames = dlocal.frames = []
        frames.append(frame)
        runtime = det.runtime
        sharded = runtime.active
        lock = None if sharded else runtime.ingest_lock
        if lock is not None:
            lock.acquire()
        try:
            at = det.clock.tick()
            occurrence = PrimitiveOccurrence(
                event_name=name,
                at=at,
                class_name="$EXPLICIT",
                arguments=tuple(
                    (k, atomic(v)) for k, v in params.items()
                ),
                txn_id=txn_id,
            )
            listeners = det.occurrence_listeners
            if listeners:
                for listener in listeners:
                    listener(occurrence)
            if sharded:
                runtime.submit_occur(fan.node, occurrence)
                runtime.run()
            else:
                self._fanout(det, fan, occurrence, at, frame)
            if fan.is_global:
                det._forward_global(occurrence)
        finally:
            if lock is not None:
                lock.release()
            frames.pop()
        if frame:
            self._run_frame(det, plan, frame)
        return occurrence

    # -- compiled rule execution -------------------------------------------

    def _run_frame(self, det: "LocalEventDetector", plan: _Plan,
                   frame: list) -> None:
        """Run a frame's activations, fast when nothing exotic applies."""
        if det.collect_mode:
            det.collected.extend(frame)
            return
        scheduler = det.scheduler
        if (
            plan.has_rule_prims          # $RULE meta-events must signal
            or scheduler.listeners       # debugger hooks
            or not self._serial          # threaded executor semantics
            or det.telemetry.active      # spans (cascade turned it on)
        ):
            det._run_frame(frame)
            return
        txn_manager = scheduler.txn_manager
        for activation in frame:
            if (
                activation.rule.coupling is CouplingMode.DETACHED
                or activation.rule.executor == "async"
                or (
                    txn_manager is not None
                    and activation.parent_txn is not None
                )
            ):
                # Detached queueing, the asyncio lane (_run_rule_fast
                # would leave the coroutine action un-awaited) and rule
                # subtransactions keep their interpreted machinery.
                det._run_frame(frame)
                return
        stats = scheduler.stats
        stats.batches += 1
        if len(frame) > 1:
            rank = det.priorities.rank
            frame.sort(key=lambda a: -rank(a.rule.priority))
        for activation in frame:
            self._run_rule_fast(det, scheduler, activation)

    def _run_rule_fast(self, det: "LocalEventDetector", scheduler,
                       activation: RuleActivation) -> None:
        """Inline cond/act execution mirroring ``RuleScheduler._run_one``
        for the no-txn / no-listener / no-span case."""
        rule = activation.rule
        slocal = scheduler._local
        depth = getattr(slocal, "depth", 0) + 1
        if depth > scheduler.MAX_DEPTH:
            scheduler.run_one(activation)  # canonical nesting error
            return
        stats = scheduler.stats
        if stats.max_depth_seen < depth:
            stats.max_depth_seen = depth
        dlocal = det._local
        previous_txn = getattr(dlocal, "txn", None)
        previous_rule = getattr(slocal, "rule", None)
        occurrence = activation.occurrence
        dlocal.txn = activation.parent_txn
        slocal.depth = depth
        slocal.rule = rule
        try:
            previous_suppressed = getattr(dlocal, "suppressed", False)
            dlocal.suppressed = True
            try:
                satisfied = bool(rule.condition(occurrence))
            except Exception as exc:
                raise RuleExecutionError(
                    rule.name, "condition", exc
                ) from exc
            finally:
                dlocal.suppressed = previous_suppressed
            if satisfied:
                try:
                    rule.action(occurrence)
                except RuleExecutionError:
                    raise  # a nested rule failed; keep the original report
                except Exception as exc:
                    raise RuleExecutionError(
                        rule.name, "action", exc
                    ) from exc
                rule.executed_count += 1
                stats.executions += 1
            else:
                stats.condition_rejections += 1
        except Exception as exc:
            error = exc if isinstance(exc, RuleExecutionError) else (
                RuleExecutionError(rule.name, "execution", exc)
            )
            stats.failures += 1
            scheduler.errors.append(error)
            if scheduler.error_policy == "raise":
                raise error from exc
        finally:
            slocal.depth = depth - 1
            slocal.rule = previous_rule
            dlocal.txn = previous_txn
