"""Snoop / Sentinel specification language (the pre-processor).

The paper's pre-processor translates high-level event/rule
specifications — written inside class definitions or in application
code — into calls that build the event graph and register rules
(§3.1-3.2). This package reproduces the pipeline:

* :mod:`repro.snoop.lexer` — tokenizer for the line-oriented dialect.
* :mod:`repro.snoop.ast` — the abstract syntax tree.
* :mod:`repro.snoop.parser` — recursive-descent parser.
* :mod:`repro.snoop.builder` — AST -> live event graph + rules
  (including instrumenting Python classes with wrapper methods, the
  post-processor's job).
* :mod:`repro.snoop.codegen` — AST -> generated Python source, the
  moral equivalent of the C++ the original pre-processor emitted.

Dialect (one declaration per line; ``#`` or ``//`` start comments)::

    class STOCK : REACTIVE {
        event end(e1) int sell_stock(int qty)
        event begin(e2) && end(e3) void set_price(float price)
        event e4 = e1 ^ e2
        rule R1(e4, cond1, action1, CUMULATIVE, DEFERRED, 10, NOW)
    }

    event any_stk_price("any_stk_price", "STOCK", "begin", "void set_price(float price)")
    event set_IBM_price("set_IBM_price", IBM, "begin", "void set_price(float price)")
    rule R2(any_stk_price, checksalary, resetsalary, CHRONICLE, DEFERRED)

Event operators: ``^`` (AND), ``|`` (OR), ``;`` (SEQ), ``not(E2)[E1, E3]``,
``A(E1, E2, E3)``, ``A*(E1, E2, E3)``, ``P(E1, t, E3)``, ``P*(E1, t, E3)``,
``plus(E1, t)`` / ``E1 + t``.
"""

from repro.snoop.parser import parse
from repro.snoop.builder import SpecBuilder, build_spec
from repro.snoop.codegen import generate

__all__ = ["parse", "SpecBuilder", "build_spec", "generate"]
