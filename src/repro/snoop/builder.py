"""Build a live event graph and rule set from a parsed specification.

This is the runtime half of the pre-processor: where the original
emitted C++ that was then compiled into the application, we interpret
the AST directly against a detector — creating primitive event nodes,
operator nodes, and rules — and *instrument* the application's Python
classes with wrapper methods (the Sentinel post-processor's job of
inserting ``Notify`` calls into wrappers).

Naming follows the paper's generated code: events declared in
``class STOCK`` become graph nodes ``STOCK_e1``, ``STOCK_e2``, ...;
references inside the class body resolve against that prefix first.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.detector import LocalEventDetector
from repro.core.reactive import EventDeclaration, _make_wrapper
from repro.core.rules import Rule
from repro.errors import SnoopSemanticError
from repro.snoop import ast
from repro.snoop.parser import parse


def instrument_class(cls: type, method_name: str,
                     begin_name: Optional[str] = None,
                     end_name: Optional[str] = None) -> None:
    """Wrap ``cls.method_name`` with event notification (post-processor).

    Idempotent: an already-wrapped method is left alone (its earlier
    wrapper already notifies both variants as declared).
    """
    original = getattr(cls, method_name, None)
    if original is None:
        raise SnoopSemanticError(
            f"class {cls.__name__} has no method {method_name!r}"
        )
    if getattr(original, "__sentinel_wrapped__", False):
        return
    declaration = EventDeclaration(
        method_name=method_name, begin_name=begin_name, end_name=end_name
    )
    setattr(cls, f"user_{method_name}", original)
    setattr(cls, method_name, _make_wrapper(original, declaration))


class SpecBuilder:
    """Interprets a :class:`~repro.snoop.ast.Spec` against a detector."""

    def __init__(self, detector: LocalEventDetector,
                 namespace: Optional[dict[str, Any]] = None):
        self._detector = detector
        self._namespace = namespace or {}
        self.rules: dict[str, Rule] = {}
        self.events: dict[str, Any] = {}

    def build(self, spec: ast.Spec | str) -> "SpecBuilder":
        if isinstance(spec, str):
            spec = parse(spec)
        for class_def in spec.classes:
            self._build_class(class_def)
        for app_event in spec.app_events:
            self._build_app_event(app_event)
        for event_def in spec.event_defs:
            self._build_event_def(event_def, class_name=None)
        for rule_def in spec.rules:
            self._build_rule(rule_def, class_name=None)
        return self

    # -- classes ---------------------------------------------------------------

    def _build_class(self, class_def: ast.ClassDef) -> None:
        cls = self._namespace.get(class_def.name)
        for decl in class_def.method_events:
            if cls is not None:
                instrument_class(
                    cls, decl.method.name,
                    begin_name=decl.begin_name, end_name=decl.end_name,
                )
            for event_name, modifier in (
                (decl.begin_name, "begin"), (decl.end_name, "end")
            ):
                if event_name is None:
                    continue
                node_name = f"{class_def.name}_{event_name}"
                node = self._detector.primitive_event(
                    node_name, class_def.name, modifier, decl.method.name
                )
                self.events[node_name] = node
        for event_def in class_def.event_defs:
            self._build_event_def(event_def, class_name=class_def.name)
        for rule_def in class_def.rules:
            self._build_rule(rule_def, class_name=class_def.name)

    # -- application-level primitive events ------------------------------------------

    def _build_app_event(self, decl: ast.AppEventDecl) -> None:
        if decl.target_is_instance:
            target = self._namespace.get(decl.target)
            if target is None:
                raise SnoopSemanticError(
                    f"instance {decl.target!r} for event {decl.name!r} is "
                    f"not in the build namespace"
                )
        else:
            target = decl.target
        node = self._detector.primitive_event(
            decl.name, target, decl.modifier, decl.method.name
        )
        self.events[decl.name] = node

    # -- event definitions ---------------------------------------------------------------

    def _build_event_def(self, event_def: ast.EventDef,
                         class_name: Optional[str]) -> None:
        node_name = (
            f"{class_name}_{event_def.name}" if class_name else event_def.name
        )
        node = self._build_expr(event_def.expr, class_name)
        self._detector.define(node_name, node)
        self.events[node_name] = node

    def _build_expr(self, expr: ast.EventExpr,
                    class_name: Optional[str]):
        graph = self._detector.graph
        if isinstance(expr, ast.EventRef):
            return self._resolve_ref(expr, class_name)
        if isinstance(expr, ast.AndExpr):
            return graph.and_(
                self._build_expr(expr.left, class_name),
                self._build_expr(expr.right, class_name),
            )
        if isinstance(expr, ast.OrExpr):
            return graph.or_(
                self._build_expr(expr.left, class_name),
                self._build_expr(expr.right, class_name),
            )
        if isinstance(expr, ast.SeqExpr):
            return graph.seq(
                self._build_expr(expr.left, class_name),
                self._build_expr(expr.right, class_name),
            )
        if isinstance(expr, ast.NotExpr):
            return graph.not_(
                self._build_expr(expr.initiator, class_name),
                self._build_expr(expr.forbidden, class_name),
                self._build_expr(expr.terminator, class_name),
            )
        if isinstance(expr, ast.AperiodicExpr):
            build = graph.aperiodic_star if expr.cumulative else graph.aperiodic
            return build(
                self._build_expr(expr.initiator, class_name),
                self._build_expr(expr.middle, class_name),
                self._build_expr(expr.terminator, class_name),
            )
        if isinstance(expr, ast.PeriodicExpr):
            build = (
                graph.periodic_star if expr.cumulative else graph.periodic
            )
            return build(
                self._build_expr(expr.initiator, class_name),
                expr.period,
                self._build_expr(expr.terminator, class_name),
            )
        if isinstance(expr, ast.PlusExpr):
            return graph.plus(
                self._build_expr(expr.initiator, class_name), expr.delay
            )
        raise SnoopSemanticError(f"unknown expression node {expr!r}")

    def _resolve_ref(self, ref: ast.EventRef, class_name: Optional[str]):
        graph = self._detector.graph
        candidates = []
        if ref.class_name:
            # Class-scoped (STOCK.e1 -> STOCK_e1) or a literal dotted
            # name — the global detector names imported events
            # "app.event", so specs over global events resolve too.
            candidates.append(ref.resolved_name)
            candidates.append(f"{ref.class_name}.{ref.name}")
        else:
            if class_name:
                candidates.append(f"{class_name}_{ref.name}")
            candidates.append(ref.name)
        for candidate in candidates:
            if graph.has(candidate):
                return graph.get(candidate)
        raise SnoopSemanticError(
            f"event {ref.name!r} is not defined "
            f"(searched: {', '.join(candidates)})"
        )

    # -- rules --------------------------------------------------------------------------

    def _build_rule(self, rule_def: ast.RuleDef,
                    class_name: Optional[str]) -> None:
        event = self._resolve_ref(
            ast.EventRef(rule_def.event), class_name
        )
        condition = self._resolve_function(rule_def.condition)
        action = self._resolve_function(rule_def.action)
        kwargs: dict[str, Any] = {}
        if rule_def.context:
            kwargs["context"] = rule_def.context
        if rule_def.coupling:
            kwargs["coupling"] = rule_def.coupling
        if rule_def.priority is not None:
            kwargs["priority"] = rule_def.priority
        if rule_def.trigger_mode:
            kwargs["trigger_mode"] = rule_def.trigger_mode
        rule = self._detector.rule(
            rule_def.name, event, condition=condition, action=action, **kwargs
        )
        self.rules[rule_def.name] = rule

    def _resolve_function(self, name: str) -> Callable:
        fn = self._namespace.get(name)
        if fn is None or not callable(fn):
            raise SnoopSemanticError(
                f"condition/action {name!r} is not a callable in the "
                f"build namespace"
            )
        return fn


def build_spec(
    source: str,
    detector: LocalEventDetector,
    namespace: Optional[dict[str, Any]] = None,
) -> SpecBuilder:
    """Parse ``source`` and build it against ``detector``."""
    return SpecBuilder(detector, namespace).build(source)
