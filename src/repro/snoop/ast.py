"""Abstract syntax tree for the Sentinel specification language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

# ---------------------------------------------------------------------------
# Event expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EventRef:
    """A named event, optionally class-qualified (``STOCK.e1``)."""

    name: str
    class_name: Optional[str] = None

    @property
    def resolved_name(self) -> str:
        if self.class_name:
            return f"{self.class_name}_{self.name}"
        return self.name


@dataclass(frozen=True)
class AndExpr:
    left: "EventExpr"
    right: "EventExpr"


@dataclass(frozen=True)
class OrExpr:
    left: "EventExpr"
    right: "EventExpr"


@dataclass(frozen=True)
class SeqExpr:
    left: "EventExpr"
    right: "EventExpr"


@dataclass(frozen=True)
class NotExpr:
    """``not(E2)[E1, E3]`` — forbidden, initiator, terminator."""

    forbidden: "EventExpr"
    initiator: "EventExpr"
    terminator: "EventExpr"


@dataclass(frozen=True)
class AperiodicExpr:
    initiator: "EventExpr"
    middle: "EventExpr"
    terminator: "EventExpr"
    cumulative: bool = False  # True for A*


@dataclass(frozen=True)
class PeriodicExpr:
    initiator: "EventExpr"
    period: float
    terminator: "EventExpr"
    cumulative: bool = False  # True for P*


@dataclass(frozen=True)
class PlusExpr:
    initiator: "EventExpr"
    delay: float


EventExpr = Union[
    EventRef, AndExpr, OrExpr, SeqExpr, NotExpr,
    AperiodicExpr, PeriodicExpr, PlusExpr,
]


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MethodSignature:
    """A loosely parsed C++-style method signature."""

    return_type: str
    name: str
    parameters: tuple[str, ...]  # parameter names
    text: str  # the original signature text

    def __str__(self) -> str:
        return self.text


@dataclass(frozen=True)
class MethodEventDecl:
    """``event begin(e2) && end(e3) void set_price(float price)``."""

    begin_name: Optional[str]
    end_name: Optional[str]
    method: MethodSignature


@dataclass(frozen=True)
class EventDef:
    """``event e4 = e1 ^ e2``."""

    name: str
    expr: EventExpr


@dataclass(frozen=True)
class AppEventDecl:
    """Application-level primitive event declaration.

    ``event any_stk_price("any_stk_price", "Stock", "begin", "void
    set_price(float price)")`` — a string target is a class-level
    event, an identifier target names an instance in the build
    namespace (instance-level event).
    """

    name: str
    target: str
    target_is_instance: bool
    modifier: str
    method: MethodSignature


@dataclass(frozen=True)
class RuleDef:
    """``rule R1(e4, cond1, action1 [, ctx [, coupling [, prio [, trig]]]])``."""

    name: str
    event: str
    condition: str
    action: str
    context: Optional[str] = None
    coupling: Optional[str] = None
    priority: Optional[int] = None
    trigger_mode: Optional[str] = None


@dataclass(frozen=True)
class ClassDef:
    """A reactive class definition with its event interface and rules."""

    name: str
    base: Optional[str]
    method_events: tuple[MethodEventDecl, ...] = ()
    event_defs: tuple[EventDef, ...] = ()
    rules: tuple[RuleDef, ...] = ()


@dataclass
class Spec:
    """A complete parsed specification."""

    classes: list[ClassDef] = field(default_factory=list)
    app_events: list[AppEventDecl] = field(default_factory=list)
    event_defs: list[EventDef] = field(default_factory=list)
    rules: list[RuleDef] = field(default_factory=list)
