"""Recursive-descent parser for the Sentinel specification dialect.

Operator precedence, loosest to tightest: ``|`` (OR), ``^`` (AND),
``;`` (SEQ), then postfix ``+ t`` (PLUS) and the function-style
operators (``A``, ``A*``, ``P``, ``P*``, ``not``, ``plus``).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SnoopSyntaxError
from repro.snoop import ast
from repro.snoop.lexer import Token, TokenType, tokenize


def parse(source: str) -> ast.Spec:
    """Parse a specification text into an AST."""
    return _Parser(tokenize(source)).parse_spec()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, type_: TokenType, value: Optional[str] = None) -> bool:
        token = self._peek()
        if token.type is not type_:
            return False
        return value is None or token.value == value

    def _match(self, type_: TokenType, value: Optional[str] = None) -> Optional[Token]:
        if self._check(type_, value):
            return self._advance()
        return None

    def _expect(self, type_: TokenType, what: str) -> Token:
        token = self._peek()
        if token.type is not type_:
            raise SnoopSyntaxError(
                f"expected {what}, found {token.value!r}", token.line,
                token.column,
            )
        return self._advance()

    def _skip_newlines(self) -> None:
        while self._match(TokenType.NEWLINE):
            pass

    def _end_statement(self) -> None:
        token = self._peek()
        if token.type in (TokenType.NEWLINE, TokenType.EOF, TokenType.RBRACE):
            self._match(TokenType.NEWLINE)
            return
        raise SnoopSyntaxError(
            f"unexpected {token.value!r} at end of declaration",
            token.line, token.column,
        )

    # -- top level -----------------------------------------------------------------

    def parse_spec(self) -> ast.Spec:
        spec = ast.Spec()
        self._skip_newlines()
        while not self._check(TokenType.EOF):
            keyword = self._peek()
            if self._check(TokenType.IDENT, "class"):
                spec.classes.append(self._parse_class())
            elif self._check(TokenType.IDENT, "event"):
                item = self._parse_event_statement(in_class=None)
                if isinstance(item, ast.EventDef):
                    spec.event_defs.append(item)
                else:
                    spec.app_events.append(item)
            elif self._check(TokenType.IDENT, "rule"):
                spec.rules.append(self._parse_rule())
            else:
                raise SnoopSyntaxError(
                    f"expected 'class', 'event', or 'rule', found "
                    f"{keyword.value!r}", keyword.line, keyword.column,
                )
            self._skip_newlines()
        return spec

    # -- class definitions ------------------------------------------------------------

    def _parse_class(self) -> ast.ClassDef:
        self._expect(TokenType.IDENT, "'class'")
        name = self._expect(TokenType.IDENT, "class name").value
        base = None
        if self._match(TokenType.COLON):
            self._match(TokenType.IDENT, "public")  # optional access spec
            base = self._expect(TokenType.IDENT, "base class name").value
        self._expect(TokenType.LBRACE, "'{'")
        self._skip_newlines()
        method_events: list[ast.MethodEventDecl] = []
        event_defs: list[ast.EventDef] = []
        rules: list[ast.RuleDef] = []
        while not self._check(TokenType.RBRACE):
            if self._check(TokenType.EOF):
                raise SnoopSyntaxError(
                    f"unterminated class {name!r}", self._peek().line, 0
                )
            if self._check(TokenType.IDENT, "event"):
                item = self._parse_event_statement(in_class=name)
                if isinstance(item, ast.EventDef):
                    event_defs.append(item)
                elif isinstance(item, ast.MethodEventDecl):
                    method_events.append(item)
                else:
                    raise SnoopSyntaxError(
                        "application-style event declarations are not "
                        "allowed inside a class", self._peek().line, 0,
                    )
            elif self._check(TokenType.IDENT, "rule"):
                rules.append(self._parse_rule())
            else:
                token = self._peek()
                raise SnoopSyntaxError(
                    f"expected 'event' or 'rule' in class body, found "
                    f"{token.value!r}", token.line, token.column,
                )
            self._skip_newlines()
        self._expect(TokenType.RBRACE, "'}'")
        self._match(TokenType.NEWLINE)
        return ast.ClassDef(
            name=name,
            base=base,
            method_events=tuple(method_events),
            event_defs=tuple(event_defs),
            rules=tuple(rules),
        )

    # -- event statements ----------------------------------------------------------------

    def _parse_event_statement(self, in_class: Optional[str]):
        self._expect(TokenType.IDENT, "'event'")
        token = self._peek()
        if token.type is TokenType.IDENT and token.value in ("begin", "end"):
            return self._parse_method_event()
        name = self._expect(TokenType.IDENT, "event name").value
        if self._match(TokenType.EQUALS):
            expr = self._parse_expr()
            self._end_statement()
            return ast.EventDef(name=name, expr=expr)
        if self._check(TokenType.LPAREN):
            return self._parse_app_event(name)
        raise SnoopSyntaxError(
            f"expected '=' or '(' after event name {name!r}",
            token.line, token.column,
        )

    def _parse_method_event(self) -> ast.MethodEventDecl:
        begin_name = end_name = None
        modifier = self._expect(TokenType.IDENT, "'begin' or 'end'").value
        self._expect(TokenType.LPAREN, "'('")
        first = self._expect(TokenType.IDENT, "event name").value
        self._expect(TokenType.RPAREN, "')'")
        if modifier == "begin":
            begin_name = first
            if self._match(TokenType.AMPAMP):
                self._expect(TokenType.IDENT, "'end'")
                self._expect(TokenType.LPAREN, "'('")
                end_name = self._expect(TokenType.IDENT, "event name").value
                self._expect(TokenType.RPAREN, "')'")
        else:
            end_name = first
        method = self._parse_method_signature()
        self._end_statement()
        return ast.MethodEventDecl(
            begin_name=begin_name, end_name=end_name, method=method
        )

    def _parse_method_signature(self) -> ast.MethodSignature:
        """Parse ``int sell_stock(int qty)`` loosely.

        Everything before the last identifier preceding ``(`` is the
        return type; parameter names are the last identifier of each
        comma-separated parameter.
        """
        leading: list[str] = []
        while self._check(TokenType.IDENT) or self._check(TokenType.STAR):
            if self._check(TokenType.IDENT) and self._peek(1).type is TokenType.LPAREN:
                break
            leading.append(self._advance().value)
        if not self._check(TokenType.IDENT):
            token = self._peek()
            raise SnoopSyntaxError(
                "expected a method signature", token.line, token.column
            )
        name = self._advance().value
        self._expect(TokenType.LPAREN, "'('")
        parameters: list[str] = []
        text_params: list[str] = []
        current: list[str] = []
        while not self._check(TokenType.RPAREN):
            if self._check(TokenType.EOF) or self._check(TokenType.NEWLINE):
                token = self._peek()
                raise SnoopSyntaxError(
                    "unterminated parameter list", token.line, token.column
                )
            if self._match(TokenType.COMMA):
                self._finish_param(current, parameters, text_params)
                continue
            current.append(self._advance().value)
        self._expect(TokenType.RPAREN, "')'")
        self._finish_param(current, parameters, text_params)
        return_type = " ".join(leading) or "void"
        text = f"{return_type} {name}({', '.join(text_params)})"
        return ast.MethodSignature(
            return_type=return_type,
            name=name,
            parameters=tuple(parameters),
            text=text,
        )

    @staticmethod
    def _finish_param(current: list[str], parameters: list[str],
                      text_params: list[str]) -> None:
        if not current:
            return
        names = [p for p in current if p not in ("*", "&", "const")]
        parameters.append(names[-1])
        text_params.append(" ".join(current))
        current.clear()

    def _parse_app_event(self, name: str) -> ast.AppEventDecl:
        self._expect(TokenType.LPAREN, "'('")
        declared = self._expect(TokenType.STRING, "event name string").value
        self._expect(TokenType.COMMA, "','")
        target_token = self._advance()
        if target_token.type is TokenType.STRING:
            target, is_instance = target_token.value, False
        elif target_token.type is TokenType.IDENT:
            target, is_instance = target_token.value, True
        else:
            raise SnoopSyntaxError(
                "expected a class-name string or an instance identifier",
                target_token.line, target_token.column,
            )
        self._expect(TokenType.COMMA, "','")
        modifier = self._expect(TokenType.STRING, "modifier string").value
        self._expect(TokenType.COMMA, "','")
        signature_text = self._expect(TokenType.STRING, "method signature").value
        self._expect(TokenType.RPAREN, "')'")
        self._end_statement()
        method = _signature_from_text(signature_text)
        if declared != name:
            # The paper repeats the name as the first argument; accept a
            # mismatch but prefer the declaration-site name.
            declared = name
        return ast.AppEventDecl(
            name=declared,
            target=target,
            target_is_instance=is_instance,
            modifier=modifier,
            method=method,
        )

    # -- rules --------------------------------------------------------------------------

    def _parse_rule(self) -> ast.RuleDef:
        self._expect(TokenType.IDENT, "'rule'")
        name = self._expect(TokenType.IDENT, "rule name").value
        opener_is_bracket = False
        if self._match(TokenType.LBRACKET):
            opener_is_bracket = True
        else:
            self._expect(TokenType.LPAREN, "'('")
        event = self._expect(TokenType.IDENT, "event name").value
        self._expect(TokenType.COMMA, "','")
        condition = self._expect(TokenType.IDENT, "condition function").value
        self._expect(TokenType.COMMA, "','")
        action = self._expect(TokenType.IDENT, "action function").value
        optional: list[str] = []
        priority: Optional[int] = None
        while self._match(TokenType.COMMA):
            token = self._advance()
            if token.type is TokenType.NUMBER:
                priority = int(float(token.value))
            elif token.type is TokenType.IDENT:
                optional.append(token.value)
            else:
                raise SnoopSyntaxError(
                    f"unexpected rule argument {token.value!r}",
                    token.line, token.column,
                )
        closer = TokenType.RBRACKET if opener_is_bracket else TokenType.RPAREN
        self._expect(closer, "closing bracket")
        self._end_statement()
        context = coupling = trigger_mode = None
        contexts = {"RECENT", "CHRONICLE", "CONTINUOUS", "CUMULATIVE"}
        couplings = {"IMMEDIATE", "DEFERRED", "DETACHED"}
        triggers = {"NOW", "PREVIOUS"}
        for value in optional:
            upper = value.upper()
            if upper in contexts and context is None:
                context = upper
            elif upper in couplings and coupling is None:
                coupling = upper
            elif upper in triggers and trigger_mode is None:
                trigger_mode = upper
            else:
                raise SnoopSyntaxError(
                    f"unknown rule option {value!r} (or duplicate)", 0, 0
                )
        return ast.RuleDef(
            name=name,
            event=event,
            condition=condition,
            action=action,
            context=context,
            coupling=coupling,
            priority=priority,
            trigger_mode=trigger_mode,
        )

    # -- event expressions -----------------------------------------------------------------

    def _parse_expr(self) -> ast.EventExpr:
        return self._parse_or()

    def _parse_or(self) -> ast.EventExpr:
        left = self._parse_and()
        while self._match(TokenType.PIPE):
            left = ast.OrExpr(left, self._parse_and())
        return left

    def _parse_and(self) -> ast.EventExpr:
        left = self._parse_seq()
        while self._match(TokenType.CARET):
            left = ast.AndExpr(left, self._parse_seq())
        return left

    def _parse_seq(self) -> ast.EventExpr:
        left = self._parse_postfix()
        while self._match(TokenType.SEMI):
            left = ast.SeqExpr(left, self._parse_postfix())
        return left

    def _parse_postfix(self) -> ast.EventExpr:
        expr = self._parse_primary()
        while self._check(TokenType.PLUS):
            self._advance()
            number = self._expect(TokenType.NUMBER, "a time delta")
            expr = ast.PlusExpr(expr, float(number.value))
        return expr

    def _parse_primary(self) -> ast.EventExpr:
        if self._match(TokenType.LPAREN):
            expr = self._parse_expr()
            self._expect(TokenType.RPAREN, "')'")
            return expr
        token = self._expect(TokenType.IDENT, "an event expression")
        value = token.value
        if value == "not" and self._check(TokenType.LPAREN):
            self._advance()
            forbidden = self._parse_expr()
            self._expect(TokenType.RPAREN, "')'")
            self._expect(TokenType.LBRACKET, "'['")
            initiator = self._parse_expr()
            self._expect(TokenType.COMMA, "','")
            terminator = self._parse_expr()
            self._expect(TokenType.RBRACKET, "']'")
            return ast.NotExpr(forbidden, initiator, terminator)
        if value in ("A", "P"):
            cumulative = bool(self._match(TokenType.STAR))
            if self._check(TokenType.LPAREN):
                return self._parse_windowed(value, cumulative)
            if cumulative:
                raise SnoopSyntaxError(
                    f"expected '(' after {value}*", token.line, token.column
                )
        if value == "plus" and self._check(TokenType.LPAREN):
            self._advance()
            initiator = self._parse_expr()
            self._expect(TokenType.COMMA, "','")
            number = self._expect(TokenType.NUMBER, "a time delta")
            self._expect(TokenType.RPAREN, "')'")
            return ast.PlusExpr(initiator, float(number.value))
        if self._match(TokenType.DOT):
            member = self._expect(TokenType.IDENT, "event name").value
            return ast.EventRef(name=member, class_name=value)
        return ast.EventRef(name=value)

    def _parse_windowed(self, kind: str, cumulative: bool) -> ast.EventExpr:
        self._expect(TokenType.LPAREN, "'('")
        initiator = self._parse_expr()
        self._expect(TokenType.COMMA, "','")
        if kind == "P":
            number = self._expect(TokenType.NUMBER, "a period")
            middle: ast.EventExpr | float = float(number.value)
        else:
            middle = self._parse_expr()
        self._expect(TokenType.COMMA, "','")
        terminator = self._parse_expr()
        self._expect(TokenType.RPAREN, "')'")
        if kind == "A":
            return ast.AperiodicExpr(
                initiator, middle, terminator, cumulative=cumulative
            )
        return ast.PeriodicExpr(
            initiator, middle, terminator, cumulative=cumulative
        )


def _signature_from_text(text: str) -> ast.MethodSignature:
    """Parse a quoted C++-ish signature like ``void set_price(float p)``."""
    text = text.strip()
    if "(" not in text:
        # Just a method name.
        return ast.MethodSignature(
            return_type="void", name=text, parameters=(), text=text
        )
    head, __, tail = text.partition("(")
    params_text = tail.rsplit(")", 1)[0]
    head_parts = head.split()
    name = head_parts[-1]
    return_type = " ".join(head_parts[:-1]) or "void"
    parameters = []
    for chunk in params_text.split(","):
        names = [p for p in chunk.replace("*", " ").split() if p != "const"]
        if names:
            parameters.append(names[-1])
    return ast.MethodSignature(
        return_type=return_type,
        name=name,
        parameters=tuple(parameters),
        text=text,
    )
