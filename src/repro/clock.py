"""Clock abstractions used to timestamp event occurrences.

Snoop's temporal operators (``P``, ``P*``, ``PLUS``) and the interval
semantics of every composite operator require a notion of time. The
original Sentinel used wall-clock time from the host; for a reproducible
library we route all time through a small ``Clock`` interface with three
implementations:

* :class:`LogicalClock` — a monotone counter advanced on every event.
  This is the default: Snoop's detection semantics only need a total
  order on occurrences.
* :class:`SimulatedClock` — manually advanced virtual time, used by
  tests and benchmarks of the periodic operators.
* :class:`WallClock` — real time, for online applications.
"""

from __future__ import annotations

import itertools
import threading
import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Source of timestamps for event occurrences.

    Timestamps are floats; the only requirement Snoop places on them is
    that they be non-decreasing within one detector.
    """

    @abstractmethod
    def now(self) -> float:
        """Return the current time without advancing the clock."""

    @abstractmethod
    def tick(self) -> float:
        """Advance the clock (if it is discrete) and return the new time."""


class LogicalClock(Clock):
    """A thread-safe monotone counter.

    ``tick`` is called by the event detector once per primitive
    occurrence, so each occurrence gets a distinct timestamp and
    sequence comparisons (``SEQ``) are unambiguous.
    """

    def __init__(self, start: int = 0):
        self._counter = itertools.count(start + 1)
        self._current = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._current

    def tick(self) -> float:
        with self._lock:
            self._current = float(next(self._counter))
            return self._current


class SimulatedClock(Clock):
    """Virtual time advanced explicitly by the caller.

    Used to test and benchmark the periodic operators deterministically:
    ``advance(5.0)`` moves time forward and lets the detector fire any
    periodic events that became due.
    """

    def __init__(self, start: float = 0.0):
        self._current = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._current

    def tick(self) -> float:
        return self.advance(1.0)

    def advance(self, delta: float) -> float:
        """Move virtual time forward by ``delta`` (must be positive)."""
        if delta < 0:
            raise ValueError(f"cannot move time backwards (delta={delta})")
        with self._lock:
            self._current += delta
            return self._current

    def set(self, value: float) -> float:
        """Jump to an absolute time (must not be in the past)."""
        with self._lock:
            if value < self._current:
                raise ValueError(
                    f"cannot move time backwards ({value} < {self._current})"
                )
            self._current = float(value)
            return self._current


class WallClock(Clock):
    """Real time via ``time.monotonic`` (never goes backwards)."""

    def __init__(self):
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin

    def tick(self) -> float:
        return self.now()
