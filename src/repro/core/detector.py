"""The local composite event detector.

One detector exists per application ("the event detector is implemented
as a class and hence we have a single instance of this class per
application"). It owns the event graph, the rule manager, and the rule
scheduler, and is the single entry point for signaling:

* ``notify`` — primitive (method) events, called from wrapper methods;
* ``raise_event`` — explicit events raised by the application;
* ``advance_time`` / ``poll`` — temporal events;
* ``signal_system_event`` — the transaction events of the system class.

Detection is *immediate-coupled to the application*: when ``notify``
returns, every immediate rule triggered (transitively) by that event
has run — the application "waits for the signaling of a composite event
that is detected in the immediate mode". Nested triggering is handled
by re-entrance: an action's method calls notify, whose own rule batch
runs before the action continues (depth-first execution).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.clock import Clock, LogicalClock, SimulatedClock
from repro.core.contexts import ParameterContext
from repro.core.events.graph import EventGraph
from repro.core.events.primitive import (
    ExplicitEventNode,
    PrimitiveEventNode,
    TemporalEventNode,
)
from repro.core.params import EventModifier, PrimitiveOccurrence, atomic
from repro.core.rules import (
    Action,
    Condition,
    CouplingMode,
    Rule,
    RuleManager,
    always,
    reject_positional_rule_args,
)
from repro.core.scheduler import (
    RuleActivation,
    RuleScheduler,
    SerialExecutor,
    ThreadedExecutor,
)
from repro.core.sharding import ShardedRuntime
from repro.errors import EventError, UnknownEvent
from repro.telemetry.events import (
    BatchIngested,
    DetachedDispatch,
    GraphPropagation,
    NotificationReceived,
    NotificationSuppressed,
    RuleTriggered,
)
from repro.telemetry.hub import TelemetryHub
from repro.transactions.nested import NestedTransaction, NestedTransactionManager

if TYPE_CHECKING:
    from repro.core.events.base import EventNode


@dataclass
class DetectorStats:
    notifications: int = 0
    suppressed: int = 0
    triggers: int = 0
    detached_dispatches: int = 0
    batches: int = 0


def _reject_builder(method: str, replacement: str) -> None:
    """Hard stop for the removed binary builder methods.

    ``detector.and_/or_/seq`` went through a deprecation release and
    are gone; the operator algebra is the only spelling. The error
    names the migration tool that rewrites old call sites.
    """
    from repro.errors import RemovedAPIError

    raise RemovedAPIError(
        f"detector.{method}(left, right) was removed; use the operator "
        f"expression {replacement} instead — "
        "`python tools/migrate_event_algebra.py FILES...` rewrites old "
        "call sites automatically"
    )


class LocalEventDetector:
    """Per-application composite event detection and rule execution."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        executor: Optional[SerialExecutor | ThreadedExecutor] = None,
        txn_manager: Optional[NestedTransactionManager] = None,
        sharing: bool = True,
        error_policy: str = "raise",
        name: str = "app",
        telemetry: Optional[TelemetryHub] = None,
        shards: int = 1,
        dispatch: Optional[str] = None,
    ):
        if dispatch is None:
            # The env override lets whole suites (CI stress legs) run
            # under the compiled engine without touching call sites.
            dispatch = os.environ.get("REPRO_DISPATCH", "interpreted")
        if dispatch not in ("interpreted", "compiled"):
            raise ValueError(
                f"dispatch must be 'interpreted' or 'compiled', "
                f"got {dispatch!r}"
            )
        self.name = name
        #: which execution backend signals route through. "interpreted"
        #: is the seed's recursive graph walk; "compiled" overlays the
        #: specialized engine from :mod:`repro.snoop.compiler` (installed
        #: at the end of __init__, once the scheduler exists).
        self.dispatch = dispatch
        self.clock = clock if clock is not None else LogicalClock()
        #: shared telemetry hub — dormant (near-no-op emit paths) until
        #: a processor is attached.
        self.telemetry = telemetry if telemetry is not None else TelemetryHub()
        self.graph = EventGraph(self.clock, sharing=sharing,
                                telemetry=self.telemetry)
        self.graph.set_emitter(self._on_trigger)
        #: sharded detection runtime. With ``shards == 1`` (default) it
        #: stays dormant — propagation is the seed's inline recursion,
        #: merely serialized under a single ingestion stripe. With
        #: ``shards > 1`` the graph routes every fan-out through the
        #: runtime's driver (see :mod:`repro.core.sharding`).
        self.runtime = ShardedRuntime(self, shards)
        self.graph.shard_map = self.runtime.map
        if self.runtime.active:
            self.graph.runtime = self.runtime
        self.rules = RuleManager(self)
        from repro.core.priorities import PriorityScheme

        #: named priority classes (paper §3.1); rules may use ints or names
        self.priorities = PriorityScheme()
        self.txn_manager = txn_manager
        self.scheduler = RuleScheduler(
            self,
            executor=executor,
            txn_manager=txn_manager,
            error_policy=error_policy,
        )
        self.stats = DetectorStats()
        self._local = threading.local()
        #: names of events forwarded to the global event detector
        self._global_events: set[str] = set()
        self._global_listeners: list[Callable[[PrimitiveOccurrence], None]] = []
        #: handler for DETACHED-coupled activations; the Sentinel facade
        #: installs one that opens a fresh top-level transaction.
        self.detached_handler: Optional[Callable[[RuleActivation], None]] = None
        #: batch mode: record triggers instead of executing rules
        self.collect_mode = False
        self.collected: list[RuleActivation] = []
        #: called with every primitive occurrence (event logging)
        self.occurrence_listeners: list[
            Callable[[PrimitiveOccurrence], None]
        ] = []
        #: called with (rule, occurrence) on every rule trigger (debugger)
        self.trigger_listeners: list[Callable[[Rule, Any], None]] = []
        #: compiled dispatch engine; the instance-attribute overrides
        #: keep interpreted-mode detectors at literal zero overhead
        self.engine = None
        if dispatch == "compiled":
            from repro.snoop.compiler import CompiledDispatchEngine

            self.engine = CompiledDispatchEngine(self)
            self.notify = self.engine.notify  # type: ignore[method-assign]
            self.raise_event = self.engine.raise_event  # type: ignore[method-assign]

    # =====================================================================
    # Event definition API
    # =====================================================================

    def primitive_event(
        self,
        name: str,
        class_or_instance: Any,
        modifier: EventModifier | str,
        method_name: str,
        snapshot_state: bool = False,
    ) -> PrimitiveEventNode:
        """Define a primitive event, paper §3.1 style.

        ``class_or_instance`` is a class name / class (class-level
        event: fires for every instance) or an object (instance-level:
        fires only for that object). ``method_name`` is matched against
        the invoked method. With ``snapshot_state=True`` every
        occurrence carries a copy of the object's state at signal time
        (see :class:`~repro.core.params.PrimitiveOccurrence`).
        """
        if isinstance(class_or_instance, str):
            class_name, instance = class_or_instance, None
        elif isinstance(class_or_instance, type):
            class_name, instance = class_or_instance.__name__, None
        else:
            class_name = type(class_or_instance).__name__
            instance = class_or_instance
        return self.graph.primitive(
            name, class_name, modifier, method_name, instance=instance,
            snapshot_state=snapshot_state,
        )

    def explicit_event(self, name: str) -> ExplicitEventNode:
        return self.graph.explicit(name)

    def rule_execution_event(self, name: str, rule_name: str,
                             modifier: EventModifier | str = "end",
                             ) -> PrimitiveEventNode:
        """A primitive event on the execution of a rule (meta-rules).

        "Since the rule class can be both reactive and notifiable,
        methods of the rule class can themselves be event generators":
        the begin/end of ``rule_name``'s condition-action execution
        signal this event.
        """
        from repro.core.scheduler import RULE_CLASS

        return self.graph.primitive(name, RULE_CLASS, modifier, rule_name)

    def temporal_event(self, name: str, at: Optional[float] = None,
                       every: Optional[float] = None) -> TemporalEventNode:
        return self.graph.temporal(name, at=at, every=every)

    def event(self, name: str) -> "EventNode":
        """Look up a previously defined (named) event."""
        return self.graph.get(name)

    def define(self, name: str, node: "EventNode") -> "EventNode":
        """Name an event expression for reuse."""
        return self.graph.define(name, node)

    # Operator passthroughs so applications rarely need graph access.
    # The binary builders (``and_``/``or_``/``seq``) were removed after
    # their deprecation release; the operator algebra (``a & b`` /
    # ``a | b`` / ``a >> b``, see repro.core.events.algebra) is the only
    # spelling. The stubs raise RemovedAPIError [E2] naming the
    # migration tool.
    def and_(self, left, right, name=None):
        _reject_builder("and_", "left & right")

    def or_(self, left, right, name=None):
        _reject_builder("or_", "left | right")

    def seq(self, left, right, name=None):
        _reject_builder("seq", "left >> right")

    def not_(self, initiator, forbidden, terminator, name=None):
        return self.graph.not_(
            self._n(initiator), self._n(forbidden), self._n(terminator), name
        )

    def aperiodic(self, initiator, middle, terminator, name=None):
        return self.graph.aperiodic(
            self._n(initiator), self._n(middle), self._n(terminator), name
        )

    def aperiodic_star(self, initiator, middle, terminator, name=None):
        return self.graph.aperiodic_star(
            self._n(initiator), self._n(middle), self._n(terminator), name
        )

    def periodic(self, initiator, period, terminator, name=None):
        return self.graph.periodic(
            self._n(initiator), period, self._n(terminator), name
        )

    def periodic_star(self, initiator, period, terminator, name=None):
        return self.graph.periodic_star(
            self._n(initiator), period, self._n(terminator), name
        )

    def plus(self, initiator, delay, name=None):
        return self.graph.plus(self._n(initiator), delay, name)

    def _n(self, event) -> "EventNode":
        return self.graph.get(event) if isinstance(event, str) else event

    # =====================================================================
    # Rule definition API
    # =====================================================================

    def rule(
        self,
        name: str,
        event: "EventNode | str",
        *legacy_positional,
        condition: Condition = always,
        action: Optional[Action] = None,
        context: str = "recent",
        coupling: str = "immediate",
        priority: int | str = 1,
        trigger_mode: str = "now",
        enabled: bool = True,
        scope: str = "public",
        owner: Optional[str] = None,
        executor: Optional[str] = None,
    ) -> Rule:
        """Define a rule (paper §3.1 ``rule_spec``).

        ``condition`` and ``action`` are keyword-only; ``condition``
        defaults to :func:`~repro.core.rules.always` (event-action
        rules). The deprecated positional condition/action convention
        was removed — old call sites get a RemovedAPIError [E2] naming
        ``tools/migrate_rule_calls.py``.

        ``executor`` selects the execution lane: ``"sync"`` (thread
        lanes), ``"async"`` (the asyncio lane; required for coroutine
        actions) or ``None`` to auto-detect from the action.
        """
        reject_positional_rule_args(legacy_positional)
        if action is None:
            from repro.errors import RuleError

            raise RuleError("rule() requires an action= callable")
        return self.rules.create(
            name, event, condition, action,
            context=context, coupling=coupling, priority=priority,
            trigger_mode=trigger_mode, enabled=enabled,
            scope=scope, owner=owner, executor=executor,
        )

    # =====================================================================
    # Signaling
    # =====================================================================

    def notify(
        self,
        instance: Any,
        class_name: str,
        method_name: str,
        modifier: EventModifier | str,
        arguments: dict[str, Any] | tuple = (),
        txn_id: Optional[int] = None,
    ) -> list[PrimitiveOccurrence]:
        """Signal a method invocation (the wrapper methods' Notify call).

        Returns the primitive occurrences generated — one per matching
        primitive event node (a single ``set_price`` call can fire both
        a class-level and an instance-level event).
        """
        self.stats.notifications += 1
        telemetry = self.telemetry
        if self._is_suppressed():
            self.stats.suppressed += 1
            if telemetry.active:
                telemetry.point(
                    NotificationSuppressed,
                    class_name=class_name, method_name=method_name,
                )
            return []
        if isinstance(modifier, str):
            modifier = EventModifier.parse(modifier)
        occurrences: list[PrimitiveOccurrence] = []

        def propagate() -> None:
            self._ingest_notify(
                instance, class_name, method_name, modifier, arguments,
                txn_id, occurrences,
            )

        if telemetry.active:
            with telemetry.span(
                NotificationReceived,
                class_name=class_name, method_name=method_name,
                modifier=modifier.value,
            ) as span:
                self._dispatch(propagate)
                span.set(matched=len(occurrences))
        else:
            self._dispatch(propagate)
        return occurrences

    def notify_batch(
        self,
        items,
        txn_id: Optional[int] = None,
    ) -> list[PrimitiveOccurrence]:
        """Signal many method invocations under one dispatch.

        ``items`` is an iterable of ``(instance, class_name,
        method_name, modifier)`` or ``(instance, class_name,
        method_name, modifier, arguments)`` tuples. The whole batch is
        ingested inside a single activation frame — one lock
        acquisition per shard run instead of one per item, and one
        :class:`~repro.telemetry.events.BatchIngested` span instead of
        one ``NotificationReceived`` span per item. Each item still
        gets its own clock tick, so occurrence order within the batch
        is the item order, and the triggered rules run once, after the
        last item's cascade.
        """
        items = list(items)
        self.stats.batches += 1
        self.stats.notifications += len(items)
        telemetry = self.telemetry
        if self._is_suppressed():
            self.stats.suppressed += len(items)
            if telemetry.active:
                telemetry.point(
                    NotificationSuppressed,
                    class_name="$BATCH", method_name=f"{len(items)} items",
                )
            return []
        occurrences: list[PrimitiveOccurrence] = []

        def propagate() -> None:
            for item in items:
                instance, class_name, method_name, modifier = item[:4]
                arguments = item[4] if len(item) > 4 else ()
                self._ingest_notify(
                    instance, class_name, method_name, modifier,
                    arguments, txn_id, occurrences,
                )

        if telemetry.active:
            with telemetry.span(
                BatchIngested, size=len(items), source="method",
            ) as span:
                self._dispatch(propagate)
                span.set(matched=len(occurrences))
        else:
            self._dispatch(propagate)
        return occurrences

    def _ingest_notify(
        self,
        instance: Any,
        class_name: str,
        method_name: str,
        modifier: EventModifier | str,
        arguments: dict[str, Any] | tuple,
        txn_id: Optional[int],
        occurrences: list[PrimitiveOccurrence],
    ) -> None:
        """Match one Notify item and signal it (runs inside a dispatch)."""
        if isinstance(modifier, str):
            modifier = EventModifier.parse(modifier)
        if isinstance(arguments, dict):
            arguments = tuple(arguments.items())
        arguments = tuple((k, atomic(v)) for k, v in arguments)
        at = self.clock.tick()
        if txn_id is None:
            current = self.current_transaction()
            txn_id = current.top_level_id if current is not None else None
        # Inheritance property: a method invocation on a subclass
        # instance matches events declared on any ancestor class.
        candidates = [class_name]
        if instance is not None:
            mro_names = [c.__name__ for c in type(instance).__mro__]
            if class_name in mro_names:
                candidates = mro_names
        telemetry = self.telemetry
        traced = telemetry.active
        trace = telemetry.current_trace_id() if traced else None
        runtime = self.runtime
        sharded = runtime.active
        nodes = [
            node
            for candidate in candidates
            for node in self.graph.primitives_for(candidate)
        ]
        for node in nodes:
            if not node.matches(
                node.class_name, method_name, modifier, instance
            ):
                continue
            occurrence = PrimitiveOccurrence(
                event_name=node.display_name,
                at=at,
                class_name=class_name,
                instance=self._identity(instance),
                method_name=method_name,
                modifier=modifier,
                arguments=arguments,
                txn_id=txn_id,
                state_snapshot=self._snapshot(node, instance),
                trace_id=trace,
            )
            occurrences.append(occurrence)
            for listener in self.occurrence_listeners:
                listener(occurrence)
            if sharded:
                runtime.submit_occur(node, occurrence)
            elif traced:
                with telemetry.span(
                    GraphPropagation,
                    event_name=node.display_name,
                    operator=node.operator,
                ):
                    node.occur(occurrence)
            else:
                node.occur(occurrence)
            if node.display_name in self._global_events:
                self._forward_global(occurrence)

    def raise_event(self, name: str, txn_id: Optional[int] = None,
                    **params: Any) -> PrimitiveOccurrence:
        """Raise an explicit (abstract) event with keyword parameters."""
        node = self.graph.get(name)
        if not isinstance(node, ExplicitEventNode):
            raise EventError(
                f"{name!r} is not an explicit event; only explicit events "
                f"can be raised directly"
            )
        at = self.clock.tick()
        if txn_id is None:
            current = self.current_transaction()
            txn_id = current.top_level_id if current is not None else None

        def make(trace: Optional[str]) -> PrimitiveOccurrence:
            return PrimitiveOccurrence(
                event_name=name,
                at=at,
                class_name="$EXPLICIT",
                arguments=tuple((k, atomic(v)) for k, v in params.items()),
                txn_id=txn_id,
                trace_id=trace,
            )

        telemetry = self.telemetry
        if telemetry.active:
            with telemetry.span(
                NotificationReceived,
                class_name="$EXPLICIT", method_name=name, modifier="raise",
                source="explicit", matched=1,
            ):
                # Constructed inside the span so the occurrence carries
                # the trace the span minted (or inherited).
                occurrence = make(telemetry.current_trace_id())
                self._dispatch(lambda: self._raise(node, occurrence))
        else:
            occurrence = make(None)
            self._dispatch(lambda: self._raise(node, occurrence))
        return occurrence

    def raise_events(
        self,
        events,
        txn_id: Optional[int] = None,
    ) -> list[PrimitiveOccurrence]:
        """Raise many explicit events under one dispatch.

        ``events`` is an iterable of event names or ``(name, params)``
        pairs (``params`` a dict). Like :meth:`notify_batch`, the whole
        batch shares one activation frame and one
        :class:`~repro.telemetry.events.BatchIngested` span; triggered
        rules run once, after the last event's cascade. Every name is
        resolved before any event is signaled, so an unknown or
        non-explicit name raises without a partial batch.
        """
        items: list[tuple[str, dict]] = []
        for item in events:
            if isinstance(item, str):
                items.append((item, {}))
            else:
                name, params = item
                items.append((name, dict(params)))
        nodes = []
        for name, __ in items:
            node = self.graph.get(name)
            if not isinstance(node, ExplicitEventNode):
                raise EventError(
                    f"{name!r} is not an explicit event; only explicit "
                    f"events can be raised directly"
                )
            nodes.append(node)
        self.stats.batches += 1
        occurrences: list[PrimitiveOccurrence] = []

        def propagate() -> None:
            telemetry = self.telemetry
            trace = telemetry.current_trace_id() if telemetry.active else None
            for node, (name, params) in zip(nodes, items):
                at = self.clock.tick()
                if txn_id is None:
                    current = self.current_transaction()
                    tid = (
                        current.top_level_id if current is not None else None
                    )
                else:
                    tid = txn_id
                occurrence = PrimitiveOccurrence(
                    event_name=name,
                    at=at,
                    class_name="$EXPLICIT",
                    arguments=tuple(
                        (k, atomic(v)) for k, v in params.items()
                    ),
                    txn_id=tid,
                    trace_id=trace,
                )
                occurrences.append(occurrence)
                self._raise(node, occurrence)

        telemetry = self.telemetry
        if telemetry.active:
            with telemetry.span(
                BatchIngested, size=len(items), source="explicit",
                matched=len(items),
            ):
                self._dispatch(propagate)
        else:
            self._dispatch(propagate)
        return occurrences

    def _raise(self, node: ExplicitEventNode, occ: PrimitiveOccurrence) -> None:
        for listener in self.occurrence_listeners:
            listener(occ)
        if self.runtime.active:
            self.runtime.submit_occur(node, occ)
        else:
            telemetry = self.telemetry
            if telemetry.active:
                with telemetry.span(
                    GraphPropagation,
                    event_name=node.display_name, operator=node.operator,
                ):
                    node.occur(occ)
            else:
                node.occur(occ)
        if node.display_name in self._global_events:
            self._forward_global(occ)

    def signal_system_event(self, event_name: str,
                            txn_id: Optional[int] = None) -> None:
        """Signal one of the transaction events of the system class."""
        from repro.core.deferred import SYSTEM_CLASS, SYSTEM_EVENTS

        for name, method, modifier in SYSTEM_EVENTS:
            if name == event_name:
                self.notify(
                    None, SYSTEM_CLASS, method, modifier,
                    arguments={"txn_id": txn_id}, txn_id=txn_id,
                )
                return
        raise UnknownEvent(f"unknown system event {event_name!r}")

    # -- temporal --------------------------------------------------------------

    def advance_time(self, delta: float) -> None:
        """Advance a simulated clock and fire any due temporal events."""
        if not isinstance(self.clock, SimulatedClock):
            raise EventError(
                "advance_time requires a SimulatedClock; use poll() with "
                "real clocks"
            )
        self.clock.advance(delta)
        self.poll()

    def poll(self) -> None:
        """Check temporal nodes against the current clock."""
        now = self.clock.now()
        if self.runtime.active:
            self._dispatch(lambda: [
                self.runtime.submit_poll(node, now)
                for node in self.graph.temporal_nodes()
            ])
        else:
            self._dispatch(lambda: self.graph.poll(now))

    # =====================================================================
    # Dispatch machinery
    # =====================================================================

    def _frames(self) -> list[list[RuleActivation]]:
        frames = getattr(self._local, "frames", None)
        if frames is None:
            frames = []
            self._local.frames = frames
        return frames

    def _dispatch(self, propagate: Callable[[], None]) -> None:
        """Run a propagation, then execute the rules it triggered.

        The activation frame is popped *before* the scheduler runs, so
        rules triggered from inside an action (via a nested notify) get
        their own frame — depth-first nested execution.
        """
        frames = self._frames()
        frame: list[RuleActivation] = []
        frames.append(frame)
        runtime = self.runtime
        try:
            if runtime.active:
                # Sharded: the propagate closure only stages roots on
                # this thread's driver; the driver then runs the full
                # cascade under per-shard locks.
                propagate()
                runtime.run()
            else:
                # Single shard: seed-style inline recursion, serialized
                # under the one ingestion stripe. The lock is released
                # before the frame's rules run, so actions that notify
                # re-enter cleanly (including from executor threads).
                with runtime.ingest_lock:
                    propagate()
        finally:
            frames.pop()
        self._run_frame(frame)

    def _on_trigger(self, rule: Rule, occurrence) -> None:
        """Graph emitter: a rule subscriber matched a detection."""
        rule.triggered_count += 1
        self.stats.triggers += 1
        for listener in self.trigger_listeners:
            listener(rule, occurrence)
        telemetry = self.telemetry
        parent_span_id = None
        trace_id = None
        if telemetry.active:
            # Capture the triggering scope so the rule span links to it
            # even when it runs on another thread (threaded/detached).
            parent_span_id = telemetry.current_span_id()
            trace_id = telemetry.current_trace_id()
            telemetry.point(
                RuleTriggered,
                rule_name=rule.name,
                event_name=getattr(occurrence, "event_name", "?"),
            )
        activation = RuleActivation(
            rule, occurrence, parent_txn=self.current_transaction(),
            parent_span_id=parent_span_id, trace_id=trace_id,
        )
        frames = self._frames()
        if frames:
            frames[-1].append(activation)
        else:
            self._run_frame([activation])

    def _run_frame(self, frame: list[RuleActivation]) -> None:
        if not frame:
            return
        if self.collect_mode:
            self.collected.extend(frame)
            return
        immediate = [
            a for a in frame if a.rule.coupling is not CouplingMode.DETACHED
        ]
        detached = [
            a for a in frame if a.rule.coupling is CouplingMode.DETACHED
        ]
        if immediate:
            self.scheduler.run(immediate)
        for activation in detached:
            self.stats.detached_dispatches += 1
            if self.telemetry.active:
                self.telemetry.point(
                    DetachedDispatch,
                    parent_id=activation.parent_span_id,
                    rule_name=activation.rule.name,
                )
            if self.detached_handler is not None:
                self.detached_handler(activation)
            else:
                # No transaction infrastructure attached: run standalone.
                activation.parent_txn = None
                self.scheduler.run_one(activation)

    # -- suppression (conditions are side-effect free) ---------------------------

    def _is_suppressed(self) -> bool:
        return getattr(self._local, "suppressed", False)

    @contextmanager
    def signals_suppressed(self):
        """Ignore event signaling on this thread (condition evaluation)."""
        previous = self._is_suppressed()
        self._local.suppressed = True
        try:
            yield
        finally:
            self._local.suppressed = previous

    # -- transaction context ---------------------------------------------------------

    def current_transaction(self) -> Optional[NestedTransaction]:
        return getattr(self._local, "txn", None)

    def set_current_transaction(
        self, txn: Optional[NestedTransaction]
    ) -> None:
        self._local.txn = txn

    # -- global events -----------------------------------------------------------------

    def mark_global(self, event_name: str) -> None:
        """Forward occurrences of ``event_name`` to global listeners."""
        self.graph.get(event_name)  # must exist
        self._global_events.add(event_name)
        # The compiled plan folds the global-forward flag per node.
        self.graph.version += 1

    def add_global_listener(
        self, listener: Callable[[PrimitiveOccurrence], None]
    ) -> None:
        self._global_listeners.append(listener)

    def _forward_global(self, occurrence: PrimitiveOccurrence) -> None:
        for listener in self._global_listeners:
            listener(occurrence)

    # -- introspection ---------------------------------------------------------------------

    def graph_snapshot(self) -> dict:
        """The event graph's monitor view (see ``EventGraph.snapshot``)."""
        return self.graph.snapshot()

    def health(self) -> dict:
        """Liveness data for the monitor's ``/health`` (detector slice).

        The payload shape is defined in :mod:`repro.reporting`, the
        single schema module shared with ``Sentinel.health()`` and
        ``SystemReport.to_dict()``.
        """
        from repro.reporting import detector_health

        return detector_health(self)

    # -- maintenance ---------------------------------------------------------------------

    def flush(self, event_name: Optional[str] = None,
              ctx: Optional[ParameterContext] = None) -> None:
        """Discard pending detection state (transaction boundaries)."""
        with self.runtime.all_locks():
            self.graph.flush(event_name, ctx)

    def _snapshot(self, node: PrimitiveEventNode,
                  instance: Any) -> Optional[tuple]:
        """Copy the object's state for snapshot-enabled events."""
        if not node.snapshot_state or instance is None:
            return None
        if hasattr(instance, "persistent_state"):
            state = instance.persistent_state()
        else:
            state = {
                k: v for k, v in vars(instance).items()
                if not k.startswith("_")
            }
        return tuple((k, atomic(v)) for k, v in state.items())

    def _identity(self, instance: Any) -> Any:
        if instance is None:
            return None
        oid = getattr(instance, "oid", None)
        if oid is not None:
            return oid
        return instance

    def shutdown(self) -> None:
        self.scheduler.shutdown()
