"""The asyncio execution lane for coroutine rule actions.

The paper's Fig-3 scheme runs every rule action on a fixed thread pool,
which caps IO-bound action throughput (webhooks, downstream writes) at
pool size. :class:`AsyncExecutor` is a second lane: one dedicated
event-loop thread on which the actions of ``executor="async"`` rules
run as tasks, so an entire priority class of IO-bound actions overlaps
in one thread while the existing ``SerialExecutor``/``ThreadedExecutor``
lanes keep serving sync rules.

Two pieces make the lane safe without touching the synchronous hot path:

* **Per-task state isolation** (:func:`isolate`). The scheduler keeps
  its execution state — current transaction, rule-nesting depth,
  current rule, telemetry span stack — in *thread* locals, which every
  task on the one loop thread would otherwise share. ``isolate`` drives
  the rule coroutine step by step and swaps each task's private copies
  of those attributes in before every ``send``/``throw`` and back out
  after, so tasks interleaving at ``await`` points never observe each
  other's state. The swap costs only the async lane anything; sync
  rules keep reading plain thread locals.

* **Nested-lane routing** (:meth:`AsyncExecutor.route`). An async
  action that synchronously raises events re-enters the scheduler *on
  the loop thread*; blocking there on a future of its own loop would
  deadlock. ``route()`` answers the lane the calling thread may safely
  block on: the executor itself from foreign threads, a lazily created
  nested lane from its own loop thread. Nested cascades therefore run
  depth-first (the triggering ``notify`` returns only after the nested
  rules finish), exactly like the interpreted oracle.
"""

from __future__ import annotations

import asyncio
import threading
import types
from typing import Any, Coroutine, Iterable, Optional

__all__ = ["AsyncExecutor", "isolate"]

_MISSING = object()


class _Swap:
    """One thread-local attribute a task owns a private copy of."""

    __slots__ = ("target", "attr", "value")

    def __init__(self, target: Any, attr: str, value: Any):
        self.target = target
        self.attr = attr
        self.value = value


@types.coroutine
def _drive(coro: Coroutine, swaps: list[_Swap]):
    """Step ``coro``, swapping per-task state around every resumption.

    Before each ``send``/``throw`` the task's parked values are
    installed on the thread locals; after the step the (possibly
    mutated) values are parked again and the loop thread's base values
    restored — so whatever runs between tasks (the event loop itself,
    other tasks) sees pristine state.
    """
    send_value: Any = None
    thrown: Optional[BaseException] = None
    while True:
        saved = [getattr(s.target, s.attr, _MISSING) for s in swaps]
        for s in swaps:
            setattr(s.target, s.attr, s.value)
        try:
            if thrown is not None:
                step = coro.throw(thrown)
            else:
                step = coro.send(send_value)
            result = _MISSING
        except StopIteration as stop:
            result = stop.value
        finally:
            for s, previous in zip(swaps, saved):
                s.value = getattr(s.target, s.attr, None)
                if previous is _MISSING:
                    try:
                        delattr(s.target, s.attr)
                    except AttributeError:
                        pass
                else:
                    setattr(s.target, s.attr, previous)
        if result is not _MISSING:
            return result
        try:
            send_value = yield step
            thrown = None
        except BaseException as exc:  # noqa: BLE001 — must reach the coro
            thrown = exc
            send_value = None


def isolate(coro: Coroutine,
            specs: Iterable[tuple[Any, str, Any]]) -> Coroutine:
    """Wrap ``coro`` so it runs with private copies of thread locals.

    ``specs`` is an iterable of ``(target, attribute, initial_value)``
    triples — e.g. ``(scheduler._local, "depth", 3)`` seeds the task
    with the triggering thread's nesting depth. Mutations the coroutine
    makes to a swapped attribute persist across its awaits (they are
    parked with the task), but are invisible to every other task.
    """
    swaps = [_Swap(target, attr, value) for target, attr, value in specs]

    async def runner():
        return await _drive(coro, swaps)

    return runner()


class AsyncExecutor:
    """A dedicated event-loop thread that runs rule-action coroutines.

    Unlike :class:`~repro.core.scheduler.ThreadedExecutor` this is not a
    drop-in ``executor=`` for the scheduler — the scheduler routes
    ``executor="async"`` activations here itself (see
    ``RuleScheduler.async_lane``) while sync rules keep their
    configured executor.
    """

    def __init__(self, name: str = "sentinel-async"):
        self.name = name
        self.loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._closed = False
        self._nested: Optional["AsyncExecutor"] = None
        self._nested_lock = threading.Lock()
        self._thread = threading.Thread(
            target=self._run_loop, name=name, daemon=True
        )
        self._thread.start()
        self._started.wait()

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.call_soon(self._started.set)
        try:
            self.loop.run_forever()
        finally:
            # Drain: cancel whatever is still pending, let the
            # cancellations unwind, then close the loop.
            pending = asyncio.all_tasks(self.loop)
            for task in pending:
                task.cancel()
            if pending:
                self.loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self.loop.close()

    # -- submission --------------------------------------------------------

    def submit(self, coro: Coroutine):
        """Schedule ``coro`` on the lane; returns a concurrent Future."""
        if self._closed:
            coro.close()
            raise RuntimeError(f"async lane {self.name!r} is closed")
        return asyncio.run_coroutine_threadsafe(coro, self.loop)

    def submit_gather(self, coros: list[Coroutine]):
        """Schedule ``coros`` concurrently; the Future resolves to a
        list of results/exceptions in submission order (gather with
        ``return_exceptions=True`` — all tasks run to completion)."""

        async def gather_all():
            tasks = [asyncio.ensure_future(c) for c in coros]
            return await asyncio.gather(*tasks, return_exceptions=True)

        return self.submit(gather_all())

    def run(self, coro: Coroutine):
        """Run ``coro`` on the lane, blocking the calling thread.

        Never call this from this lane's own loop thread — use
        :meth:`route` first, which hands back a nested lane that is
        safe to block on.
        """
        assert threading.current_thread() is not self._thread, (
            "blocking on the lane's own loop thread would deadlock; "
            "call route() first"
        )
        return self.submit(coro).result()

    # -- nested cascades ---------------------------------------------------

    def route(self) -> "AsyncExecutor":
        """The lane of this chain the calling thread may block on.

        A foreign thread gets ``self``. A thread that *is* one of the
        chain's loop threads gets that lane's (lazily created) nested
        lane: blocking a loop thread on its own loop would deadlock
        directly, and blocking it on an ancestor would too — during a
        depth-first cascade every ancestor's thread is already parked
        in :meth:`run` waiting for this level to finish. The walk must
        therefore cover the whole chain, not just ``self``. Chain depth
        is bounded by the scheduler's ``MAX_DEPTH`` cascade limit.
        """
        current = threading.current_thread()
        lane = self
        while True:
            if current is lane._thread:
                with lane._nested_lock:
                    if lane._nested is None:
                        lane._nested = AsyncExecutor(name=f"{lane.name}+")
                    return lane._nested
            with lane._nested_lock:
                nested = lane._nested
            if nested is None:
                return self
            lane = nested

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self, timeout: Optional[float] = 10.0) -> None:
        """Stop the loop (nested lanes first) and join the thread."""
        if self._closed:
            return
        self._closed = True
        with self._nested_lock:
            nested = self._nested
            self._nested = None
        if nested is not None:
            nested.shutdown(timeout)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "running"
        return f"AsyncExecutor({self.name!r}, {state})"
