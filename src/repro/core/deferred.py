"""Deferred-coupling rewrite: ``E`` -> ``A*(begin_txn, E, pre_commit_txn)``.

From the paper: "a rule in deferred mode with an (arbitrary) event E is
transformed by the Sentinel pre-processor to A*(begin_transaction, E,
pre_commit_transaction). This causes a deferred rule to be executed
exactly once even though its event may be triggered a number of times
in the course of that transaction execution. This formulation handles
the net effect variant of deferred rule execution."

The transaction events are primitive events of the ``$SYSTEM`` class,
signaled by the Sentinel facade around every top-level transaction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.events.base import EventNode
from repro.core.params import EventModifier

if TYPE_CHECKING:
    from repro.core.detector import LocalEventDetector

#: Class name used for the REACTIVE system class's transaction events.
SYSTEM_CLASS = "$SYSTEM"

BEGIN_TRANSACTION = "begin_transaction"
PRE_COMMIT_TRANSACTION = "pre_commit_transaction"
COMMIT_TRANSACTION = "commit_transaction"
ABORT_TRANSACTION = "abort_transaction"

#: (event name, method on the system class, modifier) for each
#: transaction event. ``begin`` is "always signaled at the beginning of
#: a transaction and the pre-commit is signaled before the commit".
SYSTEM_EVENTS = (
    (BEGIN_TRANSACTION, "beginTransaction", EventModifier.END),
    (PRE_COMMIT_TRANSACTION, "commitTransaction", EventModifier.BEGIN),
    (COMMIT_TRANSACTION, "commitTransaction", EventModifier.END),
    (ABORT_TRANSACTION, "abortTransaction", EventModifier.END),
)


def ensure_system_events(detector: "LocalEventDetector") -> None:
    """Define the transaction events on ``detector`` (idempotent)."""
    for name, method, modifier in SYSTEM_EVENTS:
        if not detector.graph.has(name):
            detector.graph.primitive(name, SYSTEM_CLASS, modifier, method)


def rewrite_deferred(
    detector: "LocalEventDetector", rule_name: str, event: EventNode
) -> EventNode:
    """Build the ``A*(begin_txn, E, pre_commit_txn)`` event for a rule."""
    ensure_system_events(detector)
    graph = detector.graph
    return graph.aperiodic_star(
        graph.get(BEGIN_TRANSACTION),
        event,
        graph.get(PRE_COMMIT_TRANSACTION),
        name=f"$deferred:{rule_name}",
    )
