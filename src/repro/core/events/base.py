"""Event graph node base class.

The event graph is "similar to operator trees" with demand-driven,
data-flow propagation (paper §2.3): a node only detects in a context
when at least one rule needing that context is reachable from it, which
is tracked with per-context reference counters ("the counter for that
particular context is incremented ... If the counter is reset to 0,
events are no longer detected in that context").

Each node maintains *separate* subscriber lists for composite events
and for rules, as the paper prescribes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.core.contexts import ParameterContext
from repro.core.params import CompositeOccurrence, Occurrence
from repro.telemetry.events import Detection

if TYPE_CHECKING:
    from repro.core.events.graph import EventGraph
    from repro.core.rules import Rule


class EventNode:
    """One node of the event graph."""

    #: Operator tag used in composite occurrences and visualizations.
    operator = "EVENT"
    #: Temporal nodes are polled when the clock advances.
    is_temporal = False

    def __init__(
        self,
        graph: "EventGraph",
        children: tuple["EventNode", ...] = (),
        name: Optional[str] = None,
    ):
        self.graph = graph
        self.children = tuple(children)
        self.name = name
        self.event_subscribers: list[tuple[EventNode, int]] = []
        self.rule_subscribers: list["Rule"] = []
        self._context_counts: dict[ParameterContext, int] = {}
        self._state: dict[ParameterContext, Any] = {}
        #: occurrence count per parameter context (monitor ``/graph``)
        self.detections_by_context: dict[ParameterContext, int] = {}
        #: owner shard (assigned by ``graph.register`` from its shard map)
        self.shard = 0
        for port, child in enumerate(self.children):
            child.event_subscribers.append((self, port))
        graph.register(self)

    # -- labels -------------------------------------------------------------

    @property
    def label(self) -> str:
        """Canonical expression string; doubles as the sharing key."""
        return self.name or self.operator

    @property
    def display_name(self) -> str:
        return self.name or self.label

    # -- context counters ------------------------------------------------------

    def add_context(self, ctx: ParameterContext, count: int = 1) -> None:
        """Activate detection in ``ctx`` (propagates to the whole subtree)."""
        previous = self._context_counts.get(ctx, 0)
        self._context_counts[ctx] = previous + count
        if previous == 0:
            self._state[ctx] = self._new_state(ctx)
        self.graph.version += 1
        for child in self.children:
            child.add_context(ctx, count)

    def remove_context(self, ctx: ParameterContext, count: int = 1) -> None:
        """Deactivate ``ctx``; state is dropped when the counter hits 0."""
        previous = self._context_counts.get(ctx, 0)
        remaining = max(0, previous - count)
        if remaining == 0:
            self._context_counts.pop(ctx, None)
            self._state.pop(ctx, None)
        else:
            self._context_counts[ctx] = remaining
        self.graph.version += 1
        for child in self.children:
            child.remove_context(ctx, count)

    def context_active(self, ctx: ParameterContext) -> bool:
        return self._context_counts.get(ctx, 0) > 0

    def active_contexts(self) -> Iterator[ParameterContext]:
        return iter(tuple(self._context_counts))

    def context_count(self, ctx: ParameterContext) -> int:
        return self._context_counts.get(ctx, 0)

    # -- detection state ------------------------------------------------------------

    def _new_state(self, ctx: ParameterContext) -> Any:
        """Fresh per-context detection state; operators override."""
        return None

    def state(self, ctx: ParameterContext) -> Any:
        if ctx not in self._state and self.context_active(ctx):
            self._state[ctx] = self._new_state(ctx)
        return self._state.get(ctx)

    def flush(self, ctx: Optional[ParameterContext] = None) -> None:
        """Discard pending detection state (transaction boundaries)."""
        if ctx is None:
            for active in list(self._state):
                self._state[active] = self._new_state(active)
        elif ctx in self._state:
            self._state[ctx] = self._new_state(ctx)

    # -- propagation ------------------------------------------------------------------

    def pending_depth(self) -> int:
        """Best-effort count of occurrences queued in this node's state.

        Operator state is a per-context container of pending
        occurrences (deques per side for AND, a deque for SEQ/NOT,
        open windows for P/P*); the monitor's ``/graph`` endpoint
        reports the sum as the node's queue depth. Stateless nodes
        report 0.
        """
        total = 0
        for state in self._state.values():
            if state is None:
                continue
            sides = getattr(state, "sides", None)
            if sides is not None:
                total += sum(len(side) for side in sides)
            elif hasattr(state, "__len__"):
                total += len(state)
        return total

    def signal(self, occurrence: Occurrence, ctx: ParameterContext) -> None:
        """Deliver a detection of this node to its subscribers."""
        self.graph.stats.detections += 1
        self.detections_by_context[ctx] = (
            self.detections_by_context.get(ctx, 0) + 1
        )
        telemetry = self.graph.telemetry
        if telemetry.active:
            telemetry.point(
                Detection,
                event_name=self.display_name,
                operator=self.operator,
                context=ctx.value,
            )
        if self.graph.observers:
            self.graph.notify_observers(self, occurrence, ctx)
        runtime = self.graph.runtime
        if runtime is not None:
            # Sharded mode: defer the fan-out onto the driver stack so
            # each subscriber runs under its own shard's lock stripe.
            runtime.fanout(self, occurrence, ctx)
            return
        for parent, port in self.event_subscribers:
            if parent.context_active(ctx):
                self.graph.stats.propagations += 1
                parent.on_child(port, occurrence, ctx)
        for rule in list(self.rule_subscribers):
            if rule.wants(ctx, occurrence):
                self.graph.emit(rule, occurrence)

    def on_child(self, port: int, occurrence: Occurrence,
                 ctx: ParameterContext) -> None:
        """Child at ``port`` detected ``occurrence`` in ``ctx``."""
        raise NotImplementedError(f"{type(self).__name__} has no children")

    # -- Snoop operator algebra (see repro.core.events.algebra) ----------------

    def _operand(self, other: Any) -> Optional["EventNode"]:
        """Coerce an operator operand; None means NotImplemented."""
        if isinstance(other, str):
            other = self.graph.get(other)
        if not isinstance(other, EventNode):
            return None
        if other.graph is not self.graph:
            from repro.errors import EventError

            raise EventError(
                "cannot combine events from different event graphs"
            )
        return other

    def __and__(self, other: Any) -> "EventNode":
        """``a & b`` — Snoop AND (both occur, in any order)."""
        operand = self._operand(other)
        if operand is None:
            return NotImplemented
        return self.graph.and_(self, operand)

    def __rand__(self, other: Any) -> "EventNode":
        operand = self._operand(other)
        if operand is None:
            return NotImplemented
        return self.graph.and_(operand, self)

    def __or__(self, other: Any) -> "EventNode":
        """``a | b`` — Snoop OR (either occurs)."""
        operand = self._operand(other)
        if operand is None:
            return NotImplemented
        return self.graph.or_(self, operand)

    def __ror__(self, other: Any) -> "EventNode":
        operand = self._operand(other)
        if operand is None:
            return NotImplemented
        return self.graph.or_(operand, self)

    def __rshift__(self, other: Any) -> "EventNode":
        """``a >> b`` — Snoop SEQ (``a`` strictly before ``b``)."""
        operand = self._operand(other)
        if operand is None:
            return NotImplemented
        return self.graph.seq(self, operand)

    def __rrshift__(self, other: Any) -> "EventNode":
        operand = self._operand(other)
        if operand is None:
            return NotImplemented
        return self.graph.seq(operand, self)

    def poll(self, now: float) -> None:
        """Hook for temporal nodes; called when the clock advances."""

    # -- helpers -----------------------------------------------------------------------

    def _compose(
        self, constituents: tuple[Occurrence, ...]
    ) -> CompositeOccurrence:
        start = min(c.start for c in constituents)
        end = max(c.end for c in constituents)
        return CompositeOccurrence(
            event_name=self.display_name,
            operator=self.operator,
            constituents=constituents,
            start=start,
            end=end,
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.label}>"
