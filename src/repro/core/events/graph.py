"""The event graph: node registry, sharing, and named events.

"Common event sub-expressions are represented only once in the event
graph ... reducing the total number of nodes" (paper §3.1). The graph
hash-conses nodes on ``(operator, child identities, extra args)`` so
that two rules over ``e1 ^ e2`` share one AND node; sharing can be
disabled for the ABL-SHARE ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

from repro.clock import Clock
from repro.core.params import EventModifier
from repro.errors import DuplicateEvent, UnknownEvent
from repro.core.events.base import EventNode
from repro.core.events.operators import (
    AndNode,
    AperiodicNode,
    AperiodicStarNode,
    NotNode,
    OrNode,
    PeriodicNode,
    PeriodicStarNode,
    PlusNode,
    SeqNode,
)
from repro.core.events.primitive import (
    ExplicitEventNode,
    PrimitiveEventNode,
    TemporalEventNode,
)

if TYPE_CHECKING:
    from repro.core.contexts import ParameterContext
    from repro.core.params import Occurrence
    from repro.core.rules import Rule
    from repro.telemetry.hub import TelemetryHub


@dataclass
class GraphStats:
    """Counters for the benchmark harness."""

    nodes_created: int = 0
    shared_hits: int = 0
    detections: int = 0
    propagations: int = 0


class EventGraph:
    """Registry and factory for event nodes."""

    def __init__(self, clock: Clock, sharing: bool = True,
                 telemetry: Optional["TelemetryHub"] = None):
        from repro.telemetry.hub import TelemetryHub

        self.clock = clock
        self.sharing = sharing
        #: shared telemetry hub; nodes emit Detection events through it
        self.telemetry = telemetry if telemetry is not None else TelemetryHub()
        self.stats = GraphStats()
        self._nodes: list[EventNode] = []
        self._by_name: dict[str, EventNode] = {}
        self._share_index: dict[tuple, EventNode] = {}
        self._class_index: dict[str, list[PrimitiveEventNode]] = {}
        self._emit: Optional[Callable[["Rule", "Occurrence"], None]] = None
        #: observers get (node, occurrence, ctx) on every detection;
        #: used by the rule debugger's trace recorder.
        self.observers: list[Callable] = []
        #: sharded detection runtime; None keeps the seed's inline
        #: recursion in ``EventNode.signal`` (set by the detector when
        #: constructed with ``shards > 1``).
        self.runtime = None
        #: node -> shard assignment (a ``repro.core.sharding.ShardMap``);
        #: when None every node lands on shard 0.
        self.shard_map = None
        #: monotonically increasing topology stamp. Bumped whenever the
        #: routing-relevant shape changes: node registration/naming,
        #: rule (un)subscription, and per-context counter edits. The
        #: compiled dispatch engine (``repro.snoop.compiler``) compares
        #: this against its plan and rebuilds lazily on mismatch.
        self.version = 0

    # -- wiring ------------------------------------------------------------------

    def set_emitter(self, emit: Callable[["Rule", "Occurrence"], None]) -> None:
        """Install the detector callback invoked on each rule trigger."""
        self._emit = emit

    def emit(self, rule: "Rule", occurrence: "Occurrence") -> None:
        if self._emit is not None:
            self._emit(rule, occurrence)

    def register(self, node: EventNode) -> None:
        """Called from ``EventNode.__init__``."""
        self._nodes.append(node)
        self.stats.nodes_created += 1
        self.version += 1
        node.shard = (
            self.shard_map.assign(node) if self.shard_map is not None else 0
        )
        if isinstance(node, PrimitiveEventNode):
            # "Each of the primitive events defined is maintained as a
            # list based on the class on which it is defined."
            self._class_index.setdefault(node.class_name, []).append(node)
        if node.name:
            self._register_name(node.name, node)

    def primitives_for(self, class_name: str) -> list[PrimitiveEventNode]:
        """Primitive event nodes declared on ``class_name``."""
        return self._class_index.get(class_name, [])

    def notify_observers(self, node: EventNode, occurrence, ctx) -> None:
        for observer in self.observers:
            observer(node, occurrence, ctx)

    def _register_name(self, name: str, node: EventNode) -> None:
        existing = self._by_name.get(name)
        if existing is not None and existing is not node:
            raise DuplicateEvent(f"event name {name!r} is already defined")
        self._by_name[name] = node
        self.version += 1

    def define(self, name: str, node: EventNode) -> EventNode:
        """Bind ``name`` to an existing node (event reuse, paper §3.1)."""
        self._register_name(name, node)
        if node.name is None:
            node.name = name
        return node

    # -- lookup --------------------------------------------------------------------

    def get(self, name: str) -> EventNode:
        node = self._by_name.get(name)
        if node is None:
            raise UnknownEvent(f"event {name!r} is not defined")
        return node

    def event(self, name: str) -> EventNode:
        """Alias of :meth:`get`, matching the detector/facade spelling."""
        return self.get(name)

    def has(self, name: str) -> bool:
        return name in self._by_name

    def nodes(self) -> Iterator[EventNode]:
        return iter(list(self._nodes))

    def temporal_nodes(self) -> list[EventNode]:
        return [n for n in self._nodes if n.is_temporal]

    def names(self) -> list[str]:
        return sorted(self._by_name)

    def __len__(self) -> int:
        return len(self._nodes)

    # -- sharing-aware constructors ------------------------------------------------------

    def _shared(self, key: tuple, build: Callable[[], EventNode],
                name: Optional[str]) -> EventNode:
        if self.sharing:
            node = self._share_index.get(key)
            if node is not None:
                self.stats.shared_hits += 1
                if name:
                    self.define(name, node)
                return node
        node = build()
        if self.sharing:
            self._share_index[key] = node
        return node

    def primitive(
        self,
        name: str,
        class_name: str,
        modifier: EventModifier | str,
        method_name: str,
        instance: Any = None,
        snapshot_state: bool = False,
    ) -> PrimitiveEventNode:
        """Define a primitive (method) event; class- or instance-level."""
        if isinstance(modifier, str):
            modifier = EventModifier.parse(modifier)
        key = ("PRIM", class_name, method_name, modifier,
               id(instance) if instance is not None else None,
               snapshot_state)
        node = self._shared(
            key,
            lambda: PrimitiveEventNode(
                self, name, class_name, modifier, method_name, instance,
                snapshot_state=snapshot_state,
            ),
            name,
        )
        if not isinstance(node, PrimitiveEventNode):
            raise DuplicateEvent(f"{name!r} exists and is not a primitive event")
        return node

    def explicit(self, name: str) -> ExplicitEventNode:
        if self.has(name):
            node = self.get(name)
            if isinstance(node, ExplicitEventNode):
                return node
            raise DuplicateEvent(f"{name!r} exists and is not an explicit event")
        return ExplicitEventNode(self, name)

    def temporal(self, name: str, at: Optional[float] = None,
                 every: Optional[float] = None) -> TemporalEventNode:
        return TemporalEventNode(self, name, at=at, every=every)

    def and_(self, left: EventNode, right: EventNode,
             name: Optional[str] = None) -> AndNode:
        return self._shared(
            ("AND", id(left), id(right)),
            lambda: AndNode(self, left, right, name=name),
            name,
        )

    def or_(self, left: EventNode, right: EventNode,
            name: Optional[str] = None) -> OrNode:
        return self._shared(
            ("OR", id(left), id(right)),
            lambda: OrNode(self, left, right, name=name),
            name,
        )

    def seq(self, left: EventNode, right: EventNode,
            name: Optional[str] = None) -> SeqNode:
        return self._shared(
            ("SEQ", id(left), id(right)),
            lambda: SeqNode(self, left, right, name=name),
            name,
        )

    def not_(self, initiator: EventNode, forbidden: EventNode,
             terminator: EventNode, name: Optional[str] = None) -> NotNode:
        return self._shared(
            ("NOT", id(initiator), id(forbidden), id(terminator)),
            lambda: NotNode(self, initiator, forbidden, terminator, name=name),
            name,
        )

    def aperiodic(self, initiator: EventNode, middle: EventNode,
                  terminator: EventNode,
                  name: Optional[str] = None) -> AperiodicNode:
        return self._shared(
            ("A", id(initiator), id(middle), id(terminator)),
            lambda: AperiodicNode(self, initiator, middle, terminator, name=name),
            name,
        )

    def aperiodic_star(self, initiator: EventNode, middle: EventNode,
                       terminator: EventNode,
                       name: Optional[str] = None) -> AperiodicStarNode:
        return self._shared(
            ("A*", id(initiator), id(middle), id(terminator)),
            lambda: AperiodicStarNode(
                self, initiator, middle, terminator, name=name
            ),
            name,
        )

    def periodic(self, initiator: EventNode, period: float,
                 terminator: EventNode,
                 name: Optional[str] = None) -> PeriodicNode:
        return self._shared(
            ("P", id(initiator), period, id(terminator)),
            lambda: PeriodicNode(self, initiator, period, terminator, name=name),
            name,
        )

    def periodic_star(self, initiator: EventNode, period: float,
                      terminator: EventNode,
                      name: Optional[str] = None) -> PeriodicStarNode:
        return self._shared(
            ("P*", id(initiator), period, id(terminator)),
            lambda: PeriodicStarNode(
                self, initiator, period, terminator, name=name
            ),
            name,
        )

    def plus(self, initiator: EventNode, delay: float,
             name: Optional[str] = None) -> PlusNode:
        return self._shared(
            ("PLUS", id(initiator), delay),
            lambda: PlusNode(self, initiator, delay, name=name),
            name,
        )

    # -- introspection -----------------------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-safe view of the graph for the monitor's ``/graph``.

        One entry per node: operator, children, subscriber counts,
        active parameter contexts with their reference counts,
        per-context occurrence (detection) counts, and the pending
        queue depth of the node's detection state.
        """
        nodes = []
        for node in list(self._nodes):
            nodes.append({
                "name": node.display_name,
                "operator": node.operator,
                "children": [c.display_name for c in node.children],
                "event_subscribers": len(node.event_subscribers),
                "rule_subscribers": [r.name for r in node.rule_subscribers],
                "contexts": {
                    ctx.value: node.context_count(ctx)
                    for ctx in node.active_contexts()
                },
                "detections": {
                    ctx.value: count
                    for ctx, count in sorted(
                        node.detections_by_context.items(),
                        key=lambda item: item[0].value,
                    )
                },
                "queue_depth": node.pending_depth(),
            })
        return {
            "nodes": nodes,
            "stats": {
                "nodes": len(self._nodes),
                "named": len(self._by_name),
                "nodes_created": self.stats.nodes_created,
                "shared_hits": self.stats.shared_hits,
                "detections": self.stats.detections,
                "propagations": self.stats.propagations,
            },
        }

    # -- maintenance -----------------------------------------------------------------------

    def flush(self, event_name: Optional[str] = None,
              ctx: Optional["ParameterContext"] = None) -> None:
        """Discard pending state — whole graph or one expression's subtree.

        "We provide a flush operation that can either flush the event
        graph selectively for an event expression or for the entire
        graph."
        """
        if event_name is None:
            for node in self._nodes:
                node.flush(ctx)
            return
        root = self.get(event_name)
        for node in self._subtree(root):
            node.flush(ctx)

    def _subtree(self, root: EventNode) -> Iterator[EventNode]:
        seen: set[int] = set()
        stack = [root]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            yield node
            stack.extend(node.children)

    def poll(self, now: float) -> None:
        for node in self.temporal_nodes():
            node.poll(now)
