"""Aperiodic operators: ``A(E1, E2, E3)`` and ``A*(E1, E2, E3)``.

``A`` "monitors cumulative occurrences of an event type within a
specified interval" — it signals for *each* E2 inside a window opened
by E1 and closed by E3. ``A*`` accumulates the E2s and signals *once*
when E3 closes the window; this is exactly the operator Sentinel uses
to rewrite deferred rules: ``A*(begin_txn, E, pre_commit_txn)`` "causes
a deferred rule to be executed exactly once even though its event may
be triggered a number of times in the course of that transaction".

Design choice (documented in DESIGN.md): ``A*`` signals at E3 only when
at least one E2 accumulated — a transaction in which the deferred
rule's event never occurred must not fire the rule.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.contexts import ParameterContext
from repro.core.events.base import EventNode
from repro.core.params import Occurrence

if TYPE_CHECKING:
    from repro.core.events.graph import EventGraph

_INITIATOR, _MIDDLE, _TERMINATOR = 0, 1, 2


class _Window:
    """One open interval started by an E1 occurrence."""

    __slots__ = ("initiator", "middles")

    def __init__(self, initiator: Occurrence):
        self.initiator = initiator
        self.middles: list[Occurrence] = []


class _AperiodicBase(EventNode):
    """Shared window bookkeeping for A and A*."""

    def __init__(
        self,
        graph: "EventGraph",
        initiator: EventNode,
        middle: EventNode,
        terminator: EventNode,
        name: Optional[str] = None,
    ):
        super().__init__(
            graph, children=(initiator, middle, terminator), name=name
        )

    @property
    def label(self) -> str:
        e1, e2, e3 = (c.label for c in self.children)
        return self.name or f"{self.operator}({e1}, {e2}, {e3})"

    def _new_state(self, ctx: ParameterContext) -> list[_Window]:
        return []

    def _open_window(self, windows: list[_Window], occurrence: Occurrence,
                     ctx: ParameterContext) -> None:
        if ctx in (ParameterContext.RECENT, ParameterContext.CUMULATIVE):
            # One window at a time: the newest initiator replaces it.
            windows.clear()
        windows.append(_Window(occurrence))


class AperiodicNode(_AperiodicBase):
    """``A(E1, E2, E3)`` — each E2 inside an open window signals."""

    operator = "A"

    def on_child(self, port: int, occurrence: Occurrence,
                 ctx: ParameterContext) -> None:
        windows = self.state(ctx)
        if windows is None:
            return
        if port == _INITIATOR:
            self._open_window(windows, occurrence, ctx)
            return
        if port == _MIDDLE:
            live = [w for w in windows if w.initiator.end < occurrence.end]
            if not live:
                return
            if ctx is ParameterContext.RECENT:
                self.signal(
                    self._compose((live[-1].initiator, occurrence)), ctx
                )
            elif ctx is ParameterContext.CHRONICLE:
                self.signal(
                    self._compose((live[0].initiator, occurrence)), ctx
                )
            elif ctx is ParameterContext.CONTINUOUS:
                for window in live:
                    self.signal(
                        self._compose((window.initiator, occurrence)), ctx
                    )
            elif ctx is ParameterContext.CUMULATIVE:
                window = live[-1]
                window.middles.append(occurrence)
                self.signal(
                    self._compose(
                        (window.initiator, *window.middles)
                    ),
                    ctx,
                )
            return
        # Terminator closes windows; A itself does not signal at E3.
        self._close(windows, occurrence, ctx)

    def _close(self, windows: list[_Window], occurrence: Occurrence,
               ctx: ParameterContext) -> None:
        closable = [w for w in windows if w.initiator.end < occurrence.end]
        if not closable:
            return
        if ctx is ParameterContext.CHRONICLE:
            windows.remove(closable[0])
        else:
            for window in closable:
                windows.remove(window)


class AperiodicStarNode(_AperiodicBase):
    """``A*(E1, E2, E3)`` — accumulate E2s, signal once at E3."""

    operator = "A*"

    def on_child(self, port: int, occurrence: Occurrence,
                 ctx: ParameterContext) -> None:
        windows = self.state(ctx)
        if windows is None:
            return
        if port == _INITIATOR:
            self._open_window(windows, occurrence, ctx)
            return
        if port == _MIDDLE:
            live = [w for w in windows if w.initiator.end < occurrence.end]
            if not live:
                return
            if ctx is ParameterContext.CONTINUOUS:
                for window in live:
                    window.middles.append(occurrence)
            elif ctx is ParameterContext.CHRONICLE:
                live[0].middles.append(occurrence)
            else:  # recent / cumulative keep a single window
                live[-1].middles.append(occurrence)
            return
        # Terminator: emit one occurrence per closing window with content.
        closable = [w for w in windows if w.initiator.end < occurrence.end]
        if not closable:
            return
        if ctx is ParameterContext.CHRONICLE:
            closing = [closable[0]]
        else:
            closing = closable
        if ctx is ParameterContext.CUMULATIVE and len(closing) > 1:
            merged = _Window(closing[0].initiator)
            for window in closing:
                merged.middles.extend(window.middles)
            closing = [merged]
        for window in closing:
            if window in windows:
                windows.remove(window)
            if window.middles:
                self.signal(
                    self._compose(
                        (window.initiator, *window.middles, occurrence)
                    ),
                    ctx,
                )
        if ctx is not ParameterContext.CHRONICLE:
            for window in closable:
                if window in windows:
                    windows.remove(window)
