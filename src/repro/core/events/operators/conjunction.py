"""AND (^) and OR (|) operators.

``AND(E1, E2)`` occurs when both operands have occurred, in either
order; it is symmetric, so either side can initiate and the other
terminates. ``OR(E1, E2)`` occurs whenever either operand occurs and
needs no stored state (identical in every context).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.core.contexts import ParameterContext
from repro.core.events.base import EventNode
from repro.core.params import Occurrence

if TYPE_CHECKING:
    from repro.core.events.graph import EventGraph


class _AndState:
    """Pending occurrences for each side of an AND."""

    __slots__ = ("sides",)

    def __init__(self):
        self.sides: tuple[deque, deque] = (deque(), deque())


class AndNode(EventNode):
    """``E1 ^ E2`` — both events, any order."""

    operator = "AND"

    def __init__(self, graph: "EventGraph", left: EventNode, right: EventNode,
                 name: Optional[str] = None):
        super().__init__(graph, children=(left, right), name=name)

    @property
    def label(self) -> str:
        return self.name or f"({self.children[0].label} ^ {self.children[1].label})"

    def _new_state(self, ctx: ParameterContext) -> _AndState:
        return _AndState()

    def on_child(self, port: int, occurrence: Occurrence,
                 ctx: ParameterContext) -> None:
        state = self.state(ctx)
        if state is None:
            return
        mine, other = state.sides[port], state.sides[1 - port]
        if ctx is ParameterContext.RECENT:
            # Most recent occurrence of each side is kept (not consumed);
            # every arrival pairs with the other side's latest.
            mine.clear()
            mine.append(occurrence)
            if other:
                self.signal(self._pair(port, occurrence, other[-1]), ctx)
        elif ctx is ParameterContext.CHRONICLE:
            mine.append(occurrence)
            while state.sides[0] and state.sides[1]:
                left = state.sides[0].popleft()
                right = state.sides[1].popleft()
                self.signal(self._compose((left, right)), ctx)
        elif ctx is ParameterContext.CONTINUOUS:
            # Every pending occurrence of the other side was an initiator;
            # this arrival terminates all of them at once.
            if other:
                for initiator in other:
                    self.signal(self._pair(port, occurrence, initiator), ctx)
                other.clear()
            else:
                mine.append(occurrence)
        elif ctx is ParameterContext.CUMULATIVE:
            mine.append(occurrence)
            if state.sides[0] and state.sides[1]:
                constituents = tuple(state.sides[0]) + tuple(state.sides[1])
                state.sides[0].clear()
                state.sides[1].clear()
                self.signal(self._compose(constituents), ctx)

    def _pair(self, port: int, arrived: Occurrence, stored: Occurrence):
        """Order constituents as (left, right) regardless of arrival side."""
        left, right = (stored, arrived) if port == 1 else (arrived, stored)
        return self._compose((left, right))


class OrNode(EventNode):
    """``E1 | E2`` — either event; stateless in every context."""

    operator = "OR"

    def __init__(self, graph: "EventGraph", left: EventNode, right: EventNode,
                 name: Optional[str] = None):
        super().__init__(graph, children=(left, right), name=name)

    @property
    def label(self) -> str:
        return self.name or f"({self.children[0].label} | {self.children[1].label})"

    def on_child(self, port: int, occurrence: Occurrence,
                 ctx: ParameterContext) -> None:
        self.signal(self._compose((occurrence,)), ctx)
