"""Temporal composite operators: ``P``, ``P*``, and ``PLUS``.

* ``P(E1, t, E3)`` — after an E1, signal every ``t`` time units until an
  E3 closes the window.
* ``P*(E1, t, E3)`` — accumulate the period boundaries and signal once
  at E3.
* ``PLUS(E1, t)`` — signal ``t`` time units after each E1.

These nodes are *temporal*: the detector polls them whenever the clock
advances (``detector.advance_time`` with a simulated clock, or
``detector.poll`` for wall clocks).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.contexts import ParameterContext
from repro.core.events.base import EventNode
from repro.core.params import Occurrence, PrimitiveOccurrence

if TYPE_CHECKING:
    from repro.core.events.graph import EventGraph

_INITIATOR, _TERMINATOR = 0, 1


def _tick(name: str, when: float) -> PrimitiveOccurrence:
    """Synthetic occurrence representing a period boundary."""
    return PrimitiveOccurrence(
        event_name=f"{name}$tick",
        at=when,
        class_name="$TEMPORAL",
        arguments=(("time", when),),
    )


class _PeriodicWindow:
    __slots__ = ("initiator", "next_due", "ticks")

    def __init__(self, initiator: Occurrence, period: float):
        self.initiator = initiator
        self.next_due = initiator.end + period
        self.ticks: list[PrimitiveOccurrence] = []


class _PeriodicBase(EventNode):
    is_temporal = True

    def __init__(
        self,
        graph: "EventGraph",
        initiator: EventNode,
        period: float,
        terminator: EventNode,
        name: Optional[str] = None,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = period
        super().__init__(graph, children=(initiator, terminator), name=name)

    @property
    def label(self) -> str:
        e1, e3 = (c.label for c in self.children)
        return self.name or f"{self.operator}({e1}, {self.period:g}, {e3})"

    def _new_state(self, ctx: ParameterContext) -> list[_PeriodicWindow]:
        return []

    def on_child(self, port: int, occurrence: Occurrence,
                 ctx: ParameterContext) -> None:
        windows = self.state(ctx)
        if windows is None:
            return
        if port == _INITIATOR:
            if ctx in (ParameterContext.RECENT, ParameterContext.CUMULATIVE):
                windows.clear()
            windows.append(_PeriodicWindow(occurrence, self.period))
            return
        # Terminator.
        closable = [w for w in windows if w.initiator.end < occurrence.end]
        if ctx is ParameterContext.CHRONICLE:
            closable = closable[:1]
        for window in closable:
            windows.remove(window)
            self._on_close(window, occurrence, ctx)

    def _on_close(self, window: _PeriodicWindow, terminator: Occurrence,
                  ctx: ParameterContext) -> None:
        """Hook: P discards, P* emits the accumulation."""

    def poll(self, now: float) -> None:
        for ctx in list(self.active_contexts()):
            windows = self.state(ctx)
            if not windows:
                continue
            for window in list(windows):
                while window.next_due <= now:
                    due = window.next_due
                    window.next_due = due + self.period
                    self._on_tick(window, _tick(self.display_name, due), ctx)


class PeriodicNode(_PeriodicBase):
    """``P(E1, t, E3)`` — fire on every period boundary in the window."""

    operator = "P"

    def _on_tick(self, window: _PeriodicWindow, tick: PrimitiveOccurrence,
                 ctx: ParameterContext) -> None:
        self.signal(self._compose((window.initiator, tick)), ctx)


class PeriodicStarNode(_PeriodicBase):
    """``P*(E1, t, E3)`` — accumulate ticks, fire once at E3."""

    operator = "P*"

    def _on_tick(self, window: _PeriodicWindow, tick: PrimitiveOccurrence,
                 ctx: ParameterContext) -> None:
        window.ticks.append(tick)

    def _on_close(self, window: _PeriodicWindow, terminator: Occurrence,
                  ctx: ParameterContext) -> None:
        if window.ticks:
            self.signal(
                self._compose(
                    (window.initiator, *window.ticks, terminator)
                ),
                ctx,
            )


class PlusNode(EventNode):
    """``PLUS(E1, t)`` — fire ``t`` time units after each E1."""

    operator = "PLUS"
    is_temporal = True

    def __init__(self, graph: "EventGraph", initiator: EventNode,
                 delay: float, name: Optional[str] = None):
        if delay <= 0:
            raise ValueError(f"delay must be positive, got {delay}")
        self.delay = delay
        super().__init__(graph, children=(initiator,), name=name)

    @property
    def label(self) -> str:
        return self.name or f"({self.children[0].label} + {self.delay:g})"

    def _new_state(self, ctx: ParameterContext) -> list[tuple[Occurrence, float]]:
        return []  # (initiator, due-time) pairs

    def on_child(self, port: int, occurrence: Occurrence,
                 ctx: ParameterContext) -> None:
        pending = self.state(ctx)
        if pending is None:
            return
        if ctx is ParameterContext.RECENT:
            pending.clear()
        pending.append((occurrence, occurrence.end + self.delay))

    def poll(self, now: float) -> None:
        for ctx in list(self.active_contexts()):
            pending = self.state(ctx)
            if not pending:
                continue
            due = [entry for entry in pending if entry[1] <= now]
            for entry in due:
                pending.remove(entry)
            for initiator, when in due:
                self.signal(
                    self._compose(
                        (initiator, _tick(self.display_name, when))
                    ),
                    ctx,
                )
