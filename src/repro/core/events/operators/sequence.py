"""SEQ (;) operator: ``E1 ; E2`` — E1 strictly before E2.

E1 initiates, E2 terminates; detection requires ``e1.end < e2.start``.
Context behaviour:

* recent — the latest E1 pairs with each E2 and is kept;
* chronicle — E1s queue FIFO, each E2 consumes the oldest;
* continuous — each E1 opens its own detection, one E2 closes them all;
* cumulative — all pending E1s fold into one occurrence at the next E2.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.core.contexts import ParameterContext
from repro.core.events.base import EventNode
from repro.core.params import Occurrence

if TYPE_CHECKING:
    from repro.core.events.graph import EventGraph

_LEFT, _RIGHT = 0, 1


class SeqNode(EventNode):
    """``E1 ; E2`` — sequence."""

    operator = "SEQ"

    def __init__(self, graph: "EventGraph", left: EventNode, right: EventNode,
                 name: Optional[str] = None):
        super().__init__(graph, children=(left, right), name=name)

    @property
    def label(self) -> str:
        return self.name or f"({self.children[0].label} ; {self.children[1].label})"

    def _new_state(self, ctx: ParameterContext) -> deque:
        return deque()  # pending initiators (E1 occurrences)

    def on_child(self, port: int, occurrence: Occurrence,
                 ctx: ParameterContext) -> None:
        pending = self.state(ctx)
        if pending is None:
            return
        if port == _LEFT:
            if ctx is ParameterContext.RECENT:
                pending.clear()
            pending.append(occurrence)
            return
        # Terminator: E2 arrived.
        eligible = [e1 for e1 in pending if e1.end < occurrence.start]
        if not eligible:
            return
        if ctx is ParameterContext.RECENT:
            # Latest initiator pairs; it is NOT consumed.
            self.signal(self._compose((eligible[-1], occurrence)), ctx)
        elif ctx is ParameterContext.CHRONICLE:
            oldest = eligible[0]
            pending.remove(oldest)
            self.signal(self._compose((oldest, occurrence)), ctx)
        elif ctx is ParameterContext.CONTINUOUS:
            for e1 in eligible:
                pending.remove(e1)
            for e1 in eligible:
                self.signal(self._compose((e1, occurrence)), ctx)
        elif ctx is ParameterContext.CUMULATIVE:
            for e1 in eligible:
                pending.remove(e1)
            self.signal(self._compose(tuple(eligible) + (occurrence,)), ctx)
