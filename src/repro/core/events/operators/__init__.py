"""Snoop composite-event operators, one module per operator family."""

from repro.core.events.operators.conjunction import AndNode, OrNode
from repro.core.events.operators.sequence import SeqNode
from repro.core.events.operators.negation import NotNode
from repro.core.events.operators.aperiodic import AperiodicNode, AperiodicStarNode
from repro.core.events.operators.periodic import (
    PeriodicNode,
    PeriodicStarNode,
    PlusNode,
)

__all__ = [
    "AndNode",
    "OrNode",
    "SeqNode",
    "NotNode",
    "AperiodicNode",
    "AperiodicStarNode",
    "PeriodicNode",
    "PeriodicStarNode",
    "PlusNode",
]
