"""NOT operator: ``NOT(E2)[E1, E3]`` — absence of E2 between E1 and E3.

E1 initiates a window; if no E2 occurs before the next E3, the NOT event
is detected at E3 with (E1, E3) as constituents. Any E2 occurrence
spoils *every* pending window (it happened after each open E1).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.core.contexts import ParameterContext
from repro.core.events.base import EventNode
from repro.core.params import Occurrence

if TYPE_CHECKING:
    from repro.core.events.graph import EventGraph

_INITIATOR, _MIDDLE, _TERMINATOR = 0, 1, 2


class NotNode(EventNode):
    """``NOT(E2)[E1, E3]``.

    Children are ordered ``(E1, E2, E3)``: initiator, forbidden event,
    terminator.
    """

    operator = "NOT"

    def __init__(
        self,
        graph: "EventGraph",
        initiator: EventNode,
        forbidden: EventNode,
        terminator: EventNode,
        name: Optional[str] = None,
    ):
        super().__init__(
            graph, children=(initiator, forbidden, terminator), name=name
        )

    @property
    def label(self) -> str:
        e1, e2, e3 = (c.label for c in self.children)
        return self.name or f"NOT({e2})[{e1}, {e3}]"

    def _new_state(self, ctx: ParameterContext) -> deque:
        return deque()  # unspoiled initiators

    def on_child(self, port: int, occurrence: Occurrence,
                 ctx: ParameterContext) -> None:
        pending = self.state(ctx)
        if pending is None:
            return
        if port == _INITIATOR:
            if ctx is ParameterContext.RECENT:
                pending.clear()
            pending.append(occurrence)
            return
        if port == _MIDDLE:
            # E2 spoils every open window.
            pending.clear()
            return
        # Terminator (E3).
        eligible = [e1 for e1 in pending if e1.end < occurrence.end]
        if not eligible:
            return
        if ctx is ParameterContext.RECENT:
            self.signal(self._compose((eligible[-1], occurrence)), ctx)
        elif ctx is ParameterContext.CHRONICLE:
            oldest = eligible[0]
            pending.remove(oldest)
            self.signal(self._compose((oldest, occurrence)), ctx)
        elif ctx is ParameterContext.CONTINUOUS:
            for e1 in eligible:
                pending.remove(e1)
            for e1 in eligible:
                self.signal(self._compose((e1, occurrence)), ctx)
        elif ctx is ParameterContext.CUMULATIVE:
            for e1 in eligible:
                pending.remove(e1)
            self.signal(self._compose(tuple(eligible) + (occurrence,)), ctx)
