"""Static analysis of event expressions.

The pre-processor can warn about constructs that parse and build but
rarely mean what the author intended. Each check returns
:class:`ExpressionWarning` entries; the CLI's ``check`` command prints
them, and applications can call :func:`analyze` directly.

Checks:

* ``self-bracketing-window`` — a windowed operator whose initiator and
  terminator are the same node (``A(e, x, e)``): port-delivery order
  makes the window close/reopen ambiguously; use distinct events.
* ``forbidden-equals-bound`` — ``NOT`` whose forbidden event is also
  its initiator or terminator: every window is spoiled by the event
  that opens/closes it.
* ``middle-equals-bound`` — ``A``/``A*`` whose middle event equals a
  window bound: occurrences do double duty.
* ``or-of-identical`` — ``E | E`` fires twice per occurrence (both
  ports deliver); usually a typo for a single subscription.
* ``unreachable-not-window`` — ``NOT`` with identical initiator and
  terminator can never satisfy strict ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.events.base import EventNode


@dataclass(frozen=True)
class ExpressionWarning:
    code: str
    node_label: str
    message: str

    def __str__(self) -> str:
        return f"[{self.code}] {self.node_label}: {self.message}"


def analyze(root: EventNode) -> list[ExpressionWarning]:
    """Collect warnings for ``root``'s whole expression tree."""
    warnings: list[ExpressionWarning] = []
    for node in _walk(root):
        warnings.extend(_check_node(node))
    return warnings


def analyze_graph(graph) -> list[ExpressionWarning]:
    """Analyze every expression in an event graph (deduplicated)."""
    seen: set[tuple] = set()
    warnings = []
    for node in graph.nodes():
        for warning in _check_node(node):
            key = (warning.code, warning.node_label)
            if key not in seen:
                seen.add(key)
                warnings.append(warning)
    return warnings


def _walk(root: EventNode) -> Iterator[EventNode]:
    stack = [root]
    seen: set[int] = set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        stack.extend(node.children)


def _check_node(node: EventNode) -> list[ExpressionWarning]:
    warnings = []
    operator = node.operator
    children = node.children
    if operator in ("A", "A*") and len(children) == 3:
        initiator, middle, terminator = children
        if initiator is terminator:
            warnings.append(ExpressionWarning(
                "self-bracketing-window", node.label,
                "initiator and terminator are the same event; window "
                "open/close order is ambiguous — use distinct events",
            ))
        if middle in (initiator, terminator):
            warnings.append(ExpressionWarning(
                "middle-equals-bound", node.label,
                "the accumulated event is also a window bound; "
                "occurrences will do double duty",
            ))
    elif operator == "NOT" and len(children) == 3:
        initiator, forbidden, terminator = children
        if initiator is terminator:
            warnings.append(ExpressionWarning(
                "unreachable-not-window", node.label,
                "initiator and terminator are the same event; the "
                "window can never complete",
            ))
        if forbidden in (initiator, terminator):
            warnings.append(ExpressionWarning(
                "forbidden-equals-bound", node.label,
                "the forbidden event is also a window bound; every "
                "window spoils itself",
            ))
    elif operator in ("P", "P*") and len(children) == 2:
        if children[0] is children[1]:
            warnings.append(ExpressionWarning(
                "self-bracketing-window", node.label,
                "initiator and terminator are the same event",
            ))
    elif operator == "OR" and len(children) == 2:
        if children[0] is children[1]:
            warnings.append(ExpressionWarning(
                "or-of-identical", node.label,
                "both operands are the same event; each occurrence "
                "fires twice (once per port)",
            ))
    return warnings
