"""Leaf nodes: primitive method events, temporal events, explicit events.

The detector maintains separate lists for method-based, temporal, and
explicit events (paper §3.2.2). A method event is identified by
``(class name, method name, modifier)`` and may be class-level (fires
for every instance) or instance-level (fires only for one object) —
"the specification of class/instance at the primitive event level
allows us to have event expressions with class level as well as
instance level events".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.core.contexts import ParameterContext
from repro.core.events.base import EventNode
from repro.core.params import EventModifier, PrimitiveOccurrence

if TYPE_CHECKING:
    from repro.core.events.graph import EventGraph


class PrimitiveEventNode(EventNode):
    """A method event: before/after invocation of a method of a class."""

    operator = "PRIMITIVE"

    def __init__(
        self,
        graph: "EventGraph",
        name: str,
        class_name: str,
        modifier: EventModifier,
        method_name: str,
        instance: Any = None,
        snapshot_state: bool = False,
    ):
        self.class_name = class_name
        self.modifier = modifier
        self.method_name = method_name
        self.instance = instance  # None => class-level event
        #: record a copy of the object's state in each occurrence
        #: (approximates the object versioning the paper defers).
        self.snapshot_state = snapshot_state
        super().__init__(graph, children=(), name=name)

    @property
    def label(self) -> str:
        scope = "" if self.instance is None else f"@{self.instance!r}"
        return (
            f"{self.class_name}{scope}.{self.method_name}"
            f":{self.modifier.value}"
        )

    @property
    def is_class_level(self) -> bool:
        return self.instance is None

    def matches(
        self,
        class_name: str,
        method_name: str,
        modifier: EventModifier,
        instance: Any,
    ) -> bool:
        """Signature check performed when the detector routes a Notify.

        "Once a primitive event node is notified it checks the method
        signature with the one that has been sent" — plus the instance
        identity for instance-level events.
        """
        if self.class_name != class_name:
            return False
        if self.method_name != method_name:
            return False
        if self.modifier is not modifier:
            return False
        if self.instance is not None and self.instance != instance:
            return False
        return True

    def occur(self, occurrence: PrimitiveOccurrence) -> None:
        """Fire this primitive event in every active context."""
        for ctx in self.active_contexts():
            self.signal(occurrence, ctx)


class ExplicitEventNode(EventNode):
    """An abstract event raised explicitly by the application.

    Explicit events have no associated method; the application calls
    ``detector.raise_event(name, **params)``. They support
    inter-application (global) events: the global detector re-raises a
    remote event as an explicit event locally.
    """

    operator = "EXPLICIT"

    def __init__(self, graph: "EventGraph", name: str):
        super().__init__(graph, children=(), name=name)

    def occur(self, occurrence: PrimitiveOccurrence) -> None:
        for ctx in self.active_contexts():
            self.signal(occurrence, ctx)


class TemporalEventNode(EventNode):
    """An absolute or recurring temporal event.

    ``at`` fires once when the clock reaches the given time; ``every``
    fires repeatedly with the given period (first firing one period
    after activation). The detector polls temporal nodes whenever the
    clock advances.
    """

    operator = "TEMPORAL"
    is_temporal = True

    def __init__(
        self,
        graph: "EventGraph",
        name: str,
        at: Optional[float] = None,
        every: Optional[float] = None,
    ):
        if (at is None) == (every is None):
            raise ValueError("specify exactly one of at= or every=")
        if every is not None and every <= 0:
            raise ValueError(f"period must be positive, got {every}")
        self.at = at
        self.every = every
        self._fired = False
        self._next_due: Optional[float] = None
        super().__init__(graph, children=(), name=name)

    def add_context(self, ctx: ParameterContext, count: int = 1) -> None:
        if self._next_due is None and self.every is not None:
            self._next_due = self.graph.clock.now() + self.every
        super().add_context(ctx, count)

    def poll(self, now: float) -> None:
        if self.at is not None:
            if not self._fired and now >= self.at:
                self._fired = True
                self._emit(self.at)
            return
        # Recurring: catch up on every period boundary passed.
        while self._next_due is not None and now >= self._next_due:
            due = self._next_due
            self._next_due = due + self.every
            self._emit(due)

    def _emit(self, when: float) -> None:
        occurrence = PrimitiveOccurrence(
            event_name=self.display_name,
            at=when,
            class_name="$TEMPORAL",
            arguments=(("time", when),),
        )
        for ctx in self.active_contexts():
            self.signal(occurrence, ctx)

    def flush(self, ctx: Optional[ParameterContext] = None) -> None:
        # Temporal schedules survive transaction flushes; only pending
        # composite state (none here) would be discarded.
        super().flush(ctx)
