"""Event graph nodes: primitives plus the Snoop operators.

Leaf nodes correspond to primitive or external events; internal nodes
correspond to event sub-expressions (paper §3.2.2). Each node keeps a
subscriber list — parent operator nodes and rules — and per-context
detection state enabled by reference counters.
"""

from repro.core.events.algebra import E
from repro.core.events.base import EventNode
from repro.core.events.primitive import (
    ExplicitEventNode,
    PrimitiveEventNode,
    TemporalEventNode,
)
from repro.core.events.operators import (
    AndNode,
    AperiodicNode,
    AperiodicStarNode,
    NotNode,
    OrNode,
    PeriodicNode,
    PeriodicStarNode,
    PlusNode,
    SeqNode,
)
from repro.core.events.graph import EventGraph

__all__ = [
    "E",
    "EventNode",
    "PrimitiveEventNode",
    "TemporalEventNode",
    "ExplicitEventNode",
    "AndNode",
    "OrNode",
    "SeqNode",
    "NotNode",
    "AperiodicNode",
    "AperiodicStarNode",
    "PeriodicNode",
    "PeriodicStarNode",
    "PlusNode",
    "EventGraph",
]
