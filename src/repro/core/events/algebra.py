"""The Snoop operator algebra: event expressions as Python expressions.

The paper writes composite events as *expressions* — ``E1 ∧ E2``,
``E1 ; E2``, ``¬(E2)[E1, E3]`` — not as builder calls. This module
gives :class:`~repro.core.events.base.EventNode` that surface:

* ``a & b``  → AND (both occur, in any order)
* ``a | b``  → OR  (either occurs)
* ``a >> b`` → SEQ (``a`` strictly before ``b``)

The non-binary operators live on the :class:`E` namespace so they read
like the paper's notation::

    from repro.core.events import E

    audit = E.not_(deposit, audit_run, close)     # NOT
    window = E.A(open_, tick, close)              # aperiodic
    sampled = E.P(open_, 5.0, close)              # periodic
    late = E.plus(deadline, 30.0)                 # PLUS

Every spelling funnels into the same sharing-aware
:class:`~repro.core.events.graph.EventGraph` factories, so ``a & b``
returns the *same* node as ``graph.and_(a, b)`` built earlier — the
hash-consed graph is the single source of truth and operator syntax is
pure surface.

Beware Python precedence: ``>>`` binds tighter than ``&``, which binds
tighter than ``|``. ``a >> b & c`` means ``(a >> b) & c``; parenthesize
mixed expressions rather than memorizing the table.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

from repro.errors import EventError

if TYPE_CHECKING:
    from repro.core.events.base import EventNode

EventRef = Union["EventNode", str]


def _graph_of(*candidates: EventRef):
    """The event graph shared by the expression's node operands."""
    from repro.core.events.base import EventNode

    graph = None
    for candidate in candidates:
        if not isinstance(candidate, EventNode):
            continue
        if graph is None:
            graph = candidate.graph
        elif candidate.graph is not graph:
            raise EventError(
                "cannot combine events from different event graphs"
            )
    if graph is None:
        raise EventError(
            "event expressions need at least one EventNode operand "
            "(string names cannot locate the graph on their own)"
        )
    return graph


def _resolve(graph, ref: EventRef) -> "EventNode":
    return graph.get(ref) if isinstance(ref, str) else ref


class E:
    """Namespace for the non-binary Snoop operators.

    Operands may be :class:`EventNode` instances or event names
    (resolved through the graph of the first node operand; at least
    one operand must be a node).
    """

    @staticmethod
    def and_(left: EventRef, right: EventRef,
             name: Optional[str] = None) -> "EventNode":
        """``E1 ∧ E2`` — prefer the ``left & right`` spelling."""
        graph = _graph_of(left, right)
        return graph.and_(_resolve(graph, left), _resolve(graph, right), name)

    @staticmethod
    def or_(left: EventRef, right: EventRef,
            name: Optional[str] = None) -> "EventNode":
        """``E1 ∨ E2`` — prefer the ``left | right`` spelling."""
        graph = _graph_of(left, right)
        return graph.or_(_resolve(graph, left), _resolve(graph, right), name)

    @staticmethod
    def seq(left: EventRef, right: EventRef,
            name: Optional[str] = None) -> "EventNode":
        """``E1 ; E2`` — prefer the ``left >> right`` spelling."""
        graph = _graph_of(left, right)
        return graph.seq(_resolve(graph, left), _resolve(graph, right), name)

    @staticmethod
    def not_(initiator: EventRef, forbidden: EventRef,
             terminator: EventRef,
             name: Optional[str] = None) -> "EventNode":
        """``¬(forbidden)[initiator, terminator]``."""
        graph = _graph_of(initiator, forbidden, terminator)
        return graph.not_(
            _resolve(graph, initiator), _resolve(graph, forbidden),
            _resolve(graph, terminator), name,
        )

    @staticmethod
    def A(initiator: EventRef, middle: EventRef, terminator: EventRef,
          name: Optional[str] = None) -> "EventNode":
        """``A(E1, E2, E3)`` — aperiodic: each E2 inside [E1, E3)."""
        graph = _graph_of(initiator, middle, terminator)
        return graph.aperiodic(
            _resolve(graph, initiator), _resolve(graph, middle),
            _resolve(graph, terminator), name,
        )

    @staticmethod
    def A_star(initiator: EventRef, middle: EventRef, terminator: EventRef,
               name: Optional[str] = None) -> "EventNode":
        """``A*(E1, E2, E3)`` — cumulative aperiodic, fires at E3."""
        graph = _graph_of(initiator, middle, terminator)
        return graph.aperiodic_star(
            _resolve(graph, initiator), _resolve(graph, middle),
            _resolve(graph, terminator), name,
        )

    @staticmethod
    def P(initiator: EventRef, period: float, terminator: EventRef,
          name: Optional[str] = None) -> "EventNode":
        """``P(E1, t, E3)`` — periodic: a tick every ``period`` in [E1, E3)."""
        graph = _graph_of(initiator, terminator)
        return graph.periodic(
            _resolve(graph, initiator), period,
            _resolve(graph, terminator), name,
        )

    @staticmethod
    def P_star(initiator: EventRef, period: float, terminator: EventRef,
               name: Optional[str] = None) -> "EventNode":
        """``P*(E1, t, E3)`` — cumulative periodic, fires at E3."""
        graph = _graph_of(initiator, terminator)
        return graph.periodic_star(
            _resolve(graph, initiator), period,
            _resolve(graph, terminator), name,
        )

    @staticmethod
    def plus(initiator: EventRef, delay: float,
             name: Optional[str] = None) -> "EventNode":
        """``E1 + t`` — fires ``delay`` after each E1."""
        graph = _graph_of(initiator)
        return graph.plus(_resolve(graph, initiator), delay, name)
