"""The REACTIVE base class and method-event wrappers.

"Any class whose events are used in rules ... need to be reactive,
i.e., a subclass of the REACTIVE class." In the original system the
Sentinel pre-processor renamed each event-generating method to
``user_<name>`` and generated a wrapper of the original name that
collects the parameters into a PARA_LIST and calls ``Notify`` before
and/or after invoking the user method (paper §3.2.1). Here the same
transformation happens at class-creation time: methods decorated with
:func:`event` are replaced by wrappers doing exactly those calls, and
the original is kept as ``user_<name>``.

Which detector receives the notifications? One local event detector
exists per application; reactive objects signal the *current* detector,
set with :func:`set_current_detector` (the Sentinel facade does this).
Without a current detector, wrapped methods behave passively.
"""

from __future__ import annotations

import functools
import inspect
import itertools
import threading
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.detector import LocalEventDetector
from repro.core.params import EventModifier

_current = threading.local()
_reactive_ids = itertools.count(1)


def set_current_detector(detector: Optional[LocalEventDetector]) -> None:
    """Route subsequent reactive-method notifications to ``detector``."""
    _current.detector = detector


def get_current_detector() -> Optional[LocalEventDetector]:
    return getattr(_current, "detector", None)


@dataclass(frozen=True)
class EventDeclaration:
    """One ``event begin(x) && end(y) method`` interface entry."""

    method_name: str
    begin_name: Optional[str]
    end_name: Optional[str]

    def names(self) -> list[tuple[str, EventModifier]]:
        result = []
        if self.begin_name:
            result.append((self.begin_name, EventModifier.BEGIN))
        if self.end_name:
            result.append((self.end_name, EventModifier.END))
        return result


def event(begin: Optional[str] = None, end: Optional[str] = None):
    """Declare a method as a primitive event generator.

    ``@event(end="e1")`` corresponds to ``event end(e1) method``;
    ``@event(begin="e2", end="e3")`` to ``event begin(e2) && end(e3)``.
    ``@event()`` declares the method an (anonymous) event generator with
    end-of-method semantics, the paper's default ("by default end of a
    method is taken to be the event").
    """

    def decorate(fn: Callable) -> Callable:
        declared_end = end
        if begin is None and end is None:
            declared_end = f"{fn.__name__}$end"
        fn.__sentinel_event__ = EventDeclaration(
            method_name=fn.__name__, begin_name=begin, end_name=declared_end
        )
        return fn

    return decorate


def _collect_arguments(fn: Callable, args: tuple, kwargs: dict) -> dict:
    """Bind actual arguments to parameter names (the PARA_LIST content)."""
    try:
        bound = inspect.signature(fn).bind(*args, **kwargs)
        bound.apply_defaults()
        return {k: v for k, v in bound.arguments.items() if k != "self"}
    except TypeError:
        # Let the user method raise its own, better error.
        return {}


def _make_wrapper(fn: Callable, declaration: EventDeclaration) -> Callable:
    """Generate the wrapper method (the post-processor's output).

    The notification names the instance's *dynamic* class so the
    detector can honor the inheritance property by walking the MRO.
    """
    signature = _method_signature(fn)

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        detector = get_current_detector()
        if detector is None:
            return fn(self, *args, **kwargs)
        # Parameters are collected in a linked list (PARA_LIST). The
        # notification carries the instance's *dynamic* class; the
        # detector matches up the MRO, giving the paper's inheritance
        # property (a class-level rule fires for subclass instances).
        arguments = _collect_arguments(wrapper, (self,) + args, kwargs)
        dynamic_class = type(self).__name__
        if declaration.begin_name:
            detector.notify(self, dynamic_class, signature,
                            EventModifier.BEGIN, arguments)
        # The original (renamed) user method is invoked.
        result = fn(self, *args, **kwargs)
        if declaration.end_name:
            detector.notify(self, dynamic_class, signature,
                            EventModifier.END, arguments)
        return result

    wrapper.__sentinel_wrapped__ = True
    return wrapper


def _method_signature(fn: Callable) -> str:
    """The method identifier used for event matching.

    The paper matches full C++ signatures ("void set_price(float
    price)"); in Python the method name is unambiguous within a class.
    """
    return fn.__name__


class ReactiveMeta(type):
    """Wraps event-declared methods and records the event interface."""

    def __new__(mcls, name, bases, namespace, **kwargs):
        declarations: dict[str, EventDeclaration] = {}
        for base in bases:
            declarations.update(getattr(base, "__sentinel_events__", {}))
        for attr, value in list(namespace.items()):
            declaration = getattr(value, "__sentinel_event__", None)
            if declaration is None:
                continue
            declarations[attr] = declaration
            # Keep the original under user_<name>, as the pre-processor did.
            namespace[f"user_{attr}"] = value
            namespace[attr] = _make_wrapper(value, declaration)
        cls = super().__new__(mcls, name, bases, namespace, **kwargs)
        cls.__sentinel_events__ = declarations
        return cls


class Reactive(metaclass=ReactiveMeta):
    """Base class for event-generating objects (the REACTIVE class).

    Subclasses declare primitive events on methods with :func:`event`;
    invoking those methods notifies the current local event detector.
    Each instance gets a stable ``reactive_id`` used as its identity in
    event parameters when it has no persistent OID.
    """

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)

    @property
    def reactive_id(self) -> int:
        rid = getattr(self, "_reactive_id", None)
        if rid is None:
            rid = next(_reactive_ids)
            object.__setattr__(self, "_reactive_id", rid)
        return rid

    @classmethod
    def event_interface(cls) -> dict[str, EventDeclaration]:
        """The declared event interface (method -> declaration)."""
        return dict(cls.__sentinel_events__)

    @classmethod
    def declared_event_names(cls) -> dict[str, tuple[str, EventModifier]]:
        """Map declared event name -> (method, modifier).

        Lets an application register the class-level primitive events
        with a detector using the names from the class definition
        (``STOCK.e1`` style).
        """
        result: dict[str, tuple[str, EventModifier]] = {}
        for method, declaration in cls.__sentinel_events__.items():
            for event_name, modifier in declaration.names():
                result[event_name] = (method, modifier)
        return result

    @classmethod
    def register_events(
        cls,
        detector: LocalEventDetector,
        prefix: Optional[str] = None,
        instance: Any = None,
    ) -> dict[str, Any]:
        """Create primitive event nodes for every declared event.

        Node names are ``<prefix>_<event>`` with the class name as the
        default prefix, matching the paper's generated ``STOCK_e1``
        naming. Pass ``instance`` for instance-level events.
        """
        prefix = prefix if prefix is not None else cls.__name__
        target = instance if instance is not None else cls.__name__
        nodes = {}
        for event_name, (method, modifier) in cls.declared_event_names().items():
            node_name = f"{prefix}_{event_name}" if prefix else event_name
            nodes[event_name] = detector.primitive_event(
                node_name, target, modifier, method
            )
        return nodes
