"""Parameter contexts: how constituent occurrences are grouped.

From the paper (and the companion VLDB'94 semantics paper), a composite
event can be detected in four contexts, which decide *which* occurrences
of constituent events pair up and what the resulting parameter list
contains:

* **RECENT** — only the most recent occurrence of an initiating event is
  used; it is not consumed by detection (a newer occurrence replaces
  it). Default, "due to its low storage requirements".
* **CHRONICLE** — occurrences pair in strict FIFO (chronological) order
  and each occurrence is consumed by the detection it participates in.
* **CONTINUOUS** — every initiator starts its own detection; one
  terminator can complete *all* currently open detections at once.
* **CUMULATIVE** — all occurrences of the constituents accumulate until
  the composite event is detected, which yields a single occurrence
  carrying everything; the accumulated state is then flushed.
"""

from __future__ import annotations

import enum


class ParameterContext(enum.Enum):
    RECENT = "recent"
    CHRONICLE = "chronicle"
    CONTINUOUS = "continuous"
    CUMULATIVE = "cumulative"

    @classmethod
    def parse(cls, text: str) -> "ParameterContext":
        """Accept the spellings used in Sentinel rule specifications."""
        try:
            return cls[text.strip().upper()]
        except KeyError:
            valid = ", ".join(c.name for c in cls)
            raise ValueError(
                f"unknown parameter context {text!r}; expected one of {valid}"
            ) from None


#: The paper's default ("the recent context is assumed to be the default
#: due to its low storage requirements").
DEFAULT_CONTEXT = ParameterContext.RECENT

ALL_CONTEXTS = tuple(ParameterContext)
