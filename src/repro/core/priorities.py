"""Named priority classes for rule scheduling.

From the paper (§3.1): "We use priority classes for specifying rule
priority. An arbitrary number of priority classes can be defined and
totally ordered. A rule is assigned to a priority class by indicating
its number or the name of the class. ... This approach allows us to
change rule priority categories based on the context or inherit
priorities from users/applications."

A :class:`PriorityScheme` maps class names to ranks (higher runs
first). Rules may carry either a plain integer priority or a class
name; the scheduler resolves both through the scheme at dispatch time,
so re-ranking a class re-orders *future* executions of every rule in
it without touching the rules ("change rule priority categories based
on the context").
"""

from __future__ import annotations

import threading
from typing import Union

from repro.errors import RuleError

Priority = Union[int, str]


class PriorityScheme:
    """A total order over named priority classes."""

    def __init__(self):
        self._ranks: dict[str, int] = {}
        self._lock = threading.Lock()

    def define(self, name: str, rank: int) -> None:
        """Create or re-rank a priority class (higher rank runs first)."""
        if not isinstance(rank, int):
            raise RuleError(f"priority rank must be an int, got {rank!r}")
        with self._lock:
            self._ranks[name] = rank

    def define_ordered(self, names_high_to_low: list[str],
                       top: int = 1000, step: int = 10) -> None:
        """Define several classes at once, first name highest."""
        for index, name in enumerate(names_high_to_low):
            self.define(name, top - index * step)

    def undefine(self, name: str) -> None:
        with self._lock:
            self._ranks.pop(name, None)

    def rank(self, priority: Priority) -> int:
        """Resolve a rule's priority (int passthrough, name lookup)."""
        if isinstance(priority, bool):
            raise RuleError("priority cannot be a bool")
        if isinstance(priority, int):
            return priority
        with self._lock:
            if priority not in self._ranks:
                raise RuleError(
                    f"priority class {priority!r} is not defined; "
                    f"known classes: {sorted(self._ranks) or 'none'}"
                )
            return self._ranks[priority]

    def known(self, name: str) -> bool:
        with self._lock:
            return name in self._ranks

    def classes(self) -> dict[str, int]:
        with self._lock:
            return dict(self._ranks)
