"""ECA rules and the rule manager.

A Sentinel rule is ``rule name(event, condition, action [, context,
coupling, priority, trigger mode])`` (paper §3.1). Conditions are
side-effect-free boolean functions; actions are arbitrary functions.
Both receive the triggering occurrence (its parameter list) — or may
take no arguments at all.

Rules can be specified at class-definition time or inside an
application, enabled/disabled at run time, and defined over previously
named events; the trigger mode decides whether pre-existing constituent
occurrences may participate (``PREVIOUS``) or only those from the
definition instant onward (``NOW``, the default).
"""

from __future__ import annotations

import enum
import inspect
import threading
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.core.contexts import DEFAULT_CONTEXT, ParameterContext
from repro.core.events.base import EventNode
from repro.core.params import Occurrence
from repro.errors import DuplicateRule, RuleError, UnknownRule

if TYPE_CHECKING:
    from repro.core.detector import LocalEventDetector

Condition = Callable[..., bool]
Action = Callable[..., None]


class CouplingMode(enum.Enum):
    """When the condition-action pair runs relative to the event.

    * IMMEDIATE — right after the event, suspending the application.
    * DEFERRED — at the end of the triggering transaction (rewritten to
      an immediate rule on ``A*(begin_txn, E, pre_commit_txn)``).
    * DETACHED — in a separate top-level transaction.
    """

    IMMEDIATE = "immediate"
    DEFERRED = "deferred"
    DETACHED = "detached"

    @classmethod
    def parse(cls, text: str) -> "CouplingMode":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            valid = ", ".join(c.name for c in cls)
            raise ValueError(
                f"unknown coupling mode {text!r}; expected one of {valid}"
            ) from None


class TriggerMode(enum.Enum):
    """Which event occurrences may trigger the rule (paper §3.1).

    * NOW — only constituent occurrences from rule-definition time on.
    * PREVIOUS — occurrences that temporally precede the rule
      definition are acceptable too.
    """

    NOW = "now"
    PREVIOUS = "previous"

    @classmethod
    def parse(cls, text: str) -> "TriggerMode":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown trigger mode {text!r}; expected NOW or PREVIOUS"
            ) from None


class RuleScope(enum.Enum):
    """Rule visibility and modification rights.

    The paper lists "expanding the rule management support to public,
    private, and protected rules" as future work; this implements the
    natural semantics:

    * PUBLIC — visible to everyone; anyone may enable/disable/delete.
    * PROTECTED — visible to everyone; only the owner may modify.
    * PRIVATE — visible and modifiable only by the owner.
    """

    PUBLIC = "public"
    PROTECTED = "protected"
    PRIVATE = "private"

    @classmethod
    def parse(cls, text: str) -> "RuleScope":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            valid = ", ".join(c.name for c in cls)
            raise ValueError(
                f"unknown rule scope {text!r}; expected one of {valid}"
            ) from None


DEFAULT_PRIORITY = 1

#: execution lanes a rule may select (``None`` at creation means
#: auto-detect from the action: ``async def`` actions go async)
EXECUTOR_LANES = ("sync", "async")


def resolve_executor(executor: Optional[str], condition: Callable,
                     action: Callable, name: str) -> str:
    """Validate/auto-detect the execution lane for a rule.

    Runs on the *raw* callables, before :func:`_adapt` wraps them (the
    zero-arg lambda wrapper would hide ``iscoroutinefunction``).
    """
    if inspect.iscoroutinefunction(condition):
        raise RuleError(
            f"rule {name!r} condition must be synchronous (conditions "
            f"are side-effect-free and evaluated inline); only the "
            f"action may be a coroutine"
        )
    action_is_coro = inspect.iscoroutinefunction(action)
    if executor is None:
        return "async" if action_is_coro else "sync"
    if executor not in EXECUTOR_LANES:
        raise RuleError(
            f"executor must be one of {EXECUTOR_LANES}, got {executor!r}"
        )
    if executor == "sync" and action_is_coro:
        raise RuleError(
            f"rule {name!r} has a coroutine action; pass "
            f"executor='async' (or leave executor unset to auto-detect)"
        )
    return executor


def _adapt(fn: Callable, what: str) -> Callable[[Occurrence], Any]:
    """Wrap a user callable so it can be invoked with the occurrence.

    Zero-argument callables are called bare; anything else receives the
    triggering occurrence. (The paper's condition/action functions are
    global C++ functions that reach parameters through the passed list.)
    """
    if not callable(fn):
        raise RuleError(f"{what} must be callable, got {type(fn).__name__}")
    try:
        takes_arg = bool(inspect.signature(fn).parameters)
    except (TypeError, ValueError):
        takes_arg = True
    if takes_arg:
        return fn
    return lambda occurrence: fn()


def always(occurrence: Occurrence) -> bool:
    """The trivially-true condition (event-action rules)."""
    return True


def reject_positional_rule_args(legacy_positional: tuple) -> None:
    """Hard stop for the pre-keyword ``rule()`` calling convention.

    ``rule(name, event, condition, action)`` accepted the condition and
    action positionally through one deprecation release; the shim is
    gone and the keyword-first signature is the only one. The error
    names the migration tool so old call sites can be rewritten
    mechanically.
    """
    if legacy_positional:
        from repro.errors import RemovedAPIError

        raise RemovedAPIError(
            f"rule() no longer accepts {len(legacy_positional)} positional "
            "condition/action argument(s); the deprecated positional "
            "signature was removed. Call "
            "rule(name, event, condition=..., action=...) instead — "
            "`python tools/migrate_rule_calls.py FILES...` rewrites old "
            "call sites automatically"
        )


class Rule:
    """One ECA rule, subscribed to the root node of its event graph."""

    def __init__(
        self,
        name: str,
        event: EventNode,
        condition: Condition,
        action: Action,
        context: ParameterContext = DEFAULT_CONTEXT,
        coupling: CouplingMode = CouplingMode.IMMEDIATE,
        priority: int = DEFAULT_PRIORITY,
        trigger_mode: TriggerMode = TriggerMode.NOW,
        scope: RuleScope = RuleScope.PUBLIC,
        owner: Optional[str] = None,
        executor: str = "sync",
    ):
        self.name = name
        self.event = event
        self.condition = _adapt(condition, "condition")
        self.action = _adapt(action, "action")
        self.context = context
        self.coupling = coupling
        self.priority = priority
        self.trigger_mode = trigger_mode
        self.scope = scope
        self.owner = owner
        #: execution lane — "sync" rules ride the configured executor,
        #: "async" rules run as tasks on the scheduler's asyncio lane
        self.executor = executor
        self.enabled = False
        self.since: float = 0.0  # set at subscription for NOW filtering
        # Statistics, maintained by the scheduler.
        self.triggered_count = 0
        self.executed_count = 0

    # -- subscription ----------------------------------------------------------

    def subscribe(self, now: float) -> None:
        """Attach to the event node and activate this rule's context."""
        if self.enabled:
            return
        self.since = now
        self.event.rule_subscribers.append(self)
        self.event.add_context(self.context)  # bumps graph.version
        self.enabled = True
        self.event.graph.version += 1

    def unsubscribe(self) -> None:
        """Detach from the event node, decrementing context counters."""
        if not self.enabled:
            return
        if self in self.event.rule_subscribers:
            self.event.rule_subscribers.remove(self)
        self.event.remove_context(self.context)  # bumps graph.version
        self.enabled = False
        self.event.graph.version += 1

    # -- triggering ---------------------------------------------------------------

    def wants(self, ctx: ParameterContext, occurrence: Occurrence) -> bool:
        """Does a detection in ``ctx`` trigger this rule?"""
        if not self.enabled or ctx is not self.context:
            return False
        if self.trigger_mode is TriggerMode.NOW and occurrence.start <= self.since:
            # NOW: all constituents must strictly postdate the rule
            # definition (the clock ticks before each new occurrence, so
            # genuinely fresh events always pass).
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"Rule({self.name!r}, {self.event.display_name}, "
            f"{self.context.name}, {self.coupling.name}, p{self.priority})"
        )


class RuleManager:
    """Registers, enables, disables, and deletes rules.

    Deferred-mode rules are rewritten at registration (paper §2.3):
    ``rule R(E, DEFERRED)`` becomes an immediate-coupled rule on
    ``A*(begin_transaction, E, pre_commit_transaction)``.
    """

    def __init__(self, detector: "LocalEventDetector"):
        self._detector = detector
        self._rules: dict[str, Rule] = {}
        self._lock = threading.RLock()

    def create(
        self,
        name: str,
        event: EventNode | str,
        condition: Condition,
        action: Action,
        context: ParameterContext | str = DEFAULT_CONTEXT,
        coupling: CouplingMode | str = CouplingMode.IMMEDIATE,
        priority: int | str = DEFAULT_PRIORITY,
        trigger_mode: TriggerMode | str = TriggerMode.NOW,
        enabled: bool = True,
        scope: RuleScope | str = RuleScope.PUBLIC,
        owner: Optional[str] = None,
        executor: Optional[str] = None,
    ) -> Rule:
        """Create and (by default) enable a rule; deferred-coupled rules
        are rewritten onto ``A*(begin_txn, E, pre_commit_txn)`` here.

        ``executor`` selects the execution lane ("sync" or "async");
        ``None`` auto-detects — ``async def`` actions go to the asyncio
        lane, everything else to the configured sync executor.
        """
        # Before _adapt: the wrapper would hide iscoroutinefunction.
        executor = resolve_executor(executor, condition, action, name)
        if isinstance(event, str):
            event = self._detector.graph.get(event)
        # Named priority classes must exist when the rule is defined
        # (their rank may still change later).
        self._detector.priorities.rank(priority)
        if isinstance(context, str):
            context = ParameterContext.parse(context)
        if isinstance(coupling, str):
            coupling = CouplingMode.parse(coupling)
        if isinstance(trigger_mode, str):
            trigger_mode = TriggerMode.parse(trigger_mode)
        if isinstance(scope, str):
            scope = RuleScope.parse(scope)
        if scope is not RuleScope.PUBLIC and owner is None:
            raise RuleError(
                f"{scope.name.lower()} rule {name!r} needs an owner"
            )
        with self._lock:
            if name in self._rules:
                raise DuplicateRule(f"rule {name!r} is already defined")
            if coupling is CouplingMode.DEFERRED:
                from repro.core.deferred import rewrite_deferred

                event = rewrite_deferred(self._detector, name, event)
            rule = Rule(
                name,
                event,
                condition,
                action,
                context=context,
                coupling=coupling,
                priority=priority,
                trigger_mode=trigger_mode,
                scope=scope,
                owner=owner,
                executor=executor,
            )
            self._rules[name] = rule
        if enabled:
            self.enable(name, requester=owner)
        return rule

    def get(self, name: str, requester: Optional[str] = None) -> Rule:
        """Look up a rule; PRIVATE rules are invisible to non-owners."""
        with self._lock:
            rule = self._rules.get(name)
        if rule is None:
            raise UnknownRule(f"rule {name!r} is not defined")
        if rule.scope is RuleScope.PRIVATE and requester != rule.owner:
            raise UnknownRule(f"rule {name!r} is not defined")
        return rule

    def _check_modify(self, rule: Rule, requester: Optional[str]) -> None:
        if rule.scope is RuleScope.PUBLIC:
            return
        if requester != rule.owner:
            raise RuleError(
                f"rule {rule.name!r} is {rule.scope.value}; only its "
                f"owner {rule.owner!r} may modify it"
            )

    def enable(self, name: str, requester: Optional[str] = None) -> None:
        """(Re-)activate a rule; scope rules apply (see RuleScope)."""
        rule = self.get(name, requester)
        self._check_modify(rule, requester)
        rule.subscribe(self._detector.clock.now())

    def disable(self, name: str, requester: Optional[str] = None) -> None:
        """Disable: context counters decrement; at zero, detection stops."""
        rule = self.get(name, requester)
        self._check_modify(rule, requester)
        rule.unsubscribe()

    def delete(self, name: str, requester: Optional[str] = None) -> None:
        """Unsubscribe and forget a rule entirely."""
        rule = self.get(name, requester)
        self._check_modify(rule, requester)
        rule.unsubscribe()
        with self._lock:
            del self._rules[name]

    def names(self, requester: Optional[str] = None) -> list[str]:
        """Visible rule names (PRIVATE ones only for their owner)."""
        with self._lock:
            return sorted(
                name
                for name, rule in self._rules.items()
                if rule.scope is not RuleScope.PRIVATE
                or rule.owner == requester
            )

    def all(self) -> list[Rule]:
        with self._lock:
            return list(self._rules.values())

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._rules

    def __len__(self) -> int:
        with self._lock:
            return len(self._rules)
