"""Condition combinators: declarative building blocks for rule conditions.

Conditions in Sentinel are side-effect-free boolean functions over the
triggering occurrence's parameter list. These helpers cover the common
shapes so applications rarely need hand-written lambdas:

    from repro.core import conditions as when

    system.rule(
        "BigIBMSale", events["sold"],
        condition=when.all_of(
            when.param_at_least("qty", 1000),
            when.param_equals("symbol", "IBM"),
        ),
        action=action,
    )

Every combinator returns a plain ``condition(occurrence) -> bool``
callable, so they compose freely with hand-written conditions.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.params import Occurrence

Condition = Callable[[Occurrence], bool]


def always(occurrence: Occurrence) -> bool:
    """True for every occurrence (event-action rules)."""
    return True


def never(occurrence: Occurrence) -> bool:
    """False for every occurrence (rules parked without disabling)."""
    return False


# ---------------------------------------------------------------------------
# Parameter predicates
# ---------------------------------------------------------------------------


def param_equals(name: str, value: Any,
                 event: Optional[str] = None) -> Condition:
    """Latest value of parameter ``name`` equals ``value``."""

    def condition(occurrence: Occurrence) -> bool:
        try:
            return occurrence.params.value(name, event) == value
        except KeyError:
            return False

    return condition


def param_above(name: str, threshold: Any,
                event: Optional[str] = None) -> Condition:
    """Latest value of ``name`` is strictly greater than ``threshold``."""

    def condition(occurrence: Occurrence) -> bool:
        try:
            return occurrence.params.value(name, event) > threshold
        except KeyError:
            return False

    return condition


def param_at_least(name: str, threshold: Any,
                   event: Optional[str] = None) -> Condition:
    def condition(occurrence: Occurrence) -> bool:
        try:
            return occurrence.params.value(name, event) >= threshold
        except KeyError:
            return False

    return condition


def param_below(name: str, threshold: Any,
                event: Optional[str] = None) -> Condition:
    def condition(occurrence: Occurrence) -> bool:
        try:
            return occurrence.params.value(name, event) < threshold
        except KeyError:
            return False

    return condition


def param_matches(name: str, predicate: Callable[[Any], bool],
                  event: Optional[str] = None) -> Condition:
    """Latest value of ``name`` satisfies an arbitrary predicate."""

    def condition(occurrence: Occurrence) -> bool:
        try:
            return bool(predicate(occurrence.params.value(name, event)))
        except KeyError:
            return False

    return condition


def total_above(name: str, threshold: Any,
                event: Optional[str] = None) -> Condition:
    """Sum of every recorded value of ``name`` exceeds ``threshold``
    (useful with the cumulative context)."""

    def condition(occurrence: Occurrence) -> bool:
        values = occurrence.params.values(name, event)
        return bool(values) and sum(values) > threshold

    return condition


def count_at_least(event: str, n: int) -> Condition:
    """At least ``n`` constituent occurrences of ``event``."""

    def condition(occurrence: Occurrence) -> bool:
        return len(occurrence.params.by_event(event)) >= n

    return condition


def same_instance(*event_names: str) -> Condition:
    """Every named constituent event was signaled by the same object.

    With no names, checks *all* constituents. This is the common join
    condition for instance correlation over class-level events.
    """

    def condition(occurrence: Occurrence) -> bool:
        identities = set()
        for primitive in occurrence.params:
            if event_names and primitive.event_name not in event_names:
                continue
            identities.add(primitive.instance)
        return len(identities) == 1

    return condition


def same_param(name: str, *event_names: str) -> Condition:
    """The named events agree on the value of parameter ``name``."""

    def condition(occurrence: Occurrence) -> bool:
        values = []
        for event in event_names:
            try:
                values.append(occurrence.params.value(name, event))
            except KeyError:
                return False
        return len(set(values)) == 1

    return condition


# ---------------------------------------------------------------------------
# Boolean composition
# ---------------------------------------------------------------------------


def all_of(*conditions: Condition) -> Condition:
    def condition(occurrence: Occurrence) -> bool:
        return all(c(occurrence) for c in conditions)

    return condition


def any_of(*conditions: Condition) -> Condition:
    def condition(occurrence: Occurrence) -> bool:
        return any(c(occurrence) for c in conditions)

    return condition


def negate(inner: Condition) -> Condition:
    def condition(occurrence: Occurrence) -> bool:
        return not inner(occurrence)

    return condition


# ---------------------------------------------------------------------------
# Time predicates
# ---------------------------------------------------------------------------


def within(duration: float) -> Condition:
    """The composite's whole interval fits inside ``duration`` ticks."""

    def condition(occurrence: Occurrence) -> bool:
        return (occurrence.end - occurrence.start) <= duration

    return condition


def spans_longer_than(duration: float) -> Condition:
    def condition(occurrence: Occurrence) -> bool:
        return (occurrence.end - occurrence.start) > duration

    return condition
