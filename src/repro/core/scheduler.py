"""Rule scheduling: prioritized, concurrent, nested execution (Fig. 3).

When one or more rules trigger, the application is suspended and the
scheduler runs them: rules are grouped into *priority classes* (higher
number runs first); execution is serial across classes and — with the
threaded executor — concurrent within a class, which "combines the
advantages of both integer priority schemes and precedes/follows
schemes" (paper §3.1).

Each rule execution is packaged as a *subtransaction* of the triggering
transaction (Fig. 3's ``cond_action`` thread body): the condition runs
with event signaling suppressed (conditions are side-effect-free and
must not trigger rules), and if it returns true the action runs with
signaling enabled, so actions can trigger further rules. Nested
triggering is depth-first: the nested rules run to completion before
the triggering action returns from its ``notify``.
"""

from __future__ import annotations

import inspect
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor, wait
from dataclasses import dataclass
from itertools import groupby
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.params import Occurrence
from repro.core.rules import Rule
from repro.errors import RuleExecutionError
from repro.faults import registry as faults
from repro.faults.retry import DETERMINISTIC_POLICY, call_with_retry
from repro.telemetry.events import ConditionEvaluated, RuleExecution
from repro.telemetry.hub import TelemetrySpan
from repro.transactions.nested import NestedTransaction, NestedTransactionManager

if TYPE_CHECKING:
    from repro.core.detector import LocalEventDetector

#: pseudo-class under which rule executions signal primitive events
#: (method name = rule name), enabling rules over rule executions.
RULE_CLASS = "$RULE"

faults.declare("detached.submit.pre", "detached.run.pre", group="scheduler")


@dataclass(slots=True)
class RuleActivation:
    """One triggering of one rule, waiting to be executed."""

    rule: Rule
    occurrence: Occurrence
    #: transaction the rule subtransaction nests under (captured when
    #: the trigger happened, so worker threads inherit the right parent)
    parent_txn: Optional[NestedTransaction] = None
    #: telemetry scope open when the trigger happened; the rule span
    #: links here even when it executes on another thread (detached)
    parent_span_id: Optional[int] = None
    #: end-to-end trace open when the trigger happened; detached worker
    #: threads adopt it so the rule span joins the originating trace
    trace_id: Optional[str] = None
    #: ``perf_counter`` at detached-queue submit (wait-time accounting)
    enqueued_at: Optional[float] = None
    depth: int = 0

    @property
    def priority(self) -> int:
        return self.rule.priority


@dataclass
class SchedulerStats:
    executions: int = 0
    condition_rejections: int = 0
    failures: int = 0
    max_depth_seen: int = 0
    batches: int = 0


class SerialExecutor:
    """Deterministic executor: rules of one priority class run in
    trigger order on the calling thread."""

    def execute(self, activations: list[RuleActivation],
                run_one: Callable[[RuleActivation], None]) -> None:
        for activation in activations:
            run_one(activation)

    def shutdown(self) -> None:
        """Nothing to release."""


class ThreadedExecutor:
    """Concurrent executor: one priority class at a time, its rules on a
    pool of reusable threads (the paper's "pool of free threads")."""

    def __init__(self, max_workers: int = 8):
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="sentinel-rule"
        )

    def execute(self, activations: list[RuleActivation],
                run_one: Callable[[RuleActivation], None]) -> None:
        if len(activations) == 1:
            run_one(activations[0])
            return
        futures = [self._pool.submit(run_one, a) for a in activations]
        wait(futures)
        for future in futures:
            exc = future.exception()
            if exc is not None:
                raise exc

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


class RuleScheduler:
    """Executes batches of rule activations with priority ordering."""

    #: guard against runaway mutual triggering (rule A fires rule B
    #: fires rule A ...). The paper supports "arbitrary levels" of
    #: nesting; a production system still needs a backstop.
    MAX_DEPTH = 64

    def __init__(
        self,
        detector: "LocalEventDetector",
        executor: Optional[SerialExecutor | ThreadedExecutor] = None,
        txn_manager: Optional[NestedTransactionManager] = None,
        error_policy: str = "raise",
    ):
        if error_policy not in ("raise", "abort_rule"):
            raise ValueError(
                f"error_policy must be 'raise' or 'abort_rule', "
                f"got {error_policy!r}"
            )
        self._detector = detector
        self.executor = executor or SerialExecutor()
        self.txn_manager = txn_manager
        self.error_policy = error_policy
        self.stats = SchedulerStats()
        self._local = threading.local()
        #: asyncio lane for executor="async" rules, created on first use
        #: (a detector with no async rules never starts the loop thread)
        self._async_lane = None
        self._async_lane_lock = threading.Lock()
        self.errors: list[RuleExecutionError] = []
        #: called with (phase, rule, occurrence, info) where phase is one
        #: of "start", "condition", "done", "failed" — debugger hook.
        self.listeners: list[Callable[[str, Rule, Occurrence, dict], None]] = []

    # -- depth tracking (per thread) -------------------------------------------

    def _depth(self) -> int:
        return getattr(self._local, "depth", 0)

    def current_rule(self) -> Optional[Rule]:
        """The rule executing on this thread, if any (debugger use)."""
        return getattr(self._local, "rule", None)

    def _notify(self, phase: str, rule: Rule, occurrence: Occurrence,
                **info) -> None:
        for listener in self.listeners:
            listener(phase, rule, occurrence, info)

    # -- batch execution ------------------------------------------------------------

    def run(self, activations: list[RuleActivation]) -> None:
        """Run a batch: priority classes high-to-low, FIFO within one."""
        if not activations:
            return
        self.stats.batches += 1
        if len(activations) == 1:
            # One trigger is by far the common case on the hot path;
            # sorting and grouping a singleton costs more than the
            # dispatch itself. (run_one routes async rules itself.)
            self.executor.execute(activations, self.run_one)
            return
        # Resolve named priority classes through the detector's scheme
        # at dispatch time, so re-ranking a class takes effect
        # immediately (paper §3.1).
        rank = self._detector.priorities.rank
        ordered = sorted(
            activations, key=lambda a: -rank(a.rule.priority)
        )  # stable: trigger order preserved within a class
        for __, group in groupby(
            ordered, key=lambda a: rank(a.rule.priority)
        ):
            self._run_class(list(group))

    def _run_class(self, group: list[RuleActivation]) -> None:
        """One priority class, split across lanes.

        Async activations are gathered concurrently on the asyncio lane
        while sync ones ride the configured executor on this thread;
        the class is a barrier — both legs finish before the caller
        sees the next class (the paper's serial-across-classes,
        concurrent-within-a-class discipline).
        """
        async_batch = [a for a in group if a.rule.executor == "async"]
        if not async_batch:
            self.executor.execute(group, self.run_one)
            return
        sync_batch = [a for a in group if a.rule.executor != "async"]
        lane = self.async_lane.route()
        future = lane.submit_gather(
            [self._isolated(a) for a in async_batch]
        )
        first_error: Optional[BaseException] = None
        try:
            if sync_batch:
                self.executor.execute(sync_batch, self.run_one)
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            first_error = exc
        # The barrier runs even when the sync leg failed: every async
        # task completes (gather with return_exceptions), matching the
        # ThreadedExecutor's all-run-then-raise-first discipline.
        results = future.result()
        if first_error is None:
            for result in results:
                if isinstance(result, BaseException):
                    first_error = result
                    break
        if first_error is not None:
            raise first_error

    @property
    def async_lane(self):
        """The asyncio execution lane, started on first use."""
        lane = self._async_lane
        if lane is None:
            with self._async_lane_lock:
                lane = self._async_lane
                if lane is None:
                    from repro.core.async_executor import AsyncExecutor

                    lane = AsyncExecutor(
                        name=f"sentinel-async:{self._detector.name}"
                    )
                    self._async_lane = lane
        return lane

    def _isolated(self, activation: RuleActivation):
        """The lane-ready coroutine for one async activation.

        The rule coroutine is wrapped by :func:`isolate` so each task
        owns private copies of the per-thread execution state the
        sync path keeps in thread locals — current transaction, nesting
        depth, current rule, telemetry span stack/trace. Depth and rule
        are seeded from the *calling* thread so nested cascades keep
        counting toward MAX_DEPTH across lane hops.
        """
        from repro.core.async_executor import isolate

        hub_local = self._detector.telemetry._local
        return isolate(
            self._run_one_async(activation),
            [
                (self._detector._local, "txn", None),
                (self._local, "depth", self._depth()),
                (self._local, "rule", self.current_rule()),
                (hub_local, "stack", []),
                (hub_local, "trace", None),
            ],
        )

    def run_one(self, activation: RuleActivation) -> None:
        """Fig. 3's ``cond_action``: condition+action in a subtransaction."""
        if activation.rule.executor == "async":
            # Route singleton/detached async activations to the lane,
            # blocking this thread until the coroutine completes so the
            # cascade stays depth-first (notify returns only after the
            # rule finished). route() keeps the lane's own loop thread
            # from blocking on itself.
            lane = self.async_lane.route()
            return lane.run(self._isolated(activation))
        telemetry = self._detector.telemetry
        if not telemetry.active:
            return self._run_one(activation, None)
        rule = activation.rule
        with telemetry.span(
            RuleExecution,
            parent_id=activation.parent_span_id,
            trace_id=activation.trace_id,
            rule_name=rule.name,
            coupling=rule.coupling.value,
            depth=self._depth() + 1,
        ) as span:
            return self._run_one(activation, span)

    def _run_one(self, activation: RuleActivation,
                 span: Optional[TelemetrySpan]) -> None:
        rule = activation.rule
        depth = self._depth() + 1
        if depth > self.MAX_DEPTH:
            if span is not None:
                # Not counted as a rule failure: the error is charged to
                # the triggering rule whose action caused the recursion.
                span.set(outcome="depth_exceeded")
            raise RuleExecutionError(
                rule.name,
                "nesting",
                RecursionError(f"rule nesting exceeded {self.MAX_DEPTH}"),
            )
        self.stats.max_depth_seen = max(self.stats.max_depth_seen, depth)
        sub = None
        if self.txn_manager is not None and activation.parent_txn is not None:
            sub = self.txn_manager.begin_sub(
                activation.parent_txn, label=f"rule:{rule.name}"
            )
        previous_txn = self._detector.current_transaction()
        previous_rule = self.current_rule()
        self._detector.set_current_transaction(sub or activation.parent_txn)
        self._local.depth = depth
        self._local.rule = rule
        self._notify("start", rule, activation.occurrence, depth=depth)
        try:
            # "The rule class can be both reactive and notifiable":
            # executing a rule is itself a potential primitive event
            # (class $RULE, method = rule name), enabling meta-rules.
            self._signal_rule_event(rule, "begin")
            executed = self._evaluate(rule, activation.occurrence, span)
            self._signal_rule_event(rule, "end")
            if sub is not None:
                if span is not None:
                    commit_start = perf_counter()
                    sub.commit()
                    span.set(
                        commit_ms=(perf_counter() - commit_start) * 1000.0
                    )
                else:
                    sub.commit()
            if span is not None:
                span.set(outcome="completed" if executed else "rejected")
            self._notify("done", rule, activation.occurrence, depth=depth)
        except Exception as exc:
            if sub is not None:
                sub.abort()
            error = exc if isinstance(exc, RuleExecutionError) else (
                RuleExecutionError(rule.name, "execution", exc)
            )
            self.stats.failures += 1
            self.errors.append(error)
            if span is not None:
                span.set(outcome="failed")
            self._notify("failed", rule, activation.occurrence,
                         depth=depth, error=error)
            if self.error_policy == "raise":
                raise error from exc
        finally:
            self._local.depth = depth - 1
            self._local.rule = previous_rule
            self._detector.set_current_transaction(previous_txn)

    # -- the async lane's coroutine twins ---------------------------------
    #
    # _run_one_async/_evaluate_async mirror run_one/_run_one/_evaluate
    # statement for statement (keep them in lockstep when editing!):
    # same subtransaction bracketing, depth bookkeeping, error policy,
    # $RULE meta-events and telemetry, with exactly one difference —
    # the action's awaitable is awaited, so the tasks of one priority
    # class interleave on the lane's loop while each individual rule
    # still runs its setup/commit synchronously within a step.

    async def _run_one_async(self, activation: RuleActivation) -> None:
        rule = activation.rule
        telemetry = self._detector.telemetry
        span = None
        if telemetry.active:
            span = telemetry.span(
                RuleExecution,
                parent_id=activation.parent_span_id,
                trace_id=activation.trace_id,
                rule_name=rule.name,
                coupling=rule.coupling.value,
                depth=self._depth() + 1,
                lane="async",
            )
        try:
            depth = self._depth() + 1
            if depth > self.MAX_DEPTH:
                if span is not None:
                    span.set(outcome="depth_exceeded")
                raise RuleExecutionError(
                    rule.name,
                    "nesting",
                    RecursionError(
                        f"rule nesting exceeded {self.MAX_DEPTH}"
                    ),
                )
            self.stats.max_depth_seen = max(
                self.stats.max_depth_seen, depth
            )
            sub = None
            if (
                self.txn_manager is not None
                and activation.parent_txn is not None
            ):
                sub = self.txn_manager.begin_sub(
                    activation.parent_txn, label=f"rule:{rule.name}"
                )
            previous_txn = self._detector.current_transaction()
            previous_rule = self.current_rule()
            self._detector.set_current_transaction(
                sub or activation.parent_txn
            )
            self._local.depth = depth
            self._local.rule = rule
            self._notify("start", rule, activation.occurrence, depth=depth)
            try:
                self._signal_rule_event(rule, "begin")
                executed = await self._evaluate_async(
                    rule, activation.occurrence, span
                )
                self._signal_rule_event(rule, "end")
                if sub is not None:
                    if span is not None:
                        commit_start = perf_counter()
                        sub.commit()
                        span.set(
                            commit_ms=(
                                perf_counter() - commit_start
                            ) * 1000.0
                        )
                    else:
                        sub.commit()
                if span is not None:
                    span.set(
                        outcome="completed" if executed else "rejected"
                    )
                self._notify(
                    "done", rule, activation.occurrence, depth=depth
                )
            except Exception as exc:
                if sub is not None:
                    sub.abort()
                error = exc if isinstance(exc, RuleExecutionError) else (
                    RuleExecutionError(rule.name, "execution", exc)
                )
                self.stats.failures += 1
                self.errors.append(error)
                if span is not None:
                    span.set(outcome="failed")
                self._notify("failed", rule, activation.occurrence,
                             depth=depth, error=error)
                if self.error_policy == "raise":
                    raise error from exc
            finally:
                self._local.depth = depth - 1
                self._local.rule = previous_rule
                self._detector.set_current_transaction(previous_txn)
        finally:
            if span is not None:
                span.close()

    async def _evaluate_async(self, rule: Rule, occurrence: Occurrence,
                              span: Optional[TelemetrySpan] = None) -> bool:
        """Coroutine twin of :meth:`_evaluate`.

        The condition stays strictly synchronous (side-effect-free and
        evaluated inline, so the suppression flag — a plain loop-thread
        local, deliberately *not* task-swapped — cannot leak across an
        await). Only the action's awaitable is awaited.
        """
        condition_span = None
        if span is not None:
            condition_span = self._detector.telemetry.span(
                ConditionEvaluated, rule_name=rule.name
            )
        satisfied = False
        try:
            detector_local = self._detector._local
            previous_suppressed = getattr(
                detector_local, "suppressed", False
            )
            detector_local.suppressed = True
            try:
                satisfied = bool(rule.condition(occurrence))
            except Exception as exc:
                raise RuleExecutionError(
                    rule.name, "condition", exc
                ) from exc
            finally:
                detector_local.suppressed = previous_suppressed
        finally:
            if condition_span is not None:
                condition_span.close(satisfied=satisfied)
                span.set(
                    condition_ms=(
                        perf_counter() - condition_span.started
                    ) * 1000.0
                )
        self._notify("condition", rule, occurrence, satisfied=satisfied,
                     depth=self._depth())
        if not satisfied:
            self.stats.condition_rejections += 1
            return False
        try:
            result = rule.action(occurrence)
            if inspect.isawaitable(result):
                # Sync actions under executor="async" (and zero-arg
                # coroutine functions _adapt wrapped) land here too.
                await result
        except RuleExecutionError:
            raise  # a nested rule failed; keep the original report
        except Exception as exc:
            raise RuleExecutionError(rule.name, "action", exc) from exc
        rule.executed_count += 1
        self.stats.executions += 1
        return True

    def _signal_rule_event(self, rule: Rule, modifier: str) -> None:
        detector = self._detector
        if not detector.graph.primitives_for(RULE_CLASS):
            return
        detector.notify(
            rule, RULE_CLASS, rule.name, modifier,
            {"rule": rule.name, "priority": rule.priority},
        )

    def _evaluate(self, rule: Rule, occurrence: Occurrence,
                  span: Optional[TelemetrySpan] = None) -> bool:
        """Condition then action; returns True iff the action ran."""
        # Conditions are side-effect free: suppress event signaling so a
        # condition calling an event-generating method does not trigger
        # rules (paper §3.2.1's global acknowledge flag).
        condition_span = None
        if span is not None:
            condition_span = self._detector.telemetry.span(
                ConditionEvaluated, rule_name=rule.name
            )
        satisfied = False
        try:
            # Inline equivalent of detector.signals_suppressed(): the
            # contextmanager machinery is measurable at per-notify scale.
            detector_local = self._detector._local
            previous_suppressed = getattr(detector_local, "suppressed", False)
            detector_local.suppressed = True
            try:
                satisfied = bool(rule.condition(occurrence))
            except Exception as exc:
                raise RuleExecutionError(
                    rule.name, "condition", exc
                ) from exc
            finally:
                detector_local.suppressed = previous_suppressed
        finally:
            if condition_span is not None:
                condition_span.close(satisfied=satisfied)
                span.set(
                    condition_ms=(
                        perf_counter() - condition_span.started
                    ) * 1000.0
                )
        self._notify("condition", rule, occurrence, satisfied=satisfied,
                     depth=self._depth())
        if not satisfied:
            self.stats.condition_rejections += 1
            return False
        try:
            rule.action(occurrence)
        except RuleExecutionError:
            raise  # a nested rule failed; keep the original report
        except Exception as exc:
            raise RuleExecutionError(rule.name, "action", exc) from exc
        rule.executed_count += 1
        self.stats.executions += 1
        return True

    def shutdown(self) -> None:
        lane = self._async_lane
        if lane is not None:
            lane.shutdown()
            self._async_lane = None
        self.executor.shutdown()


# =========================================================================
# Detached-rule queue
# =========================================================================

@dataclass
class DetachedQueueStats:
    submitted: int = 0
    executed: int = 0
    dropped: int = 0
    spilled: int = 0
    blocked: int = 0
    errors: int = 0


class DetachedRuleQueue:
    """A bounded queue of DETACHED-coupled activations with backpressure.

    The thread-per-activation scheme the facade used before has no
    bound: a trigger storm creates a thread storm. This queue caps the
    backlog at ``capacity`` and resolves overflow with one of three
    policies:

    * ``"block"`` — the producing (triggering) thread waits for room;
      detection slows down instead of memory growing without bound;
    * ``"drop_oldest"`` — the oldest queued activation is discarded to
      make room (freshest-wins, for advisory rules);
    * ``"spill"`` — the oldest queued activation is handed to the
      spill sink (e.g. an event log via :func:`eventlog_spill`) for
      later batch replay, then discarded from the queue.

    ``workers`` daemon threads drain the queue through ``runner`` (the
    facade's run-in-fresh-top-level-transaction body). Worker errors
    are recorded in ``errors`` — a failing detached rule must not kill
    the drain loop. Every overflow emits a
    :class:`~repro.telemetry.events.DetachedOverflow` point.
    """

    def __init__(
        self,
        runner: Callable[[RuleActivation], None],
        capacity: int = 256,
        policy: str = "block",
        workers: int = 2,
        spill_sink: Optional[Callable[[RuleActivation], None]] = None,
        telemetry=None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if policy not in ("block", "drop_oldest", "spill"):
            raise ValueError(
                f"policy must be 'block', 'drop_oldest' or 'spill', "
                f"got {policy!r}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        from repro.telemetry.hub import TelemetryHub

        self._runner = runner
        self.capacity = capacity
        self.policy = policy
        self.telemetry = telemetry if telemetry is not None else TelemetryHub()
        self._spill_sink = spill_sink
        #: activations spilled with no sink configured (inspect/replay)
        self.spill_log: list[RuleActivation] = []
        self.stats = DetachedQueueStats()
        self.errors: list[tuple[str, Exception]] = []
        self._queue: deque[RuleActivation] = deque()
        #: queue-residency (wait) accounting, updated under the lock
        self._wait_count = 0
        self._wait_total_ms = 0.0
        self._wait_max_ms = 0.0
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._active = 0
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._drain, name=f"detached-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- producer side -----------------------------------------------------------

    def submit(self, activation: RuleActivation) -> None:
        """Enqueue one activation, applying the overflow policy."""
        if faults.ENABLED:
            faults.fault_point("detached.submit.pre")
        spill_out: list[RuleActivation] = []
        with self._lock:
            if self._closed:
                raise RuntimeError("detached queue is closed")
            while len(self._queue) >= self.capacity:
                self._overflow_point(activation)
                if self.policy == "block":
                    self.stats.blocked += 1
                    self._not_full.wait()
                    if self._closed:
                        raise RuntimeError("detached queue is closed")
                elif self.policy == "drop_oldest":
                    self._queue.popleft()
                    self.stats.dropped += 1
                else:  # spill
                    spill_out.append(self._queue.popleft())
                    self.stats.spilled += 1
            activation.enqueued_at = perf_counter()
            self._queue.append(activation)
            self.stats.submitted += 1
            self._not_empty.notify()
        # The sink runs outside the lock: it may be arbitrarily slow
        # (file-backed event log) and must not stall the workers.
        for victim in spill_out:
            self._spill(victim)

    def _overflow_point(self, activation: RuleActivation) -> None:
        if self.telemetry.active:
            from repro.telemetry.events import DetachedOverflow

            self.telemetry.point(
                DetachedOverflow,
                rule_name=activation.rule.name,
                policy=self.policy,
                backlog=len(self._queue),
            )

    def _spill(self, activation: RuleActivation) -> None:
        if self._spill_sink is not None:
            self._spill_sink(activation)
        else:
            self.spill_log.append(activation)

    # -- worker side ----------------------------------------------------------------

    def _drain(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    self._not_empty.wait()
                if not self._queue and self._closed:
                    return
                activation = self._queue.popleft()
                self._active += 1
                self._not_full.notify()
                if activation.enqueued_at is not None:
                    wait_ms = (
                        perf_counter() - activation.enqueued_at
                    ) * 1000.0
                    self._wait_count += 1
                    self._wait_total_ms += wait_ms
                    if wait_ms > self._wait_max_ms:
                        self._wait_max_ms = wait_ms
                else:
                    wait_ms = None
            if wait_ms is not None and self.telemetry.active:
                from repro.telemetry.events import DetachedQueueWait

                self.telemetry.point(
                    DetachedQueueWait,
                    parent_id=activation.parent_span_id,
                    trace_id=activation.trace_id,
                    rule_name=activation.rule.name,
                    wait_ms=wait_ms,
                )
            try:
                # Transient injected faults at the run site are retried
                # so one flaky delivery does not burn an activation; an
                # InjectedCrash is a BaseException and sails through the
                # Exception handler below, killing the worker like a
                # real crash would.
                if faults.ENABLED:
                    def run_once() -> None:
                        faults.fault_point("detached.run.pre")
                        self._runner(activation)

                    call_with_retry(
                        run_once,
                        site="detached.run", policy=DETERMINISTIC_POLICY,
                    )
                else:
                    self._runner(activation)
            except Exception as exc:
                self.errors.append((activation.rule.name, exc))
                self.stats.errors += 1
            finally:
                with self._lock:
                    self._active -= 1
                    self.stats.executed += 1
                    if not self._queue and self._active == 0:
                        self._idle.notify_all()

    # -- synchronization ------------------------------------------------------------

    def backlog(self) -> int:
        """Queued + currently executing activations."""
        with self._lock:
            return len(self._queue) + self._active

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait until the queue is empty and every worker is idle.

        Returns False if ``timeout`` (seconds) elapsed first; ``None``
        waits forever.
        """
        deadline = (
            perf_counter() + timeout if timeout is not None else None
        )
        with self._lock:
            while self._queue or self._active:
                remaining = None
                if deadline is not None:
                    remaining = deadline - perf_counter()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
            return True

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Stop accepting work, drain the backlog, stop the workers.

        ``_closed`` is set *before* any waiting: a producer parked in
        ``submit()`` under ``policy="block"`` is woken and raises
        instead of hanging forever (closing used to join first, which
        never returned while a producer held an activation it could not
        enqueue). All three conditions are notified — waking blocked
        producers (``_not_full``), idle workers (``_not_empty``) and
        ``join()`` callers (``_idle``). Workers still drain everything
        already queued before exiting.
        """
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
            self._idle.notify_all()
        for worker in self._workers:
            worker.join(timeout if timeout is not None else None)

    def snapshot(self) -> dict:
        """Gauges and counters for ``/metrics`` and ``/health``."""
        with self._lock:
            depth = len(self._queue)
            active = self._active
            wait_count = self._wait_count
            wait_total = self._wait_total_ms
            wait_max = self._wait_max_ms
        return {
            "capacity": self.capacity,
            "policy": self.policy,
            "depth": depth,
            "active": active,
            "submitted": self.stats.submitted,
            "executed": self.stats.executed,
            "dropped": self.stats.dropped,
            "spilled": self.stats.spilled,
            "blocked": self.stats.blocked,
            "errors": self.stats.errors,
            "wait_count": wait_count,
            "wait_ms_avg": round(
                wait_total / wait_count, 4
            ) if wait_count else 0.0,
            "wait_ms_max": round(wait_max, 4),
        }


def eventlog_spill(log) -> Callable[[RuleActivation], None]:
    """Adapt an :class:`~repro.eventlog.log.EventLog` into a spill sink.

    A spilled activation is recorded as its triggering occurrence's
    primitive constituents, so a later batch :func:`~repro.eventlog.replay.replay`
    of the log re-detects the composite and re-triggers the rule.
    """
    from repro.core.params import PrimitiveOccurrence

    def sink(activation: RuleActivation) -> None:
        def walk(occurrence) -> None:
            if isinstance(occurrence, PrimitiveOccurrence):
                log.append(occurrence)
                return
            for constituent in getattr(occurrence, "constituents", ()):
                walk(constituent)

        walk(activation.occurrence)

    return sink
