"""Rule scheduling: prioritized, concurrent, nested execution (Fig. 3).

When one or more rules trigger, the application is suspended and the
scheduler runs them: rules are grouped into *priority classes* (higher
number runs first); execution is serial across classes and — with the
threaded executor — concurrent within a class, which "combines the
advantages of both integer priority schemes and precedes/follows
schemes" (paper §3.1).

Each rule execution is packaged as a *subtransaction* of the triggering
transaction (Fig. 3's ``cond_action`` thread body): the condition runs
with event signaling suppressed (conditions are side-effect-free and
must not trigger rules), and if it returns true the action runs with
signaling enabled, so actions can trigger further rules. Nested
triggering is depth-first: the nested rules run to completion before
the triggering action returns from its ``notify``.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor, wait
from dataclasses import dataclass
from itertools import groupby
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.params import Occurrence
from repro.core.rules import Rule
from repro.errors import RuleExecutionError
from repro.telemetry.events import ConditionEvaluated, RuleExecution
from repro.telemetry.hub import TelemetrySpan
from repro.transactions.nested import NestedTransaction, NestedTransactionManager

if TYPE_CHECKING:
    from repro.core.detector import LocalEventDetector

#: pseudo-class under which rule executions signal primitive events
#: (method name = rule name), enabling rules over rule executions.
RULE_CLASS = "$RULE"


@dataclass
class RuleActivation:
    """One triggering of one rule, waiting to be executed."""

    rule: Rule
    occurrence: Occurrence
    #: transaction the rule subtransaction nests under (captured when
    #: the trigger happened, so worker threads inherit the right parent)
    parent_txn: Optional[NestedTransaction] = None
    #: telemetry scope open when the trigger happened; the rule span
    #: links here even when it executes on another thread (detached)
    parent_span_id: Optional[int] = None
    depth: int = 0

    @property
    def priority(self) -> int:
        return self.rule.priority


@dataclass
class SchedulerStats:
    executions: int = 0
    condition_rejections: int = 0
    failures: int = 0
    max_depth_seen: int = 0
    batches: int = 0


class SerialExecutor:
    """Deterministic executor: rules of one priority class run in
    trigger order on the calling thread."""

    def execute(self, activations: list[RuleActivation],
                run_one: Callable[[RuleActivation], None]) -> None:
        for activation in activations:
            run_one(activation)

    def shutdown(self) -> None:
        """Nothing to release."""


class ThreadedExecutor:
    """Concurrent executor: one priority class at a time, its rules on a
    pool of reusable threads (the paper's "pool of free threads")."""

    def __init__(self, max_workers: int = 8):
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="sentinel-rule"
        )

    def execute(self, activations: list[RuleActivation],
                run_one: Callable[[RuleActivation], None]) -> None:
        if len(activations) == 1:
            run_one(activations[0])
            return
        futures = [self._pool.submit(run_one, a) for a in activations]
        wait(futures)
        for future in futures:
            exc = future.exception()
            if exc is not None:
                raise exc

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


class RuleScheduler:
    """Executes batches of rule activations with priority ordering."""

    #: guard against runaway mutual triggering (rule A fires rule B
    #: fires rule A ...). The paper supports "arbitrary levels" of
    #: nesting; a production system still needs a backstop.
    MAX_DEPTH = 64

    def __init__(
        self,
        detector: "LocalEventDetector",
        executor: Optional[SerialExecutor | ThreadedExecutor] = None,
        txn_manager: Optional[NestedTransactionManager] = None,
        error_policy: str = "raise",
    ):
        if error_policy not in ("raise", "abort_rule"):
            raise ValueError(
                f"error_policy must be 'raise' or 'abort_rule', "
                f"got {error_policy!r}"
            )
        self._detector = detector
        self.executor = executor or SerialExecutor()
        self.txn_manager = txn_manager
        self.error_policy = error_policy
        self.stats = SchedulerStats()
        self._local = threading.local()
        self.errors: list[RuleExecutionError] = []
        #: called with (phase, rule, occurrence, info) where phase is one
        #: of "start", "condition", "done", "failed" — debugger hook.
        self.listeners: list[Callable[[str, Rule, Occurrence, dict], None]] = []

    # -- depth tracking (per thread) -------------------------------------------

    def _depth(self) -> int:
        return getattr(self._local, "depth", 0)

    def current_rule(self) -> Optional[Rule]:
        """The rule executing on this thread, if any (debugger use)."""
        return getattr(self._local, "rule", None)

    def _notify(self, phase: str, rule: Rule, occurrence: Occurrence,
                **info) -> None:
        for listener in self.listeners:
            listener(phase, rule, occurrence, info)

    # -- batch execution ------------------------------------------------------------

    def run(self, activations: list[RuleActivation]) -> None:
        """Run a batch: priority classes high-to-low, FIFO within one."""
        if not activations:
            return
        self.stats.batches += 1
        # Resolve named priority classes through the detector's scheme
        # at dispatch time, so re-ranking a class takes effect
        # immediately (paper §3.1).
        rank = self._detector.priorities.rank
        ordered = sorted(
            activations, key=lambda a: -rank(a.rule.priority)
        )  # stable: trigger order preserved within a class
        for __, group in groupby(
            ordered, key=lambda a: rank(a.rule.priority)
        ):
            self.executor.execute(list(group), self.run_one)

    def run_one(self, activation: RuleActivation) -> None:
        """Fig. 3's ``cond_action``: condition+action in a subtransaction."""
        telemetry = self._detector.telemetry
        if not telemetry.active:
            return self._run_one(activation, None)
        rule = activation.rule
        with telemetry.span(
            RuleExecution,
            parent_id=activation.parent_span_id,
            rule_name=rule.name,
            coupling=rule.coupling.value,
            depth=self._depth() + 1,
        ) as span:
            return self._run_one(activation, span)

    def _run_one(self, activation: RuleActivation,
                 span: Optional[TelemetrySpan]) -> None:
        rule = activation.rule
        depth = self._depth() + 1
        if depth > self.MAX_DEPTH:
            if span is not None:
                # Not counted as a rule failure: the error is charged to
                # the triggering rule whose action caused the recursion.
                span.set(outcome="depth_exceeded")
            raise RuleExecutionError(
                rule.name,
                "nesting",
                RecursionError(f"rule nesting exceeded {self.MAX_DEPTH}"),
            )
        self.stats.max_depth_seen = max(self.stats.max_depth_seen, depth)
        sub = None
        if self.txn_manager is not None and activation.parent_txn is not None:
            sub = self.txn_manager.begin_sub(
                activation.parent_txn, label=f"rule:{rule.name}"
            )
        previous_txn = self._detector.current_transaction()
        previous_rule = self.current_rule()
        self._detector.set_current_transaction(sub or activation.parent_txn)
        self._local.depth = depth
        self._local.rule = rule
        self._notify("start", rule, activation.occurrence, depth=depth)
        try:
            # "The rule class can be both reactive and notifiable":
            # executing a rule is itself a potential primitive event
            # (class $RULE, method = rule name), enabling meta-rules.
            self._signal_rule_event(rule, "begin")
            executed = self._evaluate(rule, activation.occurrence, span)
            self._signal_rule_event(rule, "end")
            if sub is not None:
                if span is not None:
                    commit_start = perf_counter()
                    sub.commit()
                    span.set(
                        commit_ms=(perf_counter() - commit_start) * 1000.0
                    )
                else:
                    sub.commit()
            if span is not None:
                span.set(outcome="completed" if executed else "rejected")
            self._notify("done", rule, activation.occurrence, depth=depth)
        except Exception as exc:
            if sub is not None:
                sub.abort()
            error = exc if isinstance(exc, RuleExecutionError) else (
                RuleExecutionError(rule.name, "execution", exc)
            )
            self.stats.failures += 1
            self.errors.append(error)
            if span is not None:
                span.set(outcome="failed")
            self._notify("failed", rule, activation.occurrence,
                         depth=depth, error=error)
            if self.error_policy == "raise":
                raise error from exc
        finally:
            self._local.depth = depth - 1
            self._local.rule = previous_rule
            self._detector.set_current_transaction(previous_txn)

    def _signal_rule_event(self, rule: Rule, modifier: str) -> None:
        detector = self._detector
        if not detector.graph.primitives_for(RULE_CLASS):
            return
        detector.notify(
            rule, RULE_CLASS, rule.name, modifier,
            {"rule": rule.name, "priority": rule.priority},
        )

    def _evaluate(self, rule: Rule, occurrence: Occurrence,
                  span: Optional[TelemetrySpan] = None) -> bool:
        """Condition then action; returns True iff the action ran."""
        # Conditions are side-effect free: suppress event signaling so a
        # condition calling an event-generating method does not trigger
        # rules (paper §3.2.1's global acknowledge flag).
        condition_span = None
        if span is not None:
            condition_span = self._detector.telemetry.span(
                ConditionEvaluated, rule_name=rule.name
            )
        satisfied = False
        try:
            with self._detector.signals_suppressed():
                try:
                    satisfied = bool(rule.condition(occurrence))
                except Exception as exc:
                    raise RuleExecutionError(
                        rule.name, "condition", exc
                    ) from exc
        finally:
            if condition_span is not None:
                condition_span.close(satisfied=satisfied)
                span.set(
                    condition_ms=(
                        perf_counter() - condition_span.started
                    ) * 1000.0
                )
        self._notify("condition", rule, occurrence, satisfied=satisfied,
                     depth=self._depth())
        if not satisfied:
            self.stats.condition_rejections += 1
            return False
        try:
            rule.action(occurrence)
        except RuleExecutionError:
            raise  # a nested rule failed; keep the original report
        except Exception as exc:
            raise RuleExecutionError(rule.name, "action", exc) from exc
        rule.executed_count += 1
        self.stats.executions += 1
        return True

    def shutdown(self) -> None:
        self.executor.shutdown()
