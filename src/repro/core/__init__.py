"""Sentinel core: events, contexts, rules, detection, and scheduling.

This package is the paper's primary contribution:

* :mod:`repro.core.contexts` — the four parameter contexts.
* :mod:`repro.core.params` — occurrences and parameter lists.
* :mod:`repro.core.events` — the Snoop operators and the event graph.
* :mod:`repro.core.detector` — the local composite event detector.
* :mod:`repro.core.rules` — ECA rules and the rule manager.
* :mod:`repro.core.scheduler` — prioritized/concurrent rule execution.
* :mod:`repro.core.reactive` — the REACTIVE base class and method wrappers.
* :mod:`repro.core.deferred` — the deferred -> immediate A* rewrite.
"""

from repro.core.contexts import ParameterContext
from repro.core.params import (
    CompositeOccurrence,
    EventModifier,
    Occurrence,
    ParamList,
    PrimitiveOccurrence,
)
from repro.core.detector import LocalEventDetector
from repro.core.rules import CouplingMode, Rule, RuleManager, TriggerMode
from repro.core.scheduler import RuleScheduler, SerialExecutor, ThreadedExecutor
from repro.core.reactive import Reactive, event

__all__ = [
    "ParameterContext",
    "EventModifier",
    "Occurrence",
    "PrimitiveOccurrence",
    "CompositeOccurrence",
    "ParamList",
    "LocalEventDetector",
    "Rule",
    "RuleManager",
    "CouplingMode",
    "TriggerMode",
    "RuleScheduler",
    "SerialExecutor",
    "ThreadedExecutor",
    "Reactive",
    "event",
]
