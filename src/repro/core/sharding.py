"""Sharded detection runtime: lock stripes over the event graph.

The paper's local detector is one instance per application — one lock
domain. This module partitions detection state into ``N`` shards keyed
by event-class / event-name identity so independent event classes can
be detected concurrently:

* every event node is pinned to a shard at registration time —
  primitives by ``crc32(class_name)`` (all events of one class, class-
  and instance-level, co-locate so their relative order is preserved),
  named explicit/temporal events by ``crc32(name)``;
* a composite node is pinned to the *minimum* of its children's shards
  — a deterministic owner, so both the single- and multi-shard
  configuration agree on where a composite's state lives;
* each shard has its own re-entrant lock stripe and a pending-delivery
  :class:`~repro.globaldet.channel.Channel` (the same transport the
  global detector uses between applications): when a cascade crosses
  from one shard into a composite owned by another, the edge is routed
  through the owner shard's channel, which counts and traces the
  hand-off before it lands on the dispatching thread's driver queue.

**The driver.** With ``shards > 1``, ``EventNode.signal`` stops
recursing inline; it pushes its fan-out (parent deliveries, then rule
emits, in subscriber order) onto a per-thread driver stack. The driver
pops entries LIFO — which reproduces exactly the depth-first pre-order
walk of the inline recursion — executing each under its owner shard's
lock. Only *one* shard lock is ever held at a time (the driver releases
shard ``i`` before taking shard ``j``), so lock order cannot deadlock,
while same-shard runs of consecutive entries amortize to a single
acquisition. Rule activations collected during the cascade run after
the driver drains, outside all shard locks.

With ``shards == 1`` the runtime stays dormant (``active`` is False):
propagation keeps the seed's inline recursion and the detector merely
serializes ingestion under the single stripe — the thread-safety
baseline the stress suite relies on.

Definition-time operations (declaring events and rules) are not
synchronized against in-flight detection; define the graph before
signaling from multiple threads, as with the seed detector.
"""

from __future__ import annotations

import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.telemetry.events import GraphPropagation, ShardHop

if TYPE_CHECKING:
    from repro.core.detector import LocalEventDetector
    from repro.core.events.base import EventNode
    from repro.telemetry.hub import TelemetrySpan

# Driver entry kinds (index 0 of each entry tuple).
_OCCUR = 0   # (kind, shard, node, occurrence)          — root primitive
_EDGE = 1    # (kind, shard, parent, port, occ, ctx[, sent_at]) — delivery
_EMIT = 2    # (kind, shard, rule, occurrence)          — rule trigger
_POLL = 3    # (kind, shard, node, now)                 — temporal poll


@dataclass
class ShardStats:
    """Per-shard counters, mutated under the shard's lock stripe."""

    #: root occurrences (primitive occur / temporal poll) executed here
    occurrences: int = 0
    #: node detections signaled by nodes owned by this shard
    detections: int = 0
    #: cascade edges this shard forwarded to a different owner shard
    cross_shard_out: int = 0
    #: cascade edges received from other shards via the pending channel
    cross_shard_in: int = 0
    #: times the driver (re-)acquired this shard's lock
    lock_acquisitions: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "occurrences": self.occurrences,
            "detections": self.detections,
            "cross_shard_out": self.cross_shard_out,
            "cross_shard_in": self.cross_shard_in,
            "lock_acquisitions": self.lock_acquisitions,
        }


class ShardMap:
    """Deterministic event-node -> shard assignment."""

    def __init__(self, shards: int):
        self.shards = shards

    def shard_for_key(self, key: str) -> int:
        return zlib.crc32(key.encode("utf-8")) % self.shards

    def assign(self, node: "EventNode") -> int:
        if self.shards == 1:
            return 0
        if node.children:
            # Deterministic owner for cross-shard composites: the
            # minimum of the constituent shards.
            return min(child.shard for child in node.children)
        class_name = getattr(node, "class_name", None)
        key = class_name if class_name is not None else node.display_name
        return self.shard_for_key(key)


class ShardedRuntime:
    """Lock stripes, pending channels, and the cascade driver."""

    def __init__(self, detector: "LocalEventDetector", shards: int = 1):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.detector = detector
        self.graph = detector.graph
        self.telemetry = detector.telemetry
        self.shards = shards
        #: True iff propagation routes through the driver (N > 1)
        self.active = shards > 1
        self.map = ShardMap(shards)
        self.locks = [threading.RLock() for __ in range(shards)]
        #: the single-shard ingestion stripe (shard 0's lock)
        self.ingest_lock = self.locks[0]
        self.stats = [ShardStats() for __ in range(shards)]
        from repro.globaldet.channel import Channel

        #: per-shard pending-delivery channels for cross-shard edges;
        #: direct mode — the sink lands on the sender's driver stack,
        #: serialized later under the receiving shard's lock.
        self.channels = [
            Channel(sink=self._deliver, direct=True,
                    telemetry=self.telemetry, name=f"shard{i}.pending")
            for i in range(shards)
        ]
        self._local = threading.local()

    # -- per-thread driver state ------------------------------------------------

    def _stack(self) -> list[tuple]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _buffer(self) -> list[tuple]:
        """Fan-out entries generated by the driver step in progress.

        The driver pushes the buffer onto its stack *reversed* after
        each step, so entries run in generation order, before any
        previously queued sibling — the exact linearization of the
        seed's inline pre-order recursion (one ``occur`` signaling in
        several contexts fans out context by context, in order).
        """
        buffer = getattr(self._local, "buffer", None)
        if buffer is None:
            buffer = []
            self._local.buffer = buffer
        return buffer

    def _roots(self) -> list[tuple]:
        roots = getattr(self._local, "roots", None)
        if roots is None:
            roots = []
            self._local.roots = roots
        return roots

    def _deliver(self, entry: tuple) -> None:
        """Channel sink: a cross-shard edge lands on the step buffer."""
        self.stats[entry[1]].cross_shard_in += 1
        self._buffer().append(entry)

    # -- ingestion (called from the detector's propagate closures) ---------------

    def submit_occur(self, node: "EventNode",
                     occurrence: Any) -> None:
        self._roots().append((_OCCUR, node.shard, node, occurrence))

    def submit_poll(self, node: "EventNode", now: float) -> None:
        self._roots().append((_POLL, node.shard, node, now))

    # -- fan-out (called from EventNode.signal in sharded mode) -------------------

    def fanout(self, node: "EventNode", occurrence: Any, ctx: Any) -> None:
        """Defer ``node``'s subscriber fan-out into the step buffer.

        Entries land in subscriber order; the driver pushes the buffer
        reversed after the current step, so its LIFO pop runs them in
        this order — the pre-order walk inline recursion would take.
        """
        shard = node.shard
        stats = self.stats[shard]
        stats.detections += 1
        graph = self.graph
        buffer = self._buffer()
        traced = self.telemetry.active
        for parent, port in node.event_subscribers:
            if parent.context_active(ctx):
                graph.stats.propagations += 1
                if parent.shard != shard:
                    # Route through the owner shard's pending channel:
                    # the hand-off is counted and traced, and the sink
                    # lands the entry back in this thread's buffer. When
                    # tracing, stamp the send time so the driver can
                    # report the shard-hop wait on delivery.
                    stats.cross_shard_out += 1
                    if traced:
                        entry = (_EDGE, parent.shard, parent, port,
                                 occurrence, ctx, perf_counter())
                    else:
                        entry = (_EDGE, parent.shard, parent, port,
                                 occurrence, ctx)
                    self.channels[parent.shard].send(entry)
                else:
                    buffer.append(
                        (_EDGE, parent.shard, parent, port, occurrence, ctx)
                    )
        for rule in list(node.rule_subscribers):
            if rule.wants(ctx, occurrence):
                buffer.append((_EMIT, shard, rule, occurrence))

    # -- the driver ----------------------------------------------------------------

    def run(self) -> None:
        """Drain this thread's pending roots and their full cascades.

        Called with no shard lock held; holds exactly one at any moment
        and switches stripes only when the next entry's owner differs.
        """
        roots = self._roots()
        if not roots:
            return
        stack = self._stack()
        stack.extend(reversed(roots))
        roots.clear()
        telemetry = self.telemetry
        locks, stats = self.locks, self.stats
        held: Optional[int] = None
        #: open GraphPropagation spans and the stack depth below them
        barriers: list[tuple["TelemetrySpan", int]] = []
        try:
            while stack:
                entry = stack.pop()
                kind = entry[0]
                if kind == _EMIT:
                    self.graph.emit(entry[2], entry[3])
                else:
                    shard = entry[1]
                    if shard != held:
                        if held is not None:
                            locks[held].release()
                        locks[shard].acquire()
                        held = shard
                        stats[shard].lock_acquisitions += 1
                    if kind == _EDGE:
                        parent, port, occurrence, ctx = entry[2:6]
                        if len(entry) == 7 and telemetry.active:
                            telemetry.point(
                                ShardHop,
                                shard=shard,
                                wait_ms=(
                                    perf_counter() - entry[6]
                                ) * 1000.0,
                                trace_id=getattr(
                                    occurrence, "trace_id", None
                                ),
                            )
                        parent.on_child(port, occurrence, ctx)
                    else:  # _OCCUR or _POLL: a cascade root
                        node = entry[2]
                        stats[shard].occurrences += 1
                        if telemetry.active:
                            barriers.append((
                                telemetry.span(
                                    GraphPropagation,
                                    event_name=node.display_name,
                                    operator=node.operator,
                                ),
                                len(stack),
                            ))
                        if kind == _OCCUR:
                            node.occur(entry[3])
                        else:
                            node.poll(entry[3])
                buffer = self._buffer()
                if buffer:
                    stack.extend(reversed(buffer))
                    buffer.clear()
                # A root's cascade is complete once the stack is back
                # down to the depth below it; close its span.
                while barriers and len(stack) <= barriers[-1][1]:
                    barriers.pop()[0].close()
        finally:
            if held is not None:
                locks[held].release()
            for span, __ in reversed(barriers):
                span.close()

    # -- whole-graph exclusion (flush, shutdown) -------------------------------------

    @contextmanager
    def all_locks(self) -> Iterator[None]:
        """Hold every stripe (in index order — deadlock-free against the
        driver, which never holds more than one)."""
        for lock in self.locks:
            lock.acquire()
        try:
            yield
        finally:
            for lock in reversed(self.locks):
                lock.release()

    # -- introspection ------------------------------------------------------------------

    def snapshot(self) -> list[dict[str, Any]]:
        """Per-shard metric rows for ``/metrics`` and ``/health``."""
        rows = []
        for index, stats in enumerate(self.stats):
            row: dict[str, Any] = {"shard": index}
            row.update(stats.snapshot())
            row["pending"] = self.channels[index].pending
            row["forwarded"] = self.channels[index].sent
            if not self.active and index == 0:
                # Dormant runtime: detections happen inline in the
                # graph; mirror its counter so the family stays live.
                row["detections"] = self.graph.stats.detections
            rows.append(row)
        return rows

    def health(self) -> dict[str, Any]:
        return {
            "count": self.shards,
            "sharded": self.active,
            "per_shard": self.snapshot(),
        }
