"""Occurrences and parameter lists.

When a primitive event fires, the wrapper method collects the method's
actual parameters into a ``PARA_LIST`` (paper §3.2.1) and sends them to
the detector together with the object identity (oid). Composite events
carry the parameters of *every* constituent primitive occurrence as a
linked structure — "a linked list that contains the parameters of each
primitive event that participates in the detection of the composite
event is built and passed to the rule". No data is copied between graph
nodes: composite occurrences reference their constituents (the paper's
"only the pointers have to be adjusted").
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

_SEQ = itertools.count(1)

#: Atomic parameter types the detector records; everything else is
#: represented by ``repr`` (the paper: "we pass only simple data types
#: as parameters ... copying the values of complex data types will add
#: considerable storage overhead").
ATOMIC_TYPES = (type(None), bool, int, float, str, bytes)


def atomic(value: Any) -> Any:
    """Coerce a method argument to an atomic parameter value."""
    if isinstance(value, ATOMIC_TYPES):
        return value
    oid = getattr(value, "oid", None)
    if oid is not None:
        return str(oid)
    return repr(value)


class EventModifier(enum.Enum):
    """Before/after variants of a method event (paper §2.1)."""

    BEGIN = "begin"
    END = "end"

    @classmethod
    def parse(cls, text: str) -> "EventModifier":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown event modifier {text!r}; expected 'begin' or 'end'"
            ) from None


class Occurrence:
    """Base of primitive and composite occurrences.

    Every occurrence spans an interval ``[start, end]``; primitive
    occurrences are instantaneous (``start == end``) while a composite
    occurrence starts at its initiator and ends at its terminator.

    ``__slots__`` is empty so the concrete occurrence dataclasses
    (declared with ``slots=True``) really are dict-free: a per-event
    ``__dict__`` would otherwise ride along via this base and defeat
    the compiled dispatch path's no-dict-lookup layout.
    """

    __slots__ = ()

    start: float
    end: float

    def primitives(self) -> Iterator["PrimitiveOccurrence"]:
        raise NotImplementedError

    @property
    def params(self) -> "ParamList":
        return ParamList(self)


@dataclass(frozen=True, slots=True)
class PrimitiveOccurrence(Occurrence):
    """One firing of a primitive event."""

    event_name: str
    at: float
    class_name: Optional[str] = None
    instance: Any = None  # oid / identity of the signalling object
    method_name: Optional[str] = None
    modifier: Optional[EventModifier] = None
    arguments: tuple[tuple[str, Any], ...] = ()
    txn_id: Optional[int] = None
    #: optional copy of the object's state at signal time. The paper
    #: notes that composite-event detection spans time, so "no
    #: assumptions are made about the state of the object (when the oid
    #: is passed as part of a composite event)" and full support "may
    #: require versioning of objects"; snapshot-enabled primitive
    #: events approximate that versioning for rule parameters.
    state_snapshot: Optional[tuple[tuple[str, Any], ...]] = None
    #: end-to-end lifecycle id stamped at ingest when telemetry is on;
    #: rides the occurrence through shard channels, composite operators
    #: and the serving wire so spans anywhere join the same trace tree.
    trace_id: Optional[str] = None
    seq: int = field(default_factory=lambda: next(_SEQ))

    @property
    def start(self) -> float:  # type: ignore[override]
        return self.at

    @property
    def end(self) -> float:  # type: ignore[override]
        return self.at

    def primitives(self) -> Iterator["PrimitiveOccurrence"]:
        yield self

    def __getitem__(self, name: str) -> Any:
        for key, value in self.arguments:
            if key == name:
                return value
        raise KeyError(name)

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self.arguments)
        return f"<{self.event_name}@{self.at:g} ({args})>"


@dataclass(frozen=True, slots=True)
class CompositeOccurrence(Occurrence):
    """One detection of a composite event.

    ``constituents`` reference the child occurrences directly (pointer
    adjustment, not copying); iterating ``primitives()`` flattens them
    in chronological order.
    """

    event_name: str
    operator: str
    constituents: tuple[Occurrence, ...]
    start: float
    end: float
    seq: int = field(default_factory=lambda: next(_SEQ))

    def primitives(self) -> Iterator[PrimitiveOccurrence]:
        flat = []
        for child in self.constituents:
            flat.extend(child.primitives())
        flat.sort(key=lambda occ: (occ.at, occ.seq))
        yield from flat

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in self.constituents)
        return (
            f"<{self.event_name}:{self.operator}"
            f"[{self.start:g},{self.end:g}] {inner}>"
        )


class ParamList:
    """User-facing view over an occurrence's parameters (the PARA_LIST).

    Iterates the constituent primitive occurrences chronologically and
    offers the lookups condition/action functions need.
    """

    def __init__(self, occurrence: Occurrence):
        self._occurrence = occurrence
        self._flat = list(occurrence.primitives())

    def __iter__(self) -> Iterator[PrimitiveOccurrence]:
        return iter(self._flat)

    def __len__(self) -> int:
        return len(self._flat)

    def __getitem__(self, index: int) -> PrimitiveOccurrence:
        return self._flat[index]

    def by_event(self, event_name: str) -> list[PrimitiveOccurrence]:
        """All constituent occurrences of one primitive event type."""
        return [occ for occ in self._flat if occ.event_name == event_name]

    def first(self, event_name: str) -> PrimitiveOccurrence:
        for occ in self._flat:
            if occ.event_name == event_name:
                return occ
        raise KeyError(f"no occurrence of {event_name!r} in parameter list")

    def last(self, event_name: str) -> PrimitiveOccurrence:
        for occ in reversed(self._flat):
            if occ.event_name == event_name:
                return occ
        raise KeyError(f"no occurrence of {event_name!r} in parameter list")

    def value(self, param: str, event_name: Optional[str] = None) -> Any:
        """The most recent value of argument ``param``.

        Searching newest-first matches the intuition that a condition
        asking for "the price" wants the latest one; restrict by
        ``event_name`` when several events share argument names.
        """
        for occ in reversed(self._flat):
            if event_name is not None and occ.event_name != event_name:
                continue
            for key, value in occ.arguments:
                if key == param:
                    return value
        raise KeyError(param)

    def values(self, param: str, event_name: Optional[str] = None) -> list[Any]:
        """Every recorded value of ``param``, oldest first."""
        result = []
        for occ in self._flat:
            if event_name is not None and occ.event_name != event_name:
                continue
            for key, value in occ.arguments:
                if key == param:
                    result.append(value)
        return result

    def state_of(self, event_name: str, which: str = "last") -> dict:
        """The snapshot recorded with an occurrence of ``event_name``.

        Requires the primitive event to have been defined with
        ``snapshot_state=True``. ``which`` is ``"first"`` or ``"last"``.
        """
        occ = (self.first(event_name) if which == "first"
               else self.last(event_name))
        if occ.state_snapshot is None:
            raise KeyError(
                f"event {event_name!r} does not record state snapshots"
            )
        return dict(occ.state_snapshot)

    def instances(self) -> list[Any]:
        """The distinct signalling objects (oids), in first-seen order."""
        seen: list[Any] = []
        for occ in self._flat:
            if occ.instance is not None and occ.instance not in seen:
                seen.append(occ.instance)
        return seen

    def __repr__(self) -> str:
        return f"ParamList({self._flat!r})"
