"""Sentinel: an active OODBMS.

Reproduction of S. Chakravarthy, V. Krishnaprasad, Z. Tamizuddin, and
R. H. Badani, "ECA Rule Integration into an OODBMS: Architecture and
Implementation", ICDE 1995 (the Sentinel system, University of Florida).

Quickstart::

    from repro import Sentinel, Reactive, event

    class Stock(Reactive):
        def __init__(self, symbol, price):
            self.symbol, self.price = symbol, price

        @event(begin="e2", end="e3")
        def set_price(self, price):
            self.price = price

    system = Sentinel()
    events = system.register_class(Stock)
    system.rule("R1", events["e2"],
                condition=lambda occ: occ.params.value("price") > 100,
                action=lambda occ: print("price spike", occ))
    with system.transaction():
        Stock("IBM", 50.0).set_price(120.0)   # fires R1
"""

from repro.clock import Clock, LogicalClock, SimulatedClock, WallClock
from repro.core.contexts import ParameterContext
from repro.core.detector import LocalEventDetector
from repro.core.priorities import PriorityScheme
from repro.core.params import (
    CompositeOccurrence,
    EventModifier,
    Occurrence,
    ParamList,
    PrimitiveOccurrence,
)
from repro.core.reactive import (
    Reactive,
    event,
    get_current_detector,
    set_current_detector,
)
from repro.core import conditions
from repro.core.rules import CouplingMode, Rule, RuleScope, TriggerMode, always
from repro.core.scheduler import SerialExecutor, ThreadedExecutor
from repro.errors import SentinelError
from repro.oodb.database import OpenOODB
from repro.oodb.object_model import OID, Persistent
from repro.sentinel import (
    FLUSH_ON_ABORT_RULE,
    FLUSH_ON_COMMIT_RULE,
    Sentinel,
    SentinelTransaction,
    SystemReport,
)
from repro.storage.manager import StorageManager
from repro.monitor import (
    FlightRecorder,
    JsonlSpanExporter,
    MonitorServer,
    RuleProfiler,
    load_events,
)
from repro.telemetry import (
    CounterProcessor,
    MetricsRegistry,
    TelemetryHub,
    TelemetryProcessor,
    TimingProcessor,
    TraceLogProcessor,
)

__version__ = "1.0.0"

__all__ = [
    "Sentinel",
    "SentinelTransaction",
    "Reactive",
    "event",
    "Persistent",
    "OID",
    "ParameterContext",
    "CouplingMode",
    "TriggerMode",
    "EventModifier",
    "Occurrence",
    "PrimitiveOccurrence",
    "CompositeOccurrence",
    "ParamList",
    "Rule",
    "RuleScope",
    "always",
    "conditions",
    "LocalEventDetector",
    "PriorityScheme",
    "OpenOODB",
    "StorageManager",
    "SerialExecutor",
    "ThreadedExecutor",
    "Clock",
    "LogicalClock",
    "SimulatedClock",
    "WallClock",
    "SentinelError",
    "set_current_detector",
    "get_current_detector",
    "FLUSH_ON_COMMIT_RULE",
    "FLUSH_ON_ABORT_RULE",
    "SystemReport",
    "TelemetryHub",
    "TelemetryProcessor",
    "CounterProcessor",
    "TimingProcessor",
    "TraceLogProcessor",
    "MetricsRegistry",
    "MonitorServer",
    "RuleProfiler",
    "FlightRecorder",
    "JsonlSpanExporter",
    "load_events",
    "__version__",
]
