"""The global event detector (Fig. 2, top).

Internally reuses the local-detector machinery: every imported
application event becomes an explicit event named ``<app>.<event>`` in
the global graph, so the full Snoop operator set works unchanged over
inter-application events. A *global rule* is a subscription: when its
(global composite) event is detected, the occurrence is shipped down
the subscriber application's channel, where it is re-raised locally
(detached rule execution, "Application n to execute detached rule").
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional, Union

from repro.clock import Clock
from repro.core.detector import LocalEventDetector
from repro.core.events.base import EventNode
from repro.errors import GlobalDetectorError, UnknownApplication
from repro.globaldet.application import Application
from repro.telemetry.events import GlobalEventReceived

if TYPE_CHECKING:
    from repro.sentinel import Sentinel


class GlobalEventDetector:
    """Detects composite events spanning applications."""

    def __init__(self, clock: Optional[Clock] = None, direct: bool = False):
        self._direct = direct
        # The global graph reuses a LocalEventDetector: its "rules" are
        # the delivery subscriptions.
        self.detector = LocalEventDetector(clock=clock, name="$GLOBAL")
        #: the global detector's telemetry hub (the internal detector's,
        #: so global graph propagation traces alongside the receive span)
        self.telemetry = self.detector.telemetry
        self.applications: dict[str, Application] = {}
        self._subscription_ids = itertools.count(1)
        # Single inbox shared by all uplinks: cross-application arrival
        # order is the global event order (one Exodus server, one wire).
        from repro.globaldet.channel import Channel

        self.inbox = Channel(sink=self._on_local_event, direct=direct,
                             telemetry=self.telemetry, name="$GLOBAL.inbox")

    # -- registration -----------------------------------------------------------

    def register(self, system: Union["Sentinel", LocalEventDetector],
                 name: Optional[str] = None) -> Application:
        """Attach an application (a Sentinel instance or bare detector)."""
        app_name = name or getattr(system, "name", None) or (
            f"app{len(self.applications) + 1}"
        )
        if app_name in self.applications:
            raise GlobalDetectorError(
                f"application {app_name!r} is already registered"
            )
        app = Application(app_name, system, self, direct=self._direct)
        self.applications[app_name] = app
        return app

    def import_event(self, app: Application, event_name: str) -> str:
        """Create the global alias for a local event; returns its name."""
        global_name = f"{app.name}.{event_name}"
        self.detector.explicit_event(global_name)
        return global_name

    # -- composite events over global primitives -------------------------------------

    def event(self, name: str) -> EventNode:
        return self.detector.event(name)

    def define(self, name: str, node: EventNode) -> EventNode:
        """Name a global event expression for reuse."""
        return self.detector.define(name, node)

    # The binary builders were removed after their deprecation release:
    # combine the imported global events with the operator algebra
    # (``a & b`` / ``a | b`` / ``a >> b``). The stubs raise
    # RemovedAPIError [E2] naming the migration tool.
    def and_(self, left, right, name=None):
        from repro.core.detector import _reject_builder

        _reject_builder("and_", "left & right")

    def or_(self, left, right, name=None):
        from repro.core.detector import _reject_builder

        _reject_builder("or_", "left | right")

    def seq(self, left, right, name=None):
        from repro.core.detector import _reject_builder

        _reject_builder("seq", "left >> right")

    def not_(self, initiator, forbidden, terminator, name=None):
        return self.detector.not_(initiator, forbidden, terminator, name)

    def aperiodic(self, initiator, middle, terminator, name=None):
        return self.detector.aperiodic(initiator, middle, terminator, name)

    def aperiodic_star(self, initiator, middle, terminator, name=None):
        return self.detector.aperiodic_star(initiator, middle, terminator, name)

    # -- subscriptions --------------------------------------------------------------------

    def subscribe(self, app: Application, global_event,
                  local_event: str, context: str = "recent",
                  condition=None) -> str:
        """Ship detections of ``global_event`` to ``app``.

        ``condition`` (optional) filters detections before delivery —
        e.g. :func:`repro.core.conditions.same_param` to correlate
        constituents from different applications on a shared key.
        """
        if app.name not in self.applications:
            raise UnknownApplication(app.name)
        rule_name = f"$deliver{next(self._subscription_ids)}:{app.name}"

        def deliver(occurrence) -> None:
            app.downlink.send((local_event, occurrence))

        self.detector.rule(
            rule_name, global_event,
            condition=condition if condition is not None else (lambda occ: True),
            action=deliver,
            context=context,
        )
        return rule_name

    # -- event intake -------------------------------------------------------------------------

    def _on_local_event(self, message) -> None:
        app_name, occurrence = message
        global_name = f"{app_name}.{occurrence.event_name}"
        known = self.detector.graph.has(global_name)
        if not self.telemetry.active:
            if known:
                self.detector.raise_event(
                    global_name, **dict(occurrence.arguments)
                )
            return  # exported but never imported: drop silently
        # The receive span covers the re-raise into the global graph,
        # so global composite detections and delivery-rule executions
        # (the $deliver subscriptions) nest inside it.
        with self.telemetry.span(
            GlobalEventReceived, application=app_name,
            event_name=occurrence.event_name, known=known,
        ):
            if known:
                self.detector.raise_event(
                    global_name, **dict(occurrence.arguments)
                )

    # -- pumping -----------------------------------------------------------------------------

    def pump(self) -> int:
        """One round: uplinks into the global graph, then downlinks out.

        Returns the number of messages moved; loop until 0 for a
        fixpoint (a delivered global event may generate new local
        events that are themselves global).
        """
        moved = self.inbox.drain()
        for app in self.applications.values():
            moved += app.downlink.drain()
        return moved

    def run_to_fixpoint(self, max_rounds: int = 100) -> int:
        total = 0
        for __ in range(max_rounds):
            moved = self.pump()
            total += moved
            if moved == 0:
                return total
        raise GlobalDetectorError(
            f"global event traffic did not quiesce in {max_rounds} rounds"
        )

    # -- introspection -----------------------------------------------------------------------

    def health(self) -> dict:
        """Queue backlogs across the inter-application fabric."""
        return {
            "applications": sorted(self.applications),
            "inbox_pending": self.inbox.pending,
            "inbox_sent": self.inbox.sent,
            "inbox_delivered": self.inbox.delivered,
            "downlinks": {
                name: app.downlink.pending
                for name, app in sorted(self.applications.items())
            },
        }

    def shutdown(self) -> None:
        self.detector.shutdown()
