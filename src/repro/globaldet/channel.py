"""Queued transport between local detectors and the global detector.

The original deployment had one process per application; messages
crossed address spaces. Here a :class:`Channel` is a thread-safe FIFO
with two delivery disciplines:

* **queued** (default) — messages accumulate until ``drain`` is called,
  making inter-application tests deterministic;
* **direct** — messages invoke the sink immediately on ``send``.

Channels are telemetry-instrumented: given a hub (and a name), every
``send`` and every sink delivery emits a
:class:`~repro.telemetry.events.ChannelMessage` point carrying the
queue depth after the operation, which is what the monitor's backlog
view reads. With no hub (or a dormant one) the paths cost one
attribute check, same as every other instrumented site.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Optional

from repro.faults import registry as faults
from repro.faults.retry import DETERMINISTIC_POLICY, call_with_retry
from repro.telemetry.events import ChannelMessage
from repro.telemetry.hub import TelemetryHub

faults.declare("channel.send.pre", "channel.deliver.pre", group="globaldet")


class Channel:
    """FIFO message channel with pluggable delivery."""

    def __init__(self, sink: Optional[Callable[[Any], None]] = None,
                 direct: bool = False,
                 telemetry: Optional[TelemetryHub] = None,
                 name: str = "channel"):
        self._sink = sink
        self._direct = direct
        self._queue: deque = deque()
        self._lock = threading.Lock()
        self.telemetry = telemetry if telemetry is not None else TelemetryHub()
        self.name = name
        self.sent = 0
        self.delivered = 0

    def connect(self, sink: Callable[[Any], None]) -> None:
        self._sink = sink

    def _trace(self, kind: str, pending: int) -> None:
        if self.telemetry.active:
            self.telemetry.point(
                ChannelMessage, channel=self.name, kind=kind,
                pending=pending,
            )

    def _deliver(self, message: Any) -> None:
        """Invoke the sink, retrying transient injected delivery faults.

        Models the lossy inter-process hop of the original deployment:
        a flaky delivery is retried a bounded number of times before
        the failure propagates to the sender/drainer.
        """
        if faults.ENABLED:
            def deliver_once() -> None:
                faults.fault_point("channel.deliver.pre")
                self._sink(message)

            call_with_retry(
                deliver_once,
                site=f"channel.{self.name}", policy=DETERMINISTIC_POLICY,
            )
        else:
            self._sink(message)

    def send(self, message: Any) -> None:
        if faults.ENABLED:
            faults.fault_point("channel.send.pre")
        with self._lock:
            self.sent += 1
            if self._direct and self._sink is not None:
                deliver_now = True
                pending = len(self._queue)
            else:
                self._queue.append(message)
                deliver_now = False
                pending = len(self._queue)
        self._trace("send", pending)
        if deliver_now:
            self._deliver(message)
            with self._lock:
                self.delivered += 1
            self._trace("deliver", pending)

    def drain(self, limit: Optional[int] = None) -> int:
        """Deliver queued messages in order; returns how many."""
        if self._sink is None:
            return 0
        count = 0
        while limit is None or count < limit:
            with self._lock:
                if not self._queue:
                    break
                message = self._queue.popleft()
                pending = len(self._queue)
            self._deliver(message)
            with self._lock:
                self.delivered += 1
            self._trace("deliver", pending)
            count += 1
        return count

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._queue)
