"""Queued transport between local detectors and the global detector.

The original deployment had one process per application; messages
crossed address spaces. Here a :class:`Channel` is a thread-safe FIFO
with two delivery disciplines:

* **queued** (default) — messages accumulate until ``drain`` is called,
  making inter-application tests deterministic;
* **direct** — messages invoke the sink immediately on ``send``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Optional


class Channel:
    """FIFO message channel with pluggable delivery."""

    def __init__(self, sink: Optional[Callable[[Any], None]] = None,
                 direct: bool = False):
        self._sink = sink
        self._direct = direct
        self._queue: deque = deque()
        self._lock = threading.Lock()
        self.sent = 0
        self.delivered = 0

    def connect(self, sink: Callable[[Any], None]) -> None:
        self._sink = sink

    def send(self, message: Any) -> None:
        with self._lock:
            self.sent += 1
            if self._direct and self._sink is not None:
                deliver_now = True
            else:
                self._queue.append(message)
                deliver_now = False
        if deliver_now:
            self._sink(message)
            with self._lock:
                self.delivered += 1

    def drain(self, limit: Optional[int] = None) -> int:
        """Deliver queued messages in order; returns how many."""
        if self._sink is None:
            return 0
        count = 0
        while limit is None or count < limit:
            with self._lock:
                if not self._queue:
                    break
                message = self._queue.popleft()
            self._sink(message)
            with self._lock:
                self.delivered += 1
            count += 1
        return count

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._queue)
