"""Global (inter-application) event detection — Figure 2's top half.

Sentinel's architecture routes events marked *global* from each
application's local detector to a global event detector, which detects
composite events whose constituents come from different applications
("especially useful for cooperative transactions and workflow
applications") and dispatches detections back to subscriber
applications for detached rule execution.

* :mod:`repro.globaldet.channel` — queued transport between detectors.
* :mod:`repro.globaldet.application` — the per-application endpoint.
* :mod:`repro.globaldet.global_detector` — the global detector itself.
"""

from repro.globaldet.channel import Channel
from repro.globaldet.application import Application
from repro.globaldet.global_detector import GlobalEventDetector

__all__ = ["Channel", "Application", "GlobalEventDetector"]
