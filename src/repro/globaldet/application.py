"""Application endpoint for the global event detector.

Each Open OODB application is a client of the Exodus server with its
own local event detector (Fig. 2). :class:`Application` adapts a local
detector (or a whole :class:`~repro.sentinel.Sentinel`) to the global
detector: it exports local events (forwarding their occurrences up) and
receives global detections back, re-raising them as local explicit
events — which typically carry detached rules.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

from repro.core.detector import LocalEventDetector
from repro.core.params import Occurrence, PrimitiveOccurrence
from repro.globaldet.channel import Channel
from repro.telemetry.events import GlobalDetectionDelivered, GlobalEventSent

if TYPE_CHECKING:
    from repro.globaldet.global_detector import GlobalEventDetector
    from repro.sentinel import Sentinel


class Application:
    """One application registered with a global event detector."""

    def __init__(
        self,
        name: str,
        system: Union["Sentinel", LocalEventDetector],
        ged: "GlobalEventDetector",
        direct: bool = False,
    ):
        self.name = name
        self._system = system
        self.detector: LocalEventDetector = (
            system if isinstance(system, LocalEventDetector)
            else system.detector
        )
        self.ged = ged
        #: downward channel: global detections -> this application
        self.downlink = Channel(
            sink=self._on_global_detection, direct=direct,
            telemetry=self.detector.telemetry, name=f"{name}.downlink",
        )
        self.detector.add_global_listener(self._forward)

    # -- exporting local events -------------------------------------------------

    def export_event(self, event_name: str) -> str:
        """Make a local event visible globally as ``<app>.<event>``."""
        self.detector.mark_global(event_name)
        return self.ged.import_event(self, event_name)

    def _forward(self, occurrence: PrimitiveOccurrence) -> None:
        # All applications share the global detector's inbox so the
        # cross-application arrival order is preserved. The send point
        # is emitted through the *local* hub: the uplink belongs to the
        # trace tree of the transaction that signaled the event.
        telemetry = self.detector.telemetry
        if telemetry.active:
            telemetry.point(
                GlobalEventSent, application=self.name,
                event_name=occurrence.event_name,
            )
        self.ged.inbox.send((self.name, occurrence))

    # -- receiving global detections --------------------------------------------------

    def subscribe_global(self, global_event, local_event: str,
                         context: str = "recent", condition=None) -> None:
        """Deliver detections of ``global_event`` as ``local_event`` here.

        ``local_event`` is (created as) a local explicit event; attach
        rules to it — usually with DETACHED coupling, since the
        triggering transaction lives in another application. ``context``
        and ``condition`` configure the delivery rule at the global
        detector (e.g. chronicle pairing plus a correlation condition).
        """
        self.detector.explicit_event(local_event)
        self.ged.subscribe(self, global_event, local_event,
                           context=context, condition=condition)

    def _on_global_detection(self, message) -> None:
        local_event, occurrence = message
        params = _flatten_params(occurrence)
        telemetry = self.detector.telemetry
        if not telemetry.active:
            self.detector.raise_event(local_event, **params)
            return
        # The deliver span covers the local re-raise, so the rule
        # cascade the delivery triggers (typically detached rules, per
        # Fig. 2) nests inside it.
        with telemetry.span(
            GlobalDetectionDelivered, application=self.name,
            event_name=local_event,
        ):
            self.detector.raise_event(local_event, **params)

    def drain(self) -> int:
        """Deliver queued global detections into this application."""
        return self.downlink.drain()

    def __repr__(self) -> str:
        return f"Application({self.name!r})"


def _flatten_params(occurrence: Occurrence) -> dict:
    """Merge the constituents' arguments for cross-application delivery.

    Only simple data types cross applications (paper §3.2.2: "to avoid
    these pitfalls, currently, we pass only simple data types as
    parameters" across applications). Later values win on name clashes;
    the constituent event names ride along under ``constituents``.
    """
    params: dict = {}
    names = []
    for primitive in occurrence.primitives():
        names.append(primitive.event_name)
        for key, value in primitive.arguments:
            params[key] = value
    params["constituents"] = ",".join(names)
    return params
