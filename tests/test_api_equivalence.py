"""The three definition APIs must agree.

The same active schema can be built three ways: the decorator API
(``Reactive`` + ``@event``), the spec language (builder), and the
generated-code path. All must yield the same firing behaviour for the
same application activity.
"""

import pytest

from repro.core.detector import LocalEventDetector
from repro.core.reactive import Reactive, event, set_current_detector
from repro.snoop.builder import build_spec
from repro.snoop.codegen import execute, generate
from repro.snoop.parser import parse

SPEC = """
class Till : public REACTIVE {
    event end(sale) int ring_up(int amount)
    event end(refund) int pay_out(int amount)
    event churn = sale ; refund
    rule Flag(churn, big_enough, flag_it, CHRONICLE)
}
"""


def run_scenario(till_cls, detector):
    """The same activity, regardless of how the schema was defined."""
    set_current_detector(detector)
    till = till_cls()
    till.ring_up(500)
    till.pay_out(450)  # sale ; refund -> churn
    till.pay_out(10)  # no preceding unconsumed sale
    set_current_detector(None)


def make_plain_till():
    def ring_up(self, amount):
        return amount

    def pay_out(self, amount):
        return amount

    return type("Till", (), {"ring_up": ring_up, "pay_out": pay_out})


def signature(fired):
    return [
        tuple((p.event_name, p["amount"]) for p in occ.params)
        for occ in fired
    ]


def build_via_decorators(detector, fired):
    class Till(Reactive):
        @event(end="sale")
        def ring_up(self, amount):
            return amount

        @event(end="refund")
        def pay_out(self, amount):
            return amount

    Till.register_events(detector, prefix="Till")
    churn = detector.define("Till_churn", (detector.event('Till_sale') >> detector.event('Till_refund')))
    detector.rule(
        "Flag", churn,
        condition=lambda occ: occ.params.value("amount", "Till_sale") >= 100,
        action=fired.append, context="chronicle",
    )
    return Till


def build_via_spec(detector, fired):
    till = make_plain_till()
    build_spec(SPEC, detector, {
        "Till": till,
        "big_enough":
            lambda occ: occ.params.value("amount", "Till_sale") >= 100,
        "flag_it": fired.append,
    })
    return till


def build_via_codegen(detector, fired):
    till = make_plain_till()
    execute(generate(parse(SPEC)), detector, {
        "Till": till,
        "big_enough":
            lambda occ: occ.params.value("amount", "Till_sale") >= 100,
        "flag_it": fired.append,
    })
    return till


@pytest.mark.parametrize(
    "build", [build_via_decorators, build_via_spec, build_via_codegen],
    ids=["decorators", "spec-builder", "codegen"],
)
def test_each_api_detects_the_same_churn(build):
    detector = LocalEventDetector()
    fired = []
    till_cls = build(detector, fired)
    run_scenario(till_cls, detector)
    assert signature(fired) == [
        (("Till_sale", 500), ("Till_refund", 450)),
    ]
    detector.shutdown()


def test_all_three_signatures_identical():
    results = []
    for build in (build_via_decorators, build_via_spec, build_via_codegen):
        detector = LocalEventDetector()
        fired = []
        till_cls = build(detector, fired)
        run_scenario(till_cls, detector)
        results.append(signature(fired))
        detector.shutdown()
    assert results[0] == results[1] == results[2]
