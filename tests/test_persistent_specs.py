"""Persistent specifications: rules stored in the database."""

import pytest

from repro import Sentinel
from repro.errors import (
    InvalidTransactionState,
    ObjectNotFound,
    SnoopSyntaxError,
)

SPEC = """
event low_stock("low_stock", "Shelf", "end", "void take(int n)")
rule Reorder(low_stock, need_more, order_more, CHRONICLE)
"""


def namespace(hits):
    return {
        "need_more": lambda occ: occ.params.value("n") > 5,
        "order_more": hits.append,
    }


class TestStoreAndLoad:
    def test_roundtrip_within_session(self, tmp_path):
        system = Sentinel(directory=tmp_path / "db", name="s")
        system.store_spec("reorder", SPEC)
        hits = []
        builder = system.load_spec("reorder", namespace(hits))
        assert "Reorder" in builder.rules
        system.detector.notify("shelf1", "Shelf", "take", "end", {"n": 9})
        assert len(hits) == 1
        system.close()

    def test_specs_survive_restart(self, tmp_path):
        system = Sentinel(directory=tmp_path / "db", name="s")
        system.store_spec("reorder", SPEC)
        system.close()

        reopened = Sentinel(directory=tmp_path / "db", name="s")
        assert reopened.stored_specs() == ["reorder"]
        hits = []
        reopened.load_spec("reorder", namespace(hits))
        reopened.detector.notify("shelf1", "Shelf", "take", "end", {"n": 7})
        assert len(hits) == 1
        reopened.close()

    def test_store_overwrites_existing(self, tmp_path):
        system = Sentinel(directory=tmp_path / "db", name="s")
        system.store_spec("x", SPEC)
        replacement = SPEC.replace("CHRONICLE", "RECENT")
        system.store_spec("x", replacement)
        system.close()
        reopened = Sentinel(directory=tmp_path / "db", name="s")
        hits = []
        builder = reopened.load_spec("x", namespace(hits))
        assert builder.rules["Reorder"].context.value == "recent"
        reopened.close()

    def test_invalid_spec_rejected_before_store(self, tmp_path):
        system = Sentinel(directory=tmp_path / "db", name="s")
        with pytest.raises(SnoopSyntaxError):
            system.store_spec("bad", "rule broken(")
        assert system.stored_specs() == []
        system.close()

    def test_drop_spec(self, tmp_path):
        system = Sentinel(directory=tmp_path / "db", name="s")
        system.store_spec("gone", SPEC)
        system.drop_spec("gone")
        assert system.stored_specs() == []
        with pytest.raises(ObjectNotFound):
            system.load_spec("gone", {})
        system.close()

    def test_requires_database(self):
        system = Sentinel(name="volatile")
        with pytest.raises(InvalidTransactionState):
            system.store_spec("x", SPEC)
        system.close()

    def test_multiple_specs_listed_sorted(self, tmp_path):
        system = Sentinel(directory=tmp_path / "db", name="s")
        system.store_spec("zeta", SPEC)
        system.store_spec(
            "alpha",
            'event other("other", "Shelf", "end", "void put(int n)")',
        )
        assert system.stored_specs() == ["alpha", "zeta"]
        system.close()
