"""Batched ingestion: notify_batch / raise_events equivalence and
accounting."""

import pytest

from repro.core.detector import LocalEventDetector
from repro.errors import EventError, UnknownEvent
from repro.sentinel import Sentinel


class STOCK:
    def set_price(self, price):
        self.price = price


def make_detector(shards=1):
    det = LocalEventDetector(shards=shards)
    det.primitive_event("tick", "STOCK", "end", "set_price")
    return det


@pytest.mark.parametrize("shards", [1, 4])
def test_notify_batch_equivalent_to_notify_loop(shards):
    stock = STOCK()
    items = [
        (stock, "STOCK", "set_price", "end", {"price": k}) for k in range(7)
    ]

    looped = make_detector(shards)
    loop_fired = []
    looped.rule("r", "tick", context="chronicle", action=loop_fired.append)
    for instance, cls, method, modifier, arguments in items:
        looped.notify(instance, cls, method, modifier, arguments)

    batched = make_detector(shards)
    batch_fired = []
    batched.rule("r", "tick", context="chronicle", action=batch_fired.append)
    occurrences = batched.notify_batch(items)

    assert len(occurrences) == 7
    assert len(batch_fired) == len(loop_fired) == 7
    assert (
        [occ.params.values("price") for occ in batch_fired]
        == [occ.params.values("price") for occ in loop_fired]
        == [[k] for k in range(7)]
    )
    # each item gets its own clock tick: strictly increasing timestamps
    ats = [occ.at for occ in occurrences]
    assert ats == sorted(ats) and len(set(ats)) == 7


@pytest.mark.parametrize("shards", [1, 4])
def test_rules_run_once_after_the_whole_batch(shards):
    """All occurrences land before any rule action runs (one activation
    frame for the batch)."""
    det = make_detector(shards)
    record = []
    det.occurrence_listeners.append(lambda occ: record.append("occ"))
    det.rule("r", "tick", action=lambda occ: record.append("rule"))
    stock = STOCK()
    det.notify_batch([
        (stock, "STOCK", "set_price", "end", {"price": k}) for k in range(3)
    ])
    assert record == ["occ"] * 3 + ["rule"] * 3


def test_raise_events_mixed_forms():
    det = LocalEventDetector()
    det.explicit_event("a")
    det.explicit_event("b")
    fired = []
    det.rule("r", (det.event("a") & det.event("b")), context="chronicle",
             action=fired.append)
    out = det.raise_events(["a", ("b", {"n": 1}), "a", ("b", {"n": 2})])
    assert len(out) == 4
    assert len(fired) == 2
    assert det.stats.batches == 1


def test_raise_events_resolves_every_name_first():
    """An unknown (or non-explicit) name anywhere in the batch raises
    before any event is signaled — no partial ingestion."""
    det = LocalEventDetector()
    det.explicit_event("a")
    hits = []
    det.rule("r", "a", action=hits.append)
    with pytest.raises(UnknownEvent):
        det.raise_events(["a", "nope"])
    assert hits == []  # "a" was not signaled

    stock = STOCK()
    det.primitive_event("tick", "STOCK", "end", "set_price")
    with pytest.raises(EventError, match="explicit"):
        det.raise_events(["a", "tick"])
    assert hits == []


def test_suppressed_batch_returns_empty():
    det = make_detector()
    stock = STOCK()
    with det.signals_suppressed():
        out = det.notify_batch([(stock, "STOCK", "set_price", "end")])
    assert out == []
    assert det.stats.suppressed == 1


def test_batch_counters_and_histogram():
    system = Sentinel(name="app")
    try:
        system.explicit_event("a")
        system.rule("r", "a", action=lambda occ: None)
        system.raise_events(["a"] * 5)
        stock = STOCK()
        system.notify_batch([
            (stock.__class__, "STOCK", "set_price", "end", {"price": 1}),
        ])
        registry = system.metrics.registry
        assert registry.value("detector.batches") == 2
        assert registry.value("detector.raises") >= 5
        assert registry.value("detector.notifications") >= 1
        assert registry.histograms["batch.ms"].count == 2
    finally:
        system.close()
