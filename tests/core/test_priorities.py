"""Named priority classes (paper §3.1)."""

import pytest

from repro.core.priorities import PriorityScheme
from repro.errors import RuleError


@pytest.fixture()
def e(det):
    det.explicit_event("e")
    return det


class TestPriorityScheme:
    def test_define_and_rank(self):
        scheme = PriorityScheme()
        scheme.define("urgent", 100)
        scheme.define("routine", 10)
        assert scheme.rank("urgent") == 100
        assert scheme.rank("routine") == 10

    def test_int_passthrough(self):
        assert PriorityScheme().rank(7) == 7

    def test_unknown_class_rejected(self):
        with pytest.raises(RuleError):
            PriorityScheme().rank("ghost")

    def test_bool_rejected(self):
        with pytest.raises(RuleError):
            PriorityScheme().rank(True)

    def test_define_ordered(self):
        scheme = PriorityScheme()
        scheme.define_ordered(["critical", "high", "normal", "low"])
        ranks = [scheme.rank(n) for n in ("critical", "high", "normal", "low")]
        assert ranks == sorted(ranks, reverse=True)

    def test_redefine_changes_rank(self):
        scheme = PriorityScheme()
        scheme.define("x", 1)
        scheme.define("x", 99)
        assert scheme.rank("x") == 99

    def test_undefine(self):
        scheme = PriorityScheme()
        scheme.define("x", 1)
        scheme.undefine("x")
        assert not scheme.known("x")
        with pytest.raises(RuleError):
            scheme.rank("x")


class TestNamedPrioritiesInScheduling:
    def test_rules_in_named_classes_ordered(self, e):
        e.priorities.define_ordered(["alarm", "log"])
        order = []
        e.rule("r_log", "e", condition=lambda o: True,
               action=lambda o: order.append("log"), priority="log")
        e.rule("r_alarm", "e", condition=lambda o: True,
               action=lambda o: order.append("alarm"), priority="alarm")
        e.raise_event("e")
        assert order == ["alarm", "log"]

    def test_mixed_named_and_integer_priorities(self, e):
        e.priorities.define("mid", 5)
        order = []
        e.rule("low", "e", condition=lambda o: True, action=lambda o: order.append("low"),
               priority=1)
        e.rule("named", "e", condition=lambda o: True, action=lambda o: order.append("named"),
               priority="mid")
        e.rule("high", "e", condition=lambda o: True, action=lambda o: order.append("high"),
               priority=10)
        e.raise_event("e")
        assert order == ["high", "named", "low"]

    def test_reranking_reorders_future_executions(self, e):
        """'Change rule priority categories based on the context'."""
        e.priorities.define("a", 10)
        e.priorities.define("b", 5)
        order = []
        e.rule("ra", "e", condition=lambda o: True, action=lambda o: order.append("a"),
               priority="a")
        e.rule("rb", "e", condition=lambda o: True, action=lambda o: order.append("b"),
               priority="b")
        e.raise_event("e")
        assert order == ["a", "b"]
        order.clear()
        e.priorities.define("b", 50)  # promote class b above a
        e.raise_event("e")
        assert order == ["b", "a"]

    def test_rule_with_unknown_class_rejected_at_definition(self, e):
        with pytest.raises(RuleError):
            e.rule("r", "e", condition=lambda o: True, action=lambda o: None,
                   priority="undefined-class")
