"""Tests for condition combinators and database-query conditions."""

import pytest

from repro.core import conditions as when


@pytest.fixture()
def evs(det):
    det.explicit_event("a")
    det.explicit_event("b")
    return det


class TestParamPredicates:
    def test_param_equals(self, evs):
        ran = []
        evs.rule("r", "a", condition=when.param_equals("sym", "IBM"), action=ran.append)
        evs.raise_event("a", sym="DEC")
        evs.raise_event("a", sym="IBM")
        assert len(ran) == 1

    def test_param_thresholds(self, evs):
        hits = {"above": 0, "at_least": 0, "below": 0}
        evs.rule("above", "a", condition=when.param_above("n", 5),
                 action=lambda o: hits.__setitem__("above", hits["above"] + 1))
        evs.rule("at_least", "a", condition=when.param_at_least("n", 5),
                 action=lambda o: hits.__setitem__("at_least", hits["at_least"] + 1))
        evs.rule("below", "a", condition=when.param_below("n", 5),
                 action=lambda o: hits.__setitem__("below", hits["below"] + 1))
        for n in (4, 5, 6):
            evs.raise_event("a", n=n)
        assert hits == {"above": 1, "at_least": 2, "below": 1}

    def test_missing_param_is_false(self, evs):
        ran = []
        evs.rule("r", "a", condition=when.param_equals("ghost", 1), action=ran.append)
        evs.raise_event("a", n=1)
        assert ran == []

    def test_param_matches_predicate(self, evs):
        ran = []
        evs.rule("r", "a", condition=when.param_matches("word", str.isupper),
                 action=ran.append)
        evs.raise_event("a", word="quiet")
        evs.raise_event("a", word="LOUD")
        assert len(ran) == 1

    def test_total_above_with_cumulative(self, evs):
        ran = []
        evs.rule("r", (evs.event('a') & evs.event('b')), condition=when.total_above("n", 10),
                 action=ran.append, context="cumulative")
        evs.raise_event("a", n=4)
        evs.raise_event("a", n=5)
        evs.raise_event("b", n=3)  # total 12 > 10
        assert len(ran) == 1

    def test_count_at_least(self, evs):
        evs.explicit_event("c")
        ran = []
        evs.rule("r", evs.aperiodic_star("a", "b", "c"),
                 condition=when.count_at_least("b", 2), action=ran.append)
        evs.raise_event("a")
        evs.raise_event("b")
        evs.raise_event("c")  # closes window with 1 b -> rejected
        evs.raise_event("a")
        evs.raise_event("b")
        evs.raise_event("b")
        evs.raise_event("c")  # closes window with 2 bs -> fires
        assert len(ran) == 1


class TestCorrelation:
    def test_same_instance_join(self, det):
        deposit = det.primitive_event("dep", "Acct", "end", "deposit")
        withdraw = det.primitive_event("wd", "Acct", "end", "withdraw")
        ran = []
        det.rule("r", (deposit >> withdraw),
                 condition=when.same_instance(), action=ran.append, context="chronicle")
        det.notify("acct-1", "Acct", "deposit", "end")
        det.notify("acct-2", "Acct", "withdraw", "end")  # different object
        assert ran == []
        det.notify("acct-3", "Acct", "deposit", "end")
        det.notify("acct-3", "Acct", "withdraw", "end")
        assert len(ran) == 1

    def test_same_param_join(self, evs):
        ran = []
        evs.rule("r", (evs.event('a') >> evs.event('b')), condition=when.same_param("sku", "a", "b"),
                 action=ran.append, context="chronicle")
        evs.raise_event("a", sku="X")
        evs.raise_event("b", sku="Y")
        evs.raise_event("a", sku="Z")
        evs.raise_event("b", sku="Z")
        assert len(ran) == 1


class TestComposition:
    def test_all_any_negate(self, evs):
        ran = []
        condition = when.all_of(
            when.param_above("n", 0),
            when.negate(when.param_above("n", 10)),
        )
        evs.rule("r", "a", condition=condition, action=ran.append)
        for n in (-1, 5, 20):
            evs.raise_event("a", n=n)
        assert len(ran) == 1

        ran2 = []
        evs.rule("r2", "a", condition=when.any_of(
            when.param_equals("n", 1), when.param_equals("n", 2)
        ), action=ran2.append)
        for n in (1, 2, 3):
            evs.raise_event("a", n=n)
        assert len(ran2) == 2

    def test_always_never(self, evs):
        hits = []
        evs.rule("yes", "a", condition=when.always, action=lambda o: hits.append("yes"))
        evs.rule("no", "a", condition=when.never, action=lambda o: hits.append("no"))
        evs.raise_event("a")
        assert hits == ["yes"]


class TestTimePredicates:
    def test_within_window(self, evs):
        ran = []
        evs.rule("fast", (evs.event('a') >> evs.event('b')), condition=when.within(2.0), action=ran.append,
                 context="chronicle")
        evs.raise_event("a")
        evs.raise_event("b")  # 1 tick apart: within 2
        evs.raise_event("a")
        for __ in range(4):
            evs.raise_event("a")  # let the clock drift
        evs.raise_event("b")  # far apart now
        assert len(ran) == 1


class TestDatabaseQueryConditions:
    def test_condition_queries_the_extent(self, tmp_path):
        """Conditions are queries over database state (paper §1): this
        one scans the Account extent for any overdrawn account."""
        from repro import Persistent, Reactive, Sentinel, event

        class Account(Reactive, Persistent):
            def __init__(self, owner, balance):
                self.owner = owner
                self.balance = balance

            @event(end="moved")
            def transfer_out(self, amount):
                self.balance -= amount

        system = Sentinel(directory=tmp_path / "db", name="q")
        system.register_class(Account)
        events = Account.register_events(system.detector)

        def any_overdrawn(occurrence):
            txn = system.current()
            return any(a.balance < 0 for a in txn.extent(Account))

        flagged = []
        system.rule("Overdraft", events["moved"], condition=any_overdrawn,
                    action=flagged.append)
        with system.transaction() as txn:
            alice = Account("alice", 100.0)
            bob = Account("bob", 10.0)
            txn.persist(alice)
            txn.persist(bob)
            txn.mark_dirty(alice)
            txn.mark_dirty(bob)
            alice.transfer_out(50.0)  # nobody overdrawn
            assert flagged == []
            bob.transfer_out(30.0)  # bob at -20: extent scan finds it
            assert len(flagged) == 1
        system.close()
