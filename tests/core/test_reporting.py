"""The shared reporting schema: one module builds every health/report
payload, so the facade, detector and monitor can't drift apart."""

from repro.reporting import (
    detached_queue_health,
    detector_health,
    runtime_metric_lines,
    system_health,
    system_report_dict,
)
from repro.sentinel import Sentinel


def make_system(**kwargs):
    system = Sentinel(name="app", **kwargs)
    system.explicit_event("ev")
    system.rule("r", "ev", action=lambda occ: None)
    system.raise_event("ev")
    return system


def test_health_payloads_come_from_the_schema_module():
    system = make_system(shards=4)
    try:
        assert system.health() == system_health(system)
        assert system.detector.health() == detector_health(system.detector)
        assert system.detached.snapshot() == detached_queue_health(
            system.detached
        )
    finally:
        system.close()


def test_system_health_shape():
    system = make_system(shards=4, detached_policy="drop_oldest")
    try:
        health = system.health()
        assert health["healthy"] is True
        assert health["detached_queue"]["policy"] == "drop_oldest"
        shards = health["detector"]["shards"]
        assert shards["count"] == 4 and shards["sharded"] is True
        assert len(shards["per_shard"]) == 4
        assert shards["per_shard"][0]["shard"] == 0
    finally:
        system.close()


def test_report_dict_matches_schema():
    system = make_system()
    try:
        report = system.report()
        assert report.to_dict() == system_report_dict(report)
    finally:
        system.close()


def test_runtime_metric_lines_families():
    system = make_system(shards=2)
    try:
        text = "\n".join(runtime_metric_lines(system))
        assert 'sentinel_shard_occurrences_total{shard="0"}' in text
        assert 'sentinel_shard_occurrences_total{shard="1"}' in text
        assert "sentinel_shards 2" in text
        assert "sentinel_detached_queue_capacity" in text
        assert "sentinel_detached_queue_submitted_total" in text
    finally:
        system.close()
