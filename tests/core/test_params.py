"""Unit tests for occurrences and parameter lists."""

import pytest

from repro.core.params import (
    CompositeOccurrence,
    EventModifier,
    ParamList,
    PrimitiveOccurrence,
    atomic,
)


def prim(name, at, **args):
    return PrimitiveOccurrence(
        event_name=name, at=at, arguments=tuple(args.items())
    )


def test_primitive_interval_is_instantaneous():
    occ = prim("e", 5.0)
    assert occ.start == occ.end == 5.0


def test_primitive_getitem():
    occ = prim("e", 1.0, price=10.0)
    assert occ["price"] == 10.0
    with pytest.raises(KeyError):
        occ["missing"]


def test_composite_interval_spans_constituents():
    a, b = prim("a", 1.0), prim("b", 4.0)
    comp = CompositeOccurrence("x", "AND", (a, b), start=1.0, end=4.0)
    assert comp.start == 1.0
    assert comp.end == 4.0


def test_primitives_flatten_chronologically():
    a, b, c = prim("a", 3.0), prim("b", 1.0), prim("c", 2.0)
    inner = CompositeOccurrence("i", "AND", (b, c), start=1.0, end=2.0)
    outer = CompositeOccurrence("o", "SEQ", (inner, a), start=1.0, end=3.0)
    assert [p.event_name for p in outer.primitives()] == ["b", "c", "a"]


def test_param_list_by_event_and_first_last():
    occs = [prim("a", 1.0, n=1), prim("b", 2.0), prim("a", 3.0, n=2)]
    comp = CompositeOccurrence("x", "A*", tuple(occs), start=1.0, end=3.0)
    params = ParamList(comp)
    assert len(params.by_event("a")) == 2
    assert params.first("a")["n"] == 1
    assert params.last("a")["n"] == 2
    with pytest.raises(KeyError):
        params.first("zzz")


def test_param_list_value_prefers_latest():
    occs = [prim("a", 1.0, price=10), prim("a", 2.0, price=20)]
    comp = CompositeOccurrence("x", "AND", tuple(occs), start=1.0, end=2.0)
    assert ParamList(comp).value("price") == 20
    assert ParamList(comp).values("price") == [10, 20]


def test_param_list_value_filters_by_event():
    occs = [prim("a", 1.0, n=1), prim("b", 2.0, n=99)]
    comp = CompositeOccurrence("x", "AND", tuple(occs), start=1.0, end=2.0)
    params = ParamList(comp)
    assert params.value("n") == 99
    assert params.value("n", event_name="a") == 1


def test_param_list_missing_param_raises():
    params = ParamList(prim("a", 1.0))
    with pytest.raises(KeyError):
        params.value("ghost")


def test_param_list_indexing_and_len():
    occs = [prim("a", 1.0), prim("b", 2.0)]
    comp = CompositeOccurrence("x", "AND", tuple(occs), start=1.0, end=2.0)
    params = ParamList(comp)
    assert len(params) == 2
    assert params[0].event_name == "a"


def test_instances_deduplicated_in_order():
    occs = [
        PrimitiveOccurrence("a", at=1.0, instance="oid:1"),
        PrimitiveOccurrence("b", at=2.0, instance="oid:2"),
        PrimitiveOccurrence("a", at=3.0, instance="oid:1"),
    ]
    comp = CompositeOccurrence("x", "A*", tuple(occs), start=1.0, end=3.0)
    assert ParamList(comp).instances() == ["oid:1", "oid:2"]


def test_modifier_parse():
    assert EventModifier.parse("begin") is EventModifier.BEGIN
    assert EventModifier.parse("END") is EventModifier.END
    with pytest.raises(ValueError):
        EventModifier.parse("middle")


class TestAtomic:
    @pytest.mark.parametrize("value", [None, True, 5, 2.5, "x", b"y"])
    def test_atomic_passthrough(self, value):
        assert atomic(value) is value or atomic(value) == value

    def test_object_with_oid_becomes_oid_string(self):
        class Obj:
            oid = "oid:42"

        assert atomic(Obj()) == "oid:42"

    def test_complex_object_becomes_repr(self):
        value = atomic([1, 2, 3])
        assert value == "[1, 2, 3]"


def test_seq_numbers_are_unique_and_increasing():
    a = prim("a", 1.0)
    b = prim("b", 1.0)
    assert b.seq > a.seq
