"""Tests for rule management: registration, modes, enable/disable."""

import pytest

from repro.core.contexts import ParameterContext
from repro.core.rules import CouplingMode, TriggerMode
from repro.errors import DuplicateRule, RuleError, UnknownRule
from tests.core.conftest import collect


@pytest.fixture()
def e(det):
    det.explicit_event("e")
    return det


class TestRegistration:
    def test_create_and_fire(self, e):
        ran = []
        rule = e.rule("r1", "e", condition=lambda o: True, action=ran.append)
        assert rule.enabled
        e.raise_event("e")
        assert len(ran) == 1
        assert rule.triggered_count == 1
        assert rule.executed_count == 1

    def test_duplicate_name_rejected(self, e):
        e.rule("r", "e", condition=lambda o: True, action=lambda o: None)
        with pytest.raises(DuplicateRule):
            e.rule("r", "e", condition=lambda o: True, action=lambda o: None)

    def test_unknown_rule_lookup_rejected(self, e):
        with pytest.raises(UnknownRule):
            e.rules.get("nope")

    def test_non_callable_condition_rejected(self, e):
        with pytest.raises(RuleError):
            e.rule("bad", "e", condition="not callable", action=lambda o: None)

    def test_string_mode_parsing(self, e):
        rule = e.rule(
            "r", "e", condition=lambda o: True, action=lambda o: None,
            context="CUMULATIVE", coupling="deferred",
            trigger_mode="previous", priority=10,
        )
        assert rule.context is ParameterContext.CUMULATIVE
        assert rule.coupling is CouplingMode.DEFERRED
        assert rule.trigger_mode is TriggerMode.PREVIOUS
        assert rule.priority == 10

    def test_zero_arg_condition_and_action(self, e):
        ran = []
        e.rule("r", "e", condition=lambda: True, action=lambda: ran.append(1))
        e.raise_event("e")
        assert ran == [1]

    def test_rules_listing(self, e):
        e.rule("a", "e", condition=lambda o: True, action=lambda o: None)
        e.rule("b", "e", condition=lambda o: True, action=lambda o: None)
        assert e.rules.names() == ["a", "b"]
        assert "a" in e.rules
        assert len(e.rules) == 2


class TestConditions:
    def test_false_condition_blocks_action(self, e):
        ran = []
        e.rule("r", "e", condition=lambda o: False, action=ran.append)
        e.raise_event("e")
        assert ran == []
        assert e.scheduler.stats.condition_rejections == 1

    def test_condition_sees_parameters(self, e):
        ran = []
        e.rule(
            "threshold", "e",
            condition=lambda occ: occ.params.value("price") > 100,
            action=ran.append,
        )
        e.raise_event("e", price=50)
        e.raise_event("e", price=150)
        assert len(ran) == 1
        assert ran[0].params.value("price") == 150


class TestEnableDisable:
    def test_disable_stops_firing(self, e):
        ran = []
        e.rule("r", "e", condition=lambda o: True, action=ran.append)
        e.rules.disable("r")
        e.raise_event("e")
        assert ran == []

    def test_reenable_resumes(self, e):
        ran = []
        e.rule("r", "e", condition=lambda o: True, action=ran.append)
        e.rules.disable("r")
        e.rules.enable("r")
        e.raise_event("e")
        assert len(ran) == 1

    def test_delete_removes_rule(self, e):
        e.rule("r", "e", condition=lambda o: True, action=lambda o: None)
        e.rules.delete("r")
        with pytest.raises(UnknownRule):
            e.rules.get("r")
        e.raise_event("e")  # no error, no firing

    def test_create_disabled(self, e):
        ran = []
        e.rule("r", "e", condition=lambda o: True, action=ran.append, enabled=False)
        e.raise_event("e")
        assert ran == []
        e.rules.enable("r")
        e.raise_event("e")
        assert len(ran) == 1


class TestTriggerModes:
    def test_now_ignores_pre_subscription_constituents(self, e):
        """A NOW rule must not fire from occurrences that precede it."""
        e.explicit_event("f")
        node = (e.event('e') & e.event('f'))
        # First rule activates detection in the recent context.
        early = collect(e, node, context="recent")
        e.raise_event("e")  # stored in node state
        # Second rule defined NOW: the stored 'e' predates it.
        late = collect(e, node, context="recent", trigger_mode="now")
        e.raise_event("f")
        assert len(early) == 1
        assert late == []  # its composite starts before subscription

    def test_previous_accepts_older_constituents(self, e):
        e.explicit_event("f")
        node = (e.event('e') & e.event('f'))
        collect(e, node, context="recent")
        e.raise_event("e")
        late = collect(e, node, context="recent", trigger_mode="previous")
        e.raise_event("f")
        assert len(late) == 1

    def test_now_fires_for_fresh_occurrences(self, e):
        ran = collect(e, "e", trigger_mode="now")
        e.raise_event("e")
        assert len(ran) == 1


class TestMultipleRules:
    def test_one_event_triggers_several_rules(self, e):
        order = []
        e.rule("r1", "e", condition=lambda o: True, action=lambda o: order.append("r1"))
        e.rule("r2", "e", condition=lambda o: True, action=lambda o: order.append("r2"))
        e.rule("r3", "e", condition=lambda o: False, action=lambda o: order.append("r3"))
        e.raise_event("e")
        assert order == ["r1", "r2"]

    def test_priority_order_high_first(self, e):
        order = []
        e.rule("low", "e", condition=lambda o: True, action=lambda o: order.append("low"),
               priority=1)
        e.rule("high", "e", condition=lambda o: True, action=lambda o: order.append("high"),
               priority=10)
        e.rule("mid", "e", condition=lambda o: True, action=lambda o: order.append("mid"),
               priority=5)
        e.raise_event("e")
        assert order == ["high", "mid", "low"]

    def test_same_priority_keeps_trigger_order(self, e):
        order = []
        for i in range(5):
            e.rule(f"r{i}", "e", condition=lambda o: True,
                   action=lambda o, i=i: order.append(i), priority=3)
        e.raise_event("e")
        assert order == [0, 1, 2, 3, 4]
