"""The asyncio execution lane: coroutine rule actions.

The acceptance oracle is the synchronous interpreted scheduler: a rule
set executed with ``executor="async"`` must trigger the same rules in
the same order, apply the same error policy, and suppress condition
side effects identically — across both dispatch engines and shard
counts {1, 4}. On top of parity, the lane must deliver what threads
cannot: actions of one priority class interleaving at ``await`` points
on a single loop thread.
"""

import asyncio
import threading

import pytest

from repro.core.detector import LocalEventDetector
from repro.core.rules import resolve_executor
from repro.errors import RuleError, RuleExecutionError
from repro.sentinel import Sentinel

CONTEXTS = ("recent", "chronicle", "continuous", "cumulative")


# =========================================================================
# Lane selection and validation
# =========================================================================

class TestLaneSelection:
    def test_coroutine_actions_autodetect_the_async_lane(self):
        det = LocalEventDetector()
        det.explicit_event("e")

        async def act(occ):
            pass

        rule = det.rule("r", "e", action=act)
        assert rule.executor == "async"
        det.shutdown()

    def test_plain_actions_default_to_the_sync_lane(self):
        det = LocalEventDetector()
        det.explicit_event("e")
        rule = det.rule("r", "e", action=lambda occ: None)
        assert rule.executor == "sync"
        det.shutdown()

    def test_sync_lane_rejects_coroutine_actions(self):
        async def act(occ):
            pass

        with pytest.raises(RuleError, match="coroutine action"):
            resolve_executor("sync", lambda occ: True, act, "r")

    def test_conditions_must_be_synchronous(self):
        async def cond(occ):
            return True

        with pytest.raises(RuleError, match="condition must be synchronous"):
            resolve_executor(None, cond, lambda occ: None, "r")

    def test_unknown_lane_rejected(self):
        with pytest.raises(RuleError, match="executor must be one of"):
            resolve_executor("fiber", lambda occ: True, lambda occ: None, "r")

    def test_sync_action_may_opt_into_the_async_lane(self):
        assert resolve_executor(
            "async", lambda occ: True, lambda occ: None, "r"
        ) == "async"


# =========================================================================
# Parity with the synchronous oracle
# =========================================================================

def build_system(dispatch: str, shards: int, lane: str):
    """A mixed graph with one recording rule per (expression, context)
    pair, every rule in its own priority class so the execution order
    is fully deterministic on both lanes."""
    det = LocalEventDetector(
        shards=shards, dispatch=dispatch, name=f"{dispatch}-{shards}-{lane}"
    )
    for name in "ab":
        det.explicit_event(name)
    e = det.event
    exprs = {
        "prim_a": e("a"),
        "and_ab": e("a") & e("b"),
        "seq_ab": e("a") >> e("b"),
    }
    hits: list[tuple] = []
    lock = threading.Lock()
    priority = 1
    for ctx in CONTEXTS:
        for label, node in exprs.items():
            rule_name = f"r_{label}:{ctx}"
            if lane == "async":
                async def act(occ, _n=rule_name):
                    await asyncio.sleep(0)
                    with lock:
                        hits.append((_n, len(list(occ.primitives()))))
            else:
                def act(occ, _n=rule_name):
                    with lock:
                        hits.append((_n, len(list(occ.primitives()))))
            det.rule(rule_name, node, action=act, context=ctx,
                     priority=priority)
            priority += 1
    return det, hits


def drive(det) -> None:
    for i, name in enumerate("abaabbab" * 4):
        det.raise_event(name, n=i)


@pytest.mark.parametrize("dispatch", ["interpreted", "compiled"])
@pytest.mark.parametrize("shards", [1, 4])
def test_async_lane_matches_the_sync_oracle(dispatch, shards):
    """Same events, same graph: the async lane triggers exactly what
    the sync lane does, in the same order, in every parameter context."""
    oracle, oracle_hits = build_system(dispatch, shards, "sync")
    candidate, candidate_hits = build_system(dispatch, shards, "async")
    drive(oracle)
    drive(candidate)
    assert oracle_hits, "oracle produced no triggers — broken fixture"
    assert candidate_hits == oracle_hits
    assert (
        candidate.scheduler.stats.executions
        == oracle.scheduler.stats.executions
    )
    oracle.shutdown()
    candidate.shutdown()


# =========================================================================
# Scheduling semantics
# =========================================================================

def test_actions_of_one_class_interleave_on_the_lane():
    """The headline capability: two rules of the same priority class
    overlap at await points — rule 1 parks on an asyncio.Event only
    rule 2 can set, which no thread-free serial schedule could finish."""
    det = LocalEventDetector()
    det.explicit_event("e")
    gate = asyncio.Event()
    order: list[str] = []

    async def first(occ):
        order.append("first-in")
        await gate.wait()
        order.append("first-out")

    async def second(occ):
        order.append("second-in")
        gate.set()

    det.rule("first", "e", action=first, priority=3)
    det.rule("second", "e", action=second, priority=3)
    det.raise_event("e")
    assert order == ["first-in", "second-in", "first-out"]
    det.shutdown()


def test_priority_classes_are_barriers_across_lanes():
    """A higher class's async rules finish before the next class's
    sync rules start (serial-across-classes, paper §3.1)."""
    det = LocalEventDetector()
    det.explicit_event("e")
    order: list[str] = []

    async def high(occ):
        await asyncio.sleep(0.02)
        order.append("high")

    det.rule("high", "e", action=high, priority=9)
    det.rule("low", "e", action=lambda occ: order.append("low"), priority=1)
    det.raise_event("e")
    assert order == ["high", "low"]
    det.shutdown()


def test_mixed_class_runs_sync_and_async_rules_concurrently():
    """Within one class the sync leg and the async leg overlap: the
    async action releases a threading.Event the sync action waits on."""
    det = LocalEventDetector()
    det.explicit_event("e")
    release = threading.Event()
    order: list[str] = []

    async def async_side(occ):
        await asyncio.sleep(0.005)
        order.append("async")
        release.set()

    def sync_side(occ):
        assert release.wait(timeout=5.0), (
            "async leg never ran while the sync leg was blocked"
        )
        order.append("sync")

    det.rule("a", "e", action=async_side, priority=2)
    det.rule("s", "e", action=sync_side, priority=2)
    det.raise_event("e")
    assert sorted(order) == ["async", "sync"]
    det.shutdown()


def test_nested_async_cascades_run_depth_first():
    """An async action raising an event waits for the triggered async
    rule before continuing — the interpreted oracle's depth-first
    cascade, preserved across lane hops via nested-lane routing."""
    det = LocalEventDetector()
    det.explicit_event("outer")
    det.explicit_event("inner")
    seen: list[str] = []

    async def outer(occ):
        seen.append("outer-pre")
        det.raise_event("inner")
        seen.append("outer-post")

    async def inner(occ):
        await asyncio.sleep(0.005)
        seen.append("inner")

    det.rule("outer", "outer", action=outer)
    det.rule("inner", "inner", action=inner)
    det.raise_event("outer")
    assert seen == ["outer-pre", "inner", "outer-post"]
    det.shutdown()


def test_nesting_depth_counts_across_lane_hops():
    """MAX_DEPTH still bounds a self-triggering cascade when every
    level hops onto a (nested) asyncio lane."""
    det = LocalEventDetector()
    det.scheduler.MAX_DEPTH = 5
    det.explicit_event("tick")
    depths: list[int] = []

    async def retrigger(occ):
        depths.append(det.scheduler._depth())
        det.raise_event("tick")

    det.rule("loop", "tick", action=retrigger)
    with pytest.raises(RuleExecutionError, match="nesting exceeded 5"):
        det.raise_event("tick")
    assert max(depths) == 5
    det.shutdown()


def test_state_isolation_between_interleaving_tasks():
    """Two interleaving tasks each see their own current_rule/depth:
    task state parked at awaits never leaks into the other task."""
    det = LocalEventDetector()
    det.explicit_event("e")
    observed: dict[str, tuple] = {}
    gate = asyncio.Event()

    async def one(occ):
        await gate.wait()
        observed["one"] = (
            det.scheduler.current_rule().name, det.scheduler._depth()
        )

    async def two(occ):
        gate.set()
        await asyncio.sleep(0)
        observed["two"] = (
            det.scheduler.current_rule().name, det.scheduler._depth()
        )

    det.rule("one", "e", action=one, priority=4)
    det.rule("two", "e", action=two, priority=4)
    det.raise_event("e")
    assert observed == {"one": ("one", 1), "two": ("two", 1)}
    det.shutdown()


# =========================================================================
# Error policy and suppression parity
# =========================================================================

def test_error_policy_raise_propagates_async_action_failures():
    det = LocalEventDetector(error_policy="raise")
    det.explicit_event("e")

    async def bad(occ):
        raise ValueError("boom")

    det.rule("bad", "e", action=bad)
    with pytest.raises(RuleExecutionError, match="failed in action"):
        det.raise_event("e")
    assert det.scheduler.stats.failures == 1
    assert det.scheduler.errors and "boom" in str(det.scheduler.errors[0])
    det.shutdown()


def test_error_policy_abort_rule_keeps_the_class_running():
    """One failing async rule must not stop its classmates (sync or
    async) — exactly the abort_rule contract of the thread lanes."""
    det = LocalEventDetector(error_policy="abort_rule")
    det.explicit_event("e")
    ran: list[str] = []

    async def bad(occ):
        await asyncio.sleep(0)
        raise ValueError("boom")

    async def good(occ):
        ran.append("good-async")

    det.rule("bad", "e", action=bad, priority=2)
    det.rule("good", "e", action=good, priority=2)
    det.rule("sync", "e", action=lambda occ: ran.append("good-sync"),
             priority=2)
    det.raise_event("e")  # must not raise
    assert sorted(ran) == ["good-async", "good-sync"]
    assert det.scheduler.stats.failures == 1
    det.shutdown()


def test_conditions_stay_suppressed_on_the_async_lane():
    """A condition that calls event-generating methods must not
    trigger rules (the paper's side-effect-free-condition guarantee —
    its §3.2.1 acknowledge flag), lane regardless."""
    det = LocalEventDetector()
    det.explicit_event("e")
    det.primitive_event("echo", "Probe", "begin", "ping")
    echoed: list[str] = []

    def noisy_condition(occ):
        # A reactive method invoked from a condition: suppressed.
        det.notify(None, "Probe", "ping", "begin")
        return True

    async def act(occ):
        # The same invocation from the action signals normally.
        det.notify(None, "Probe", "ping", "begin")

    det.rule("noisy", "e", condition=noisy_condition, action=act)
    det.rule("listener", "echo",
             action=lambda occ: echoed.append("echo"))
    det.raise_event("e")
    assert echoed == ["echo"]
    assert det.stats.suppressed == 1
    assert det.rules.get("noisy").executed_count == 1
    det.shutdown()


# =========================================================================
# Coupling modes and telemetry
# =========================================================================

def test_detached_async_rules_ride_the_bounded_queue():
    """A DETACHED async rule lands on the detached queue like any
    detached rule, and its coroutine runs on the lane from the worker."""
    s = Sentinel(name="detached-async")
    s.explicit_event("e")
    done = threading.Event()
    ran: list[str] = []

    async def act(occ):
        await asyncio.sleep(0.005)
        ran.append("detached")
        done.set()

    s.rule("d", "e", action=act, coupling="detached")
    s.raise_event("e")
    assert done.wait(timeout=5.0)
    s.wait_detached()
    assert ran == ["detached"]
    assert s.detached.stats.executed == 1
    s.close()


def test_rule_spans_carry_the_lane_and_feed_action_async():
    """RuleExecution spans from the lane say lane="async", join the
    triggering trace, and land in the action_async stage histogram."""
    from repro.telemetry.events import RuleExecution
    from repro.telemetry.processors import TraceLogProcessor

    s = Sentinel(name="lane-telemetry")
    trace_log = s.telemetry.attach(TraceLogProcessor())
    s.explicit_event("e")

    async def act(occ):
        await asyncio.sleep(0.002)

    s.rule("async_rule", "e", action=act)
    s.rule("sync_rule", "e", action=lambda occ: None)
    s.raise_event("e")
    spans = {
        ev.rule_name: ev for ev in trace_log.events()
        if isinstance(ev, RuleExecution)
    }
    assert spans["async_rule"].lane == "async"
    assert spans["async_rule"].outcome == "completed"
    assert spans["sync_rule"].lane == "sync"
    assert spans["async_rule"].trace_id is not None
    assert spans["async_rule"].trace_id == spans["sync_rule"].trace_id
    assert s.stage_latency.histograms["action_async"].count == 1
    assert s.stage_latency.histograms["action"].count == 1
    s.close()


def test_lane_is_lazy_and_shutdown_is_clean():
    """A detector with no async rules never starts the loop thread;
    one that did shuts it down with the scheduler."""
    det = LocalEventDetector()
    det.explicit_event("e")
    det.rule("r", "e", action=lambda occ: None)
    det.raise_event("e")
    assert det.scheduler._async_lane is None
    det.shutdown()

    det2 = LocalEventDetector()
    det2.explicit_event("e")

    async def act(occ):
        pass

    det2.rule("r", "e", action=act)
    det2.raise_event("e")
    lane = det2.scheduler._async_lane
    assert lane is not None
    det2.shutdown()
    assert lane._closed
    assert not lane._thread.is_alive()
    with pytest.raises(RuntimeError, match="closed"):
        lane.submit(asyncio.sleep(0))
