"""Reactive wrapper edge cases: argument binding, errors, inheritance."""

import pytest

from repro.core.detector import LocalEventDetector
from repro.core.reactive import Reactive, event, set_current_detector
from tests.core.conftest import collect


@pytest.fixture()
def det():
    detector = LocalEventDetector()
    set_current_detector(detector)
    yield detector
    set_current_detector(None)
    detector.shutdown()


class Machine(Reactive):
    def __init__(self):
        self.log = []

    @event(begin="starting", end="started")
    def start(self, mode="normal", retries=3, *extras, **options):
        self.log.append((mode, retries, extras, options))
        return mode


class Fragile(Reactive):
    @event(begin="attempting", end="succeeded")
    def attempt(self):
        raise RuntimeError("operation failed")


class TestArgumentBinding:
    def test_defaults_recorded(self, det):
        nodes = Machine.register_events(det)
        fired = collect(det, nodes["started"])
        Machine().start()
        assert fired[0].params.value("mode") == "normal"
        assert fired[0].params.value("retries") == 3

    def test_keyword_arguments_recorded(self, det):
        nodes = Machine.register_events(det)
        fired = collect(det, nodes["started"])
        Machine().start(mode="turbo", retries=9)
        assert fired[0].params.value("mode") == "turbo"
        assert fired[0].params.value("retries") == 9

    def test_varargs_and_kwargs_coerced_atomically(self, det):
        nodes = Machine.register_events(det)
        fired = collect(det, nodes["started"])
        Machine().start("fast", 1, "x", "y", verbose=True)
        params = dict(fired[0].params[0].arguments)
        assert params["mode"] == "fast"
        assert params["extras"] == "('x', 'y')"
        assert params["options"] == "{'verbose': True}"

    def test_positional_binding(self, det):
        nodes = Machine.register_events(det)
        fired = collect(det, nodes["started"])
        Machine().start("eco", 7)
        assert fired[0].params.value("retries") == 7


class TestErrorsInUserMethods:
    def test_begin_fires_but_end_does_not_on_exception(self, det):
        nodes = Fragile.register_events(det)
        begins = collect(det, nodes["attempting"])
        ends = collect(det, nodes["succeeded"])
        with pytest.raises(RuntimeError):
            Fragile().attempt()
        assert len(begins) == 1
        assert ends == []

    def test_exception_propagates_unwrapped(self, det):
        Fragile.register_events(det)
        with pytest.raises(RuntimeError, match="operation failed"):
            Fragile().attempt()


class TestInheritance:
    def test_subclass_events_fire_with_subclass_name(self, det):
        class Robot(Machine):
            pass

        # class-level event declared on the subclass's own name
        node = det.primitive_event("robot_start", "Robot", "end", "start")
        fired = collect(det, node)
        Robot().start()
        assert len(fired) == 1

    def test_base_class_events_match_subclass_instances(self, det):
        """The inheritance property: a class-level event on Machine
        fires for Robot instances (the detector walks the MRO)."""

        class Robot(Machine):
            pass

        base_node = det.primitive_event("machine_start", "Machine", "end",
                                        "start")
        fired = collect(det, base_node)
        Robot().start()
        assert len(fired) == 1

    def test_overriding_redeclares_event(self, det):
        class Custom(Machine):
            @event(end="custom_done")
            def start(self, mode="normal", retries=3):
                return "custom"

        node = det.primitive_event("c", "Custom", "end", "start")
        fired = collect(det, node)
        Custom().start()
        assert len(fired) == 1


class TestWrapperMechanics:
    def test_user_prefixed_method_bypasses_events(self, det):
        nodes = Machine.register_events(det)
        fired = collect(det, nodes["started"])
        machine = Machine()
        machine.user_start("silent")
        assert fired == []
        assert machine.log  # the body still ran

    def test_wrapped_marker_present(self):
        assert getattr(Machine.start, "__sentinel_wrapped__", False)

    def test_return_value_preserved(self, det):
        Machine.register_events(det)
        assert Machine().start("value-check") == "value-check"
