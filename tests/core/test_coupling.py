"""Coupling modes through the Sentinel facade: immediate, deferred, detached.

Exercises the paper's §2.3 feature (v): "execution of rules in immediate
and deferred coupling modes", including the A* rewrite of deferred rules
and the exactly-once (net effect) guarantee.
"""

import pytest

from repro.core.deferred import BEGIN_TRANSACTION, PRE_COMMIT_TRANSACTION
from repro.sentinel import FLUSH_ON_ABORT_RULE, FLUSH_ON_COMMIT_RULE, Sentinel


@pytest.fixture()
def system():
    s = Sentinel(name="coupling-test")
    s.explicit_event("e")
    yield s
    s.close()


class TestImmediate:
    def test_fires_during_transaction(self, system):
        ran = []
        system.rule("imm", "e", condition=lambda o: True, action=ran.append)
        with system.transaction():
            system.raise_event("e")
            assert len(ran) == 1  # before commit

    def test_fires_outside_transaction_too(self, system):
        ran = []
        system.rule("imm", "e", condition=lambda o: True, action=ran.append)
        system.raise_event("e")
        assert len(ran) == 1


class TestDeferred:
    def test_runs_at_pre_commit_not_at_event(self, system):
        ran = []
        system.rule("def", "e", condition=lambda o: True, action=ran.append,
                    coupling="deferred")
        with system.transaction():
            system.raise_event("e")
            assert ran == []  # postponed
        assert len(ran) == 1  # executed at (pre-)commit

    def test_exactly_once_despite_many_triggers(self, system):
        """Net-effect: N occurrences of E, one deferred execution."""
        ran = []
        system.rule("def", "e", condition=lambda o: True, action=ran.append,
                    coupling="deferred")
        with system.transaction():
            for __ in range(5):
                system.raise_event("e")
        assert len(ran) == 1

    def test_parameters_accumulated_across_transaction(self, system):
        ran = []
        system.rule("def", "e", condition=lambda o: True, action=ran.append,
                    coupling="deferred")
        with system.transaction():
            system.raise_event("e", n=1)
            system.raise_event("e", n=2)
        assert ran[0].params.values("n") == [1, 2]

    def test_no_event_no_execution(self, system):
        ran = []
        system.rule("def", "e", condition=lambda o: True, action=ran.append,
                    coupling="deferred")
        with system.transaction():
            pass
        assert ran == []

    def test_rewritten_event_graph_matches_paper(self, system):
        """E becomes A*(begin_txn, E, pre_commit_txn)."""
        rule = system.rule("def", "e", condition=lambda o: True, action=lambda o: None,
                           coupling="deferred")
        assert rule.event.operator == "A*"
        children = rule.event.children
        assert children[0].display_name == BEGIN_TRANSACTION
        assert children[1].display_name == "e"
        assert children[2].display_name == PRE_COMMIT_TRANSACTION

    def test_aborted_transaction_never_runs_deferred_rules(self, system):
        ran = []
        system.rule("def", "e", condition=lambda o: True, action=ran.append,
                    coupling="deferred")
        txn = system.begin()
        system.raise_event("e")
        system.abort(txn)
        assert ran == []

    def test_second_transaction_independent(self, system):
        ran = []
        system.rule("def", "e", condition=lambda o: True, action=ran.append,
                    coupling="deferred")
        with system.transaction():
            system.raise_event("e", n=1)
        with system.transaction():
            system.raise_event("e", n=2)
        assert len(ran) == 2
        assert ran[1].params.values("n") == [2]


class TestDetached:
    def test_runs_in_separate_transaction(self, system):
        seen = []

        def action(occ):
            txn = system.detector.current_transaction()
            seen.append((txn.root().label, txn.depth))

        system.rule("det", "e", condition=lambda o: True, action=action, coupling="detached")
        with system.transaction():
            system.raise_event("e")
        system.wait_detached()
        assert len(seen) == 1
        label, depth = seen[0]
        assert label == "detached:det"  # its own top-level tree
        assert depth == 1  # the rule subtransaction under that root


class TestTransactionBoundaryFlush:
    def test_composite_does_not_span_commits(self, system):
        """Events from a committed txn cannot pair in the next one."""
        system.explicit_event("f")
        fired = []
        system.rule("pair", (system.detector.event('e') & system.detector.event('f')),
                    condition=lambda o: True, action=fired.append)
        with system.transaction():
            system.raise_event("e")
        with system.transaction():
            system.raise_event("f")  # the pending 'e' was flushed
        assert fired == []

    def test_composite_does_not_span_aborts(self, system):
        system.explicit_event("f")
        fired = []
        system.rule("pair", (system.detector.event('e') & system.detector.event('f')),
                    condition=lambda o: True, action=fired.append)
        txn = system.begin()
        system.raise_event("e")
        system.abort(txn)
        with system.transaction():
            system.raise_event("f")
        assert fired == []

    def test_deactivating_flush_rule_lets_events_span(self, system):
        """The flush rules are real rules and can be disabled (paper)."""
        system.rules.disable(FLUSH_ON_COMMIT_RULE)
        system.explicit_event("f")
        fired = []
        system.rule("pair", (system.detector.event('e') & system.detector.event('f')),
                    condition=lambda o: True, action=fired.append)
        with system.transaction():
            system.raise_event("e")
        with system.transaction():
            system.raise_event("f")
        assert len(fired) == 1

    def test_flush_rules_exist_by_default(self, system):
        assert FLUSH_ON_COMMIT_RULE in system.rules
        assert FLUSH_ON_ABORT_RULE in system.rules

    def test_flush_disabled_entirely_by_option(self):
        s = Sentinel(flush_on_boundaries=False)
        try:
            assert FLUSH_ON_COMMIT_RULE not in s.rules
        finally:
            s.close()


class TestTransactionEvents:
    def test_user_rule_on_begin_transaction(self, system):
        ran = []
        system.rule("audit", BEGIN_TRANSACTION, condition=lambda o: True, action=ran.append)
        with system.transaction():
            pass
        assert len(ran) == 1

    def test_transaction_ids_flow_into_occurrences(self, system):
        ids = []
        system.rule("r", "e", condition=lambda o: True,
                    action=lambda o: ids.append(o.params[0].txn_id))
        with system.transaction() as txn:
            system.raise_event("e")
            expected = txn.txn_id
        assert ids == [expected]
