"""The Snoop operator algebra: ``a & b`` / ``a | b`` / ``a >> b``.

The acceptance bar: operator expressions build shared, hash-consed
graph nodes, and the removed binary builders (``detector.and_`` and
friends, deprecated for one release) now raise
:class:`RemovedAPIError` [E2] naming the migration tool.
"""

import warnings

import pytest

from repro.core.detector import LocalEventDetector
from repro.core.events import E
from repro.core.events.operators import (
    AndNode,
    AperiodicNode,
    AperiodicStarNode,
    NotNode,
    OrNode,
    PeriodicNode,
    PeriodicStarNode,
    PlusNode,
    SeqNode,
)
from repro.errors import EventError, RemovedAPIError


@pytest.fixture
def det():
    detector = LocalEventDetector()
    yield detector
    detector.shutdown()


def _events(det, *names):
    return tuple(det.explicit_event(n) for n in names)


# -- structural equality with the old builders --------------------------------------


def test_and_operator_builds_shared_node(det):
    a, b = _events(det, "a", "b")
    expr = a & b
    assert isinstance(expr, AndNode)
    assert expr is det.graph.and_(a, b)
    assert expr.children == (a, b)


def test_or_operator_builds_shared_node(det):
    a, b = _events(det, "a", "b")
    expr = a | b
    assert isinstance(expr, OrNode)
    assert expr is det.graph.or_(a, b)


def test_seq_operator_builds_shared_node(det):
    a, b = _events(det, "a", "b")
    expr = a >> b
    assert isinstance(expr, SeqNode)
    assert expr is det.graph.seq(a, b)


def test_repeated_operator_spelling_shares_one_node(det):
    a, b = _events(det, "a", "b")
    first = a & b
    assert (a & b) is first
    assert len([n for n in det.graph.nodes() if isinstance(n, AndNode)]) == 1


def test_nested_expressions_share_subtrees(det):
    a, b, c = _events(det, "a", "b", "c")
    first = (a & b) | c
    second = (a & b) | c
    assert first is second
    assert first.children[0] is (a & b)


def test_operator_results_detect(det):
    a, b = _events(det, "a", "b")
    seen = []
    det.rule("r", a >> b, action=seen.append)
    det.raise_event("a")
    det.raise_event("b")
    assert len(seen) == 1
    assert seen[0].operator == "SEQ"


def test_string_operands_resolve_through_graph(det):
    a, b = _events(det, "a", "b")
    assert (a & "b") is (a & b)
    assert ("a" & b) is (a & b)
    assert (a >> "b") is (a >> b)


def test_non_event_operand_is_type_error(det):
    (a,) = _events(det, "a")
    with pytest.raises(TypeError):
        a & 3


def test_cross_graph_composition_rejected():
    d1, d2 = LocalEventDetector(), LocalEventDetector()
    try:
        a = d1.explicit_event("a")
        b = d2.explicit_event("b")
        with pytest.raises(EventError):
            a & b
    finally:
        d1.shutdown()
        d2.shutdown()


# -- the E namespace -----------------------------------------------------------------


def test_e_namespace_covers_every_operator(det):
    a, b, c = _events(det, "a", "b", "c")
    assert E.and_(a, b) is (a & b)
    assert E.or_(a, b) is (a | b)
    assert E.seq(a, b) is (a >> b)
    assert isinstance(E.not_(a, b, c), NotNode)
    assert E.not_(a, b, c) is det.graph.not_(a, b, c)
    assert isinstance(E.A(a, b, c), AperiodicNode)
    assert E.A(a, b, c) is det.graph.aperiodic(a, b, c)
    assert isinstance(E.A_star(a, b, c), AperiodicStarNode)
    assert isinstance(E.P(a, 5.0, c), PeriodicNode)
    assert E.P(a, 5.0, c) is det.graph.periodic(a, 5.0, c)
    assert isinstance(E.P_star(a, 5.0, c), PeriodicStarNode)
    assert isinstance(E.plus(a, 2.0), PlusNode)
    assert E.plus(a, 2.0) is det.graph.plus(a, 2.0)


def test_e_namespace_resolves_string_operands(det):
    a, b, c = _events(det, "a", "b", "c")
    assert E.not_("a", b, "c") is E.not_(a, b, c)


def test_e_namespace_needs_a_node_operand(det):
    _events(det, "a", "b")
    with pytest.raises(EventError):
        E.and_("a", "b")


def test_e_namespace_naming(det):
    a, b = _events(det, "a", "b")
    node = E.and_(a, b, "both")
    assert det.event("both") is node


# -- builder removal ----------------------------------------------------------------


def test_removed_builders_raise(det):
    a, b = _events(det, "a", "b")
    for method, replacement in (
        (det.and_, "left & right"),
        (det.or_, "left | right"),
        (det.seq, "left >> right"),
    ):
        with pytest.raises(RemovedAPIError,
                           match="migrate_event_algebra") as excinfo:
            method(a, b)
        assert replacement in str(excinfo.value)


def test_removed_builder_creates_no_node(det):
    a, b = _events(det, "a", "b")
    before = len(list(det.graph.nodes()))
    with pytest.raises(RemovedAPIError):
        det.and_(a, b)
    assert len(list(det.graph.nodes())) == before


def test_global_detector_builders_removed():
    from repro.globaldet import GlobalEventDetector

    gd = GlobalEventDetector()
    try:
        a = gd.detector.explicit_event("a")
        b = gd.detector.explicit_event("b")
        with pytest.raises(RemovedAPIError, match="operator expression"):
            gd.and_(a, b)
        assert (a & b) is (a & b)  # the algebra spelling still works
    finally:
        gd.shutdown()


def test_operator_spelling_does_not_warn(det):
    a, b = _events(det, "a", "b")
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        a & b
        a | b
        a >> b
        E.not_(a, b, a | b)


def test_precedence_matches_documentation(det):
    a, b, c = _events(det, "a", "b", "c")
    # >> binds tighter than &, which binds tighter than |.
    assert (a >> b & c) is ((a >> b) & c)
    assert (a & b | c) is ((a & b) | c)
