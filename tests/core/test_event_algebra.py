"""The Snoop operator algebra: ``a & b`` / ``a | b`` / ``a >> b``.

The acceptance bar: operator expressions must build the *same* shared
graph nodes as the old builder calls, and the deprecated builders must
warn exactly once per call site.
"""

import warnings

import pytest

from repro.core.detector import LocalEventDetector
from repro.core.events import E
from repro.core.events.operators import (
    AndNode,
    AperiodicNode,
    AperiodicStarNode,
    NotNode,
    OrNode,
    PeriodicNode,
    PeriodicStarNode,
    PlusNode,
    SeqNode,
)
from repro.errors import EventError


@pytest.fixture
def det():
    detector = LocalEventDetector()
    yield detector
    detector.shutdown()


def _events(det, *names):
    return tuple(det.explicit_event(n) for n in names)


# -- structural equality with the old builders --------------------------------------


def test_and_operator_builds_shared_node(det):
    a, b = _events(det, "a", "b")
    expr = a & b
    assert isinstance(expr, AndNode)
    assert expr is det.graph.and_(a, b)
    assert expr.children == (a, b)


def test_or_operator_builds_shared_node(det):
    a, b = _events(det, "a", "b")
    expr = a | b
    assert isinstance(expr, OrNode)
    assert expr is det.graph.or_(a, b)


def test_seq_operator_builds_shared_node(det):
    a, b = _events(det, "a", "b")
    expr = a >> b
    assert isinstance(expr, SeqNode)
    assert expr is det.graph.seq(a, b)


def test_operator_and_deprecated_builder_share_one_node(det):
    a, b = _events(det, "a", "b")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        old = det.and_(a, b)
    assert (a & b) is old
    assert len([n for n in det.graph.nodes() if isinstance(n, AndNode)]) == 1


def test_nested_expressions_share_subtrees(det):
    a, b, c = _events(det, "a", "b", "c")
    first = (a & b) | c
    second = (a & b) | c
    assert first is second
    assert first.children[0] is (a & b)


def test_operator_results_detect(det):
    a, b = _events(det, "a", "b")
    seen = []
    det.rule("r", a >> b, action=seen.append)
    det.raise_event("a")
    det.raise_event("b")
    assert len(seen) == 1
    assert seen[0].operator == "SEQ"


def test_string_operands_resolve_through_graph(det):
    a, b = _events(det, "a", "b")
    assert (a & "b") is (a & b)
    assert ("a" & b) is (a & b)
    assert (a >> "b") is (a >> b)


def test_non_event_operand_is_type_error(det):
    (a,) = _events(det, "a")
    with pytest.raises(TypeError):
        a & 3


def test_cross_graph_composition_rejected():
    d1, d2 = LocalEventDetector(), LocalEventDetector()
    try:
        a = d1.explicit_event("a")
        b = d2.explicit_event("b")
        with pytest.raises(EventError):
            a & b
    finally:
        d1.shutdown()
        d2.shutdown()


# -- the E namespace -----------------------------------------------------------------


def test_e_namespace_covers_every_operator(det):
    a, b, c = _events(det, "a", "b", "c")
    assert E.and_(a, b) is (a & b)
    assert E.or_(a, b) is (a | b)
    assert E.seq(a, b) is (a >> b)
    assert isinstance(E.not_(a, b, c), NotNode)
    assert E.not_(a, b, c) is det.graph.not_(a, b, c)
    assert isinstance(E.A(a, b, c), AperiodicNode)
    assert E.A(a, b, c) is det.graph.aperiodic(a, b, c)
    assert isinstance(E.A_star(a, b, c), AperiodicStarNode)
    assert isinstance(E.P(a, 5.0, c), PeriodicNode)
    assert E.P(a, 5.0, c) is det.graph.periodic(a, 5.0, c)
    assert isinstance(E.P_star(a, 5.0, c), PeriodicStarNode)
    assert isinstance(E.plus(a, 2.0), PlusNode)
    assert E.plus(a, 2.0) is det.graph.plus(a, 2.0)


def test_e_namespace_resolves_string_operands(det):
    a, b, c = _events(det, "a", "b", "c")
    assert E.not_("a", b, "c") is E.not_(a, b, c)


def test_e_namespace_needs_a_node_operand(det):
    _events(det, "a", "b")
    with pytest.raises(EventError):
        E.and_("a", "b")


def test_e_namespace_naming(det):
    a, b = _events(det, "a", "b")
    node = E.and_(a, b, "both")
    assert det.event("both") is node


# -- deprecation behavior -----------------------------------------------------------


def test_deprecated_builders_warn(det):
    a, b = _events(det, "a", "b")
    for method, expected in (
        (det.and_, AndNode),
        (det.or_, OrNode),
        (det.seq, SeqNode),
    ):
        with pytest.warns(DeprecationWarning, match="operator expression"):
            node = method(a, b)
        assert isinstance(node, expected)


def test_deprecated_builder_warns_once_per_call_site(det):
    a, b = _events(det, "a", "b")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("default")
        for _ in range(5):
            det.and_(a, b)  # one call site, looped
    assert len(caught) == 1
    assert caught[0].category is DeprecationWarning


def test_distinct_call_sites_each_warn(det):
    a, b = _events(det, "a", "b")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("default")
        det.and_(a, b)
        det.and_(a, b)
    assert len(caught) == 2


def test_global_detector_builders_warn():
    from repro.globaldet import GlobalEventDetector

    gd = GlobalEventDetector()
    try:
        a = gd.detector.explicit_event("a")
        b = gd.detector.explicit_event("b")
        with pytest.warns(DeprecationWarning):
            node = gd.and_(a, b)
        assert node is (a & b)
    finally:
        gd.shutdown()


def test_operator_spelling_does_not_warn(det):
    a, b = _events(det, "a", "b")
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        a & b
        a | b
        a >> b
        E.not_(a, b, a | b)


def test_precedence_matches_documentation(det):
    a, b, c = _events(det, "a", "b", "c")
    # >> binds tighter than &, which binds tighter than |.
    assert (a >> b & c) is ((a >> b) & c)
    assert (a & b | c) is ((a & b) | c)
