"""Meta-rules: rule executions as primitive events (paper §3.2).

"Since the rule class can be both reactive and notifiable, methods of
the rule class can themselves be event generators."
"""

import pytest

from repro.errors import RuleExecutionError


@pytest.fixture()
def e(det):
    det.explicit_event("e")
    return det


class TestRuleExecutionEvents:
    def test_end_of_rule_execution_signals(self, e):
        audit = []
        e.rule("worker", "e", condition=lambda o: True, action=lambda o: None)
        node = e.rule_execution_event("worker_done", "worker")
        e.rule("meta", node, condition=lambda o: True, action=audit.append)
        e.raise_event("e")
        assert len(audit) == 1
        assert audit[0].params.value("rule") == "worker"

    def test_begin_variant_fires_before_condition(self, e):
        order = []
        e.rule("worker", "e", condition=lambda o: (order.append("condition"), True)[1],
               action=lambda o: order.append("action"))
        node = e.rule_execution_event("worker_begin", "worker",
                                      modifier="begin")
        e.rule("meta", node, condition=lambda o: True,
               action=lambda o: order.append("meta"))
        e.raise_event("e")
        assert order == ["meta", "condition", "action"]

    def test_rejected_condition_still_ends_execution(self, e):
        audit = []
        e.rule("worker", "e", condition=lambda o: False, action=lambda o: None)
        node = e.rule_execution_event("worker_done", "worker")
        e.rule("meta", node, condition=lambda o: True, action=audit.append)
        e.raise_event("e")
        assert len(audit) == 1  # the execution happened; action didn't

    def test_failed_rule_does_not_signal_end(self, e):
        audit = []
        e.rule("worker", "e", condition=lambda o: True,
               action=lambda o: (_ for _ in ()).throw(ValueError("x")))
        node = e.rule_execution_event("worker_done", "worker")
        e.rule("meta", node, condition=lambda o: True, action=audit.append)
        with pytest.raises(RuleExecutionError):
            e.raise_event("e")
        assert audit == []

    def test_composite_over_rule_executions(self, e):
        """A sequence of two different rules' executions."""
        e.explicit_event("f")
        e.rule("first", "e", condition=lambda o: True, action=lambda o: None)
        e.rule("second", "f", condition=lambda o: True, action=lambda o: None)
        seq = (e.rule_execution_event("first_done", "first") >> e.rule_execution_event("second_done", "second"))
        hits = []
        e.rule("meta", seq, condition=lambda o: True, action=hits.append)
        e.raise_event("f")  # wrong order: second before first
        e.raise_event("e")
        assert hits == []
        e.raise_event("f")
        assert len(hits) == 1

    def test_no_overhead_without_meta_events(self, e):
        """Rule-class events are only signaled when declared."""
        e.rule("worker", "e", condition=lambda o: True, action=lambda o: None)
        before = e.stats.notifications
        e.raise_event("e")
        assert e.stats.notifications == before  # raise_event is no notify
