"""Tests for the event-expression static analyzer."""

import pytest

from repro.core.events.analysis import analyze, analyze_graph


@pytest.fixture()
def evs(det):
    for name in ("a", "b", "c"):
        det.explicit_event(name)
    return det


def codes(warnings):
    return sorted(w.code for w in warnings)


class TestWindowChecks:
    def test_self_bracketing_aperiodic(self, evs):
        node = evs.aperiodic("a", "b", "a")
        assert codes(analyze(node)) == ["self-bracketing-window"]

    def test_self_bracketing_astar(self, evs):
        node = evs.aperiodic_star("a", "b", "a")
        assert "self-bracketing-window" in codes(analyze(node))

    def test_middle_equals_bound(self, evs):
        node = evs.aperiodic("a", "a", "c")
        assert codes(analyze(node)) == ["middle-equals-bound"]

    def test_clean_window_no_warnings(self, evs):
        node = evs.aperiodic("a", "b", "c")
        assert analyze(node) == []

    def test_self_bracketing_periodic(self, evs):
        node = evs.periodic("a", 5.0, "a")
        assert codes(analyze(node)) == ["self-bracketing-window"]


class TestNotChecks:
    def test_unreachable_not_window(self, evs):
        node = evs.not_("a", "b", "a")
        assert "unreachable-not-window" in codes(analyze(node))

    def test_forbidden_equals_bound(self, evs):
        node = evs.not_("a", "a", "c")
        assert "forbidden-equals-bound" in codes(analyze(node))

    def test_clean_not(self, evs):
        node = evs.not_("a", "b", "c")
        assert analyze(node) == []


class TestOrChecks:
    def test_or_of_identical(self, evs):
        a = evs.event("a")
        node = (a | a)
        assert codes(analyze(node)) == ["or-of-identical"]

    def test_or_of_distinct_clean(self, evs):
        assert analyze((evs.event('a') | evs.event('b'))) == []


class TestNested:
    def test_warning_found_deep_in_tree(self, evs):
        a = evs.event("a")
        suspicious = (a | a)
        tree = ((suspicious & evs.event('b')) >> evs.event('c'))
        assert "or-of-identical" in codes(analyze(tree))

    def test_analyze_graph_deduplicates(self, evs):
        a = evs.event("a")
        (a | a)
        (a | a)  # shared: same node
        warnings = analyze_graph(evs.graph)
        assert codes(warnings) == ["or-of-identical"]


class TestCliIntegration:
    def test_check_prints_warnings(self, tmp_path, capsys):
        from repro.cli import main

        spec = tmp_path / "warny.sentinel"
        spec.write_text(
            'event e1("e1", "C", "end", "void m()")\n'
            "event bad = e1 | e1\n"
            "rule R(bad, c, a)\n"
        )
        assert main(["check", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "warning:" in out
        assert "or-of-identical" in out


class TestDotExport:
    def test_render_dot_structure(self, evs):
        from repro.debugger import render_dot

        expr = evs.define("watched", ((evs.event('a') & evs.event('b')) >> evs.event('c')))
        evs.rule("R", expr, condition=lambda o: True, action=lambda o: None)
        dot = render_dot(evs.graph)
        assert dot.startswith("digraph sentinel_events {")
        assert 'label="SEQ\\nwatched"' in dot
        assert 'label="rule R"' in dot
        assert "->" in dot
        assert dot.rstrip().endswith("}")
