"""Conformance to the canonical context examples.

The ICDE'95 paper defers operator/context semantics to its companion
papers (Snoop DKE'94; "Composite Events for Active Databases:
Semantics, Contexts, and Detection", VLDB'94). The VLDB paper's running
example is the stream

    e1^1  e1^2  e2^1

(two occurrences of E1, then one of E2) with the expected detections of
``E1 ; E2`` per context:

    recent     : (e1^2, e2^1)
    chronicle  : (e1^1, e2^1)
    continuous : (e1^1, e2^1) and (e1^2, e2^1)
    cumulative : (e1^1, e1^2, e2^1)

This file pins those tables exactly, for SEQ and for the windowed
operators' canonical streams.
"""

import pytest

from tests.core.conftest import collect


@pytest.fixture()
def evs(det):
    det.explicit_event("e1")
    det.explicit_event("e2")
    det.explicit_event("e3")
    return det


def play(det, *events):
    """Raise a sequence like ('e1', 1), ('e1', 2), ('e2', 1)."""
    for name, index in events:
        det.raise_event(name, idx=index)


def pairs(fired):
    return [
        tuple((p.event_name, p["idx"]) for p in occ.params) for occ in fired
    ]


CANONICAL = [("e1", 1), ("e1", 2), ("e2", 1)]


class TestCanonicalSequenceTable:
    def test_recent(self, evs):
        fired = collect(evs, (evs.event('e1') >> evs.event('e2')), context="recent")
        play(evs, *CANONICAL)
        assert pairs(fired) == [(("e1", 2), ("e2", 1))]

    def test_chronicle(self, evs):
        fired = collect(evs, (evs.event('e1') >> evs.event('e2')), context="chronicle")
        play(evs, *CANONICAL)
        assert pairs(fired) == [(("e1", 1), ("e2", 1))]

    def test_continuous(self, evs):
        fired = collect(evs, (evs.event('e1') >> evs.event('e2')), context="continuous")
        play(evs, *CANONICAL)
        assert pairs(fired) == [
            (("e1", 1), ("e2", 1)),
            (("e1", 2), ("e2", 1)),
        ]

    def test_cumulative(self, evs):
        fired = collect(evs, (evs.event('e1') >> evs.event('e2')), context="cumulative")
        play(evs, *CANONICAL)
        assert pairs(fired) == [(("e1", 1), ("e1", 2), ("e2", 1))]


class TestCanonicalAndTable:
    """AND is symmetric; with the canonical stream the tables match SEQ
    (here E2 terminates because it arrives last)."""

    def test_recent(self, evs):
        fired = collect(evs, (evs.event('e1') & evs.event('e2')), context="recent")
        play(evs, *CANONICAL)
        assert pairs(fired) == [(("e1", 2), ("e2", 1))]

    def test_chronicle(self, evs):
        fired = collect(evs, (evs.event('e1') & evs.event('e2')), context="chronicle")
        play(evs, *CANONICAL)
        assert pairs(fired) == [(("e1", 1), ("e2", 1))]

    def test_continuous(self, evs):
        fired = collect(evs, (evs.event('e1') & evs.event('e2')), context="continuous")
        play(evs, *CANONICAL)
        assert pairs(fired) == [
            (("e1", 1), ("e2", 1)),
            (("e1", 2), ("e2", 1)),
        ]

    def test_cumulative(self, evs):
        fired = collect(evs, (evs.event('e1') & evs.event('e2')), context="cumulative")
        play(evs, *CANONICAL)
        assert pairs(fired) == [(("e1", 1), ("e1", 2), ("e2", 1))]


WINDOW_STREAM = [
    ("e1", 1),  # open window 1
    ("e2", 1),
    ("e1", 2),  # open window 2
    ("e2", 2),
    ("e3", 1),  # close
]


class TestAperiodicWindows:
    def test_recent_latest_window_only(self, evs):
        fired = collect(evs, evs.aperiodic("e1", "e2", "e3"),
                        context="recent")
        play(evs, *WINDOW_STREAM)
        # e2^1 pairs with window 1; after e1^2 replaces it, e2^2 pairs
        # with window 2.
        assert pairs(fired) == [
            (("e1", 1), ("e2", 1)),
            (("e1", 2), ("e2", 2)),
        ]

    def test_continuous_every_window(self, evs):
        fired = collect(evs, evs.aperiodic("e1", "e2", "e3"),
                        context="continuous")
        play(evs, *WINDOW_STREAM)
        assert pairs(fired) == [
            (("e1", 1), ("e2", 1)),
            (("e1", 1), ("e2", 2)),
            (("e1", 2), ("e2", 2)),
        ]

    def test_astar_signals_once_with_window_content(self, evs):
        fired = collect(evs, evs.aperiodic_star("e1", "e2", "e3"),
                        context="recent")
        play(evs, *WINDOW_STREAM)
        assert pairs(fired) == [
            (("e1", 2), ("e2", 2), ("e3", 1)),
        ]

    def test_astar_continuous_one_per_window(self, evs):
        fired = collect(evs, evs.aperiodic_star("e1", "e2", "e3"),
                        context="continuous")
        play(evs, *WINDOW_STREAM)
        got = pairs(fired)
        assert (("e1", 1), ("e2", 1), ("e2", 2), ("e3", 1)) in got
        assert (("e1", 2), ("e2", 2), ("e3", 1)) in got
        assert len(got) == 2


class TestDeferredRuleTable:
    """The paper's §2.3 transform, checked against the same stream shape:
    events inside one transaction accumulate; the rule sees them once."""

    def test_a_star_formulation(self, evs):
        from repro.sentinel import Sentinel

        system = Sentinel(name="conformance", activate=False)
        system.explicit_event("E")
        fired = []
        system.rule("deferred", "E", condition=lambda o: True, action=fired.append,
                    coupling="deferred")
        with system.transaction():
            system.raise_event("E", idx=1)
            system.raise_event("E", idx=2)
            system.raise_event("E", idx=3)
            assert fired == []
        assert len(fired) == 1
        # begin_transaction + 3 Es + pre_commit = the A* window content
        assert fired[0].params.values("idx") == [1, 2, 3]
        system.close()
