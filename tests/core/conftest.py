"""Shared fixtures for core tests."""

import itertools

import pytest

from repro.clock import SimulatedClock
from repro.core.detector import LocalEventDetector


@pytest.fixture()
def det():
    """A detector with a logical clock."""
    detector = LocalEventDetector()
    yield detector
    detector.shutdown()


@pytest.fixture()
def tdet():
    """A detector with a simulated clock, for temporal operators."""
    detector = LocalEventDetector(clock=SimulatedClock())
    yield detector
    detector.shutdown()


_rule_ids = itertools.count(1)


def collect(detector, event, context="recent", **kwargs):
    """Subscribe a collector rule; returns the list detections land in."""
    fired = []
    detector.rule(
        f"collector{next(_rule_ids)}",
        event,
        condition=lambda occ: True,
        action=fired.append,
        context=context,
        **kwargs,
    )
    return fired


def names(occurrence):
    """Constituent primitive event names, chronological."""
    return [p.event_name for p in occurrence.params]
