"""Concurrency stress: rules on pool threads, locks, and deadlocks."""

import threading
import time

import pytest

from repro.core.detector import LocalEventDetector
from repro.core.scheduler import ThreadedExecutor
from repro.transactions.nested import NestedTransactionManager, TxnState


@pytest.fixture()
def system():
    ntm = NestedTransactionManager(lock_timeout=5.0)
    det = LocalEventDetector(
        executor=ThreadedExecutor(max_workers=8),
        txn_manager=ntm,
        error_policy="abort_rule",
    )
    det.explicit_event("e")
    yield det, ntm
    det.shutdown()


class TestConcurrentSubtransactions:
    def test_sibling_rules_serialize_on_shared_object(self, system):
        """Two concurrent rules lock the same resource; both complete
        (one waits), total effect equals serial execution."""
        det, ntm = system
        counter = {"value": 0}
        lock_resource = "shared-counter"

        def bump(occ):
            sub = det.current_transaction()
            sub.lock_exclusive(lock_resource)
            current = counter["value"]
            time.sleep(0.005)  # widen the race window
            counter["value"] = current + 1

        for i in range(4):
            det.rule(f"bump{i}", "e", condition=lambda o: True, action=bump, priority=5)
        top = ntm.begin_top()
        det.set_current_transaction(top)
        det.raise_event("e")
        assert counter["value"] == 4
        assert det.scheduler.errors == []

    def test_deadlocked_rule_aborts_and_releases(self, system):
        """Two sibling rules lock (a,b) in opposite orders: the lock
        manager sacrifices one; the other completes."""
        det, ntm = system
        completed = []
        ready = threading.Barrier(2, timeout=5)

        def make_action(first, second, tag):
            def action(occ):
                sub = det.current_transaction()
                sub.lock_exclusive(first)
                try:
                    ready.wait()
                except threading.BrokenBarrierError:
                    pass  # the other rule already died
                sub.lock_exclusive(second)
                completed.append(tag)
            return action

        det.rule("ab", "e", condition=lambda o: True, action=make_action("a", "b", "ab"),
                 priority=5)
        det.rule("ba", "e", condition=lambda o: True, action=make_action("b", "a", "ba"),
                 priority=5)
        top = ntm.begin_top()
        det.set_current_transaction(top)
        det.raise_event("e")
        # Exactly one completed; the victim's subtransaction aborted.
        assert len(completed) == 1
        assert len(det.scheduler.errors) == 1
        victim_states = [
            t.state for t in ntm.tree(top) if t.label.startswith("rule:")
        ]
        assert victim_states.count(TxnState.ABORTED) == 1
        assert victim_states.count(TxnState.COMMITTED) == 1

    def test_aborted_sibling_undo_does_not_affect_survivor(self, system):
        det, ntm = system

        class Doc:
            text = "original"

        doc = Doc()

        def good(occ):
            sub = det.current_transaction()
            sub.lock_exclusive("doc")
            sub.protect(doc)
            doc.text = "good edit"

        def bad(occ):
            sub = det.current_transaction()
            sub.lock_exclusive("scratch")
            sub.protect(doc)  # snapshots whatever it sees
            raise ValueError("fails after protecting")

        det.rule("good", "e", condition=lambda o: True, action=good, priority=10)
        det.rule("bad", "e", condition=lambda o: True, action=bad, priority=1)
        top = ntm.begin_top()
        det.set_current_transaction(top)
        det.raise_event("e")
        # priority classes serialize: good (p10) commits before bad (p1)
        # runs; bad's abort restores only its own snapshot ("good edit").
        assert doc.text == "good edit"
        assert len(det.scheduler.errors) == 1

    def test_many_events_from_many_threads(self, system):
        """Notifications from several application threads interleave
        safely (each thread has its own frame stack)."""
        det, __ = system
        fired = []
        lock = threading.Lock()

        def record(occ):
            with lock:
                fired.append(occ.params.value("tag"))

        det.rule("collect", "e", condition=lambda o: True, action=record)

        def app_thread(tag):
            for i in range(20):
                det.raise_event("e", tag=tag)

        threads = [
            threading.Thread(target=app_thread, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=20)
        assert len(fired) == 80
        assert det.scheduler.errors == []
