"""The keyword-first rule() API and its one-release positional shim."""

import pytest

from repro import Sentinel
from repro.core.detector import LocalEventDetector
from repro.core.rules import always, resolve_positional_rule_args
from repro.errors import RuleError


@pytest.fixture
def det():
    detector = LocalEventDetector()
    detector.explicit_event("e")
    yield detector
    detector.shutdown()


def test_keyword_call_is_clean(det, recwarn):
    det.rule("r", "e", condition=lambda o: True, action=lambda o: None)
    assert not [w for w in recwarn if w.category is DeprecationWarning]


def test_condition_defaults_to_always(det):
    fired = []
    det.rule("r", "e", action=lambda o: fired.append(1))
    det.raise_event("e")
    assert fired == [1]


def test_positional_condition_action_warns_but_works(det):
    fired = []
    with pytest.warns(DeprecationWarning,
                      match="condition/action positionally"):
        det.rule("r", "e", lambda o: True, lambda o: fired.append(1))
    det.raise_event("e")
    assert fired == [1]


def test_positional_condition_with_keyword_action(det):
    fired = []
    with pytest.warns(DeprecationWarning):
        det.rule("r", "e", lambda o: True,
                 action=lambda o: fired.append(1))
    det.raise_event("e")
    assert fired == [1]


def test_sentinel_facade_shim_warns():
    system = Sentinel(name="shim")
    system.explicit_event("e")
    with pytest.warns(DeprecationWarning):
        system.rule("r", "e", lambda o: True, lambda o: None)
    system.close()


def test_action_is_required(det):
    with pytest.raises(RuleError, match="requires an action"):
        det.rule("r", "e", condition=lambda o: True)


def test_condition_given_twice_rejected(det):
    with pytest.warns(DeprecationWarning):
        with pytest.raises(RuleError, match="condition both"):
            det.rule("r", "e", lambda o: True,
                     condition=lambda o: False, action=lambda o: None)


def test_action_given_twice_rejected(det):
    with pytest.warns(DeprecationWarning):
        with pytest.raises(RuleError, match="action both"):
            det.rule("r", "e", lambda o: True, lambda o: None,
                     action=lambda o: None)


def test_too_many_positionals_rejected(det):
    with pytest.raises(TypeError, match="at most 2 positional"):
        det.rule("r", "e", lambda o: True, lambda o: None, "recent")


def test_resolver_passthrough_for_keywords():
    cond, act = resolve_positional_rule_args((), always, print)
    assert cond is always and act is print
