"""The keyword-first rule() API after the positional shim's removal.

The deprecated ``rule(name, event, condition, action)`` positional
signature warned for one release and is now gone: any positional
condition/action argument raises :class:`RemovedAPIError` [E2] naming
the migration tool, on both the detector and the Sentinel facade.
"""

import pytest

from repro import Sentinel
from repro.core.detector import LocalEventDetector
from repro.core.rules import reject_positional_rule_args
from repro.errors import RemovedAPIError, RuleError, error_code


@pytest.fixture
def det():
    detector = LocalEventDetector()
    detector.explicit_event("e")
    yield detector
    detector.shutdown()


def test_keyword_call_is_clean(det, recwarn):
    det.rule("r", "e", condition=lambda o: True, action=lambda o: None)
    assert not [w for w in recwarn if w.category is DeprecationWarning]


def test_condition_defaults_to_always(det):
    fired = []
    det.rule("r", "e", action=lambda o: fired.append(1))
    det.raise_event("e")
    assert fired == [1]


def test_positional_condition_action_removed(det):
    with pytest.raises(RemovedAPIError, match="migrate_rule_calls"):
        det.rule("r", "e", lambda o: True, lambda o: None)
    assert "r" not in det.rules


def test_positional_condition_with_keyword_action_removed(det):
    with pytest.raises(RemovedAPIError, match="positional"):
        det.rule("r", "e", lambda o: True, action=lambda o: None)


def test_sentinel_facade_rejects_positionals():
    system = Sentinel(name="shim")
    try:
        system.explicit_event("e")
        with pytest.raises(RemovedAPIError, match="migrate_rule_calls"):
            system.rule("r", "e", lambda o: True, lambda o: None)
    finally:
        system.close()


def test_removed_api_error_is_e2(det):
    with pytest.raises(RemovedAPIError) as excinfo:
        det.rule("r", "e", lambda o: True, lambda o: None)
    assert error_code(excinfo.value) == 2


def test_action_is_required(det):
    with pytest.raises(RuleError, match="requires an action"):
        det.rule("r", "e", condition=lambda o: True)


def test_rejector_accepts_empty_positionals():
    reject_positional_rule_args(())  # keyword-only calls pass through


def test_rejector_counts_offending_arguments():
    with pytest.raises(RemovedAPIError, match="2 positional"):
        reject_positional_rule_args((print, print))
