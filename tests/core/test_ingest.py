"""Sentinel.ingest(): the awaitable streaming front door.

Contract under test: admission is awaitable from any event loop,
bounded (a full queue suspends the producer — backpressure, not
unbounded memory), ordered (items apply in admission order), and
flushed in batches through ``raise_events``/``notify_batch``.
``ingest_flush`` is a barrier; ``close()`` drains what was accepted
and makes later ingests fail fast.
"""

import asyncio
import threading

import pytest

from repro.sentinel import Sentinel


def make_system(**kwargs) -> Sentinel:
    s = Sentinel(name="ingest", **kwargs)
    s.explicit_event("tick")
    return s


def test_items_apply_in_admission_order():
    s = make_system(ingest_batch=16)
    hits: list[int] = []
    gate = threading.Event()

    def act(occ):
        if not hits:
            # wedge the first flush so the rest of the stream piles up
            # in the queue — batching becomes deterministic, not a race
            # between producer and drain
            gate.wait(timeout=30.0)
        hits.append(occ["n"])

    s.rule("count", "tick", action=act)

    async def produce():
        for n in range(300):
            await s.ingest(("tick", {"n": n}))

    asyncio.run(produce())
    gate.set()
    s.ingest_flush()
    assert hits == list(range(300))
    stats = s.ingest_stats()
    assert stats["accepted"] == 300
    assert stats["flushed"] == 300
    assert stats["depth"] == 0
    # batching really happened: the backlog drained in ~300/16 flushes
    assert stats["flushes"] <= 300 // 4
    s.close()


def test_mixed_kinds_keep_their_relative_order():
    """Explicit events and notify items interleave; a kind switch is a
    flush boundary, so the recorded order matches admission exactly."""
    s = make_system()
    s.detector.primitive_event("press", "Button", "begin", "push")
    order: list[str] = []
    s.rule("t", "tick", action=lambda occ: order.append("tick"))
    s.rule("p", "press", action=lambda occ: order.append("press"))

    async def produce():
        for i in range(30):
            if i % 3 == 0:
                await s.ingest((None, "Button", "push", "begin"))
            else:
                await s.ingest("tick")

    asyncio.run(produce())
    s.ingest_flush()
    expected = ["press" if i % 3 == 0 else "tick" for i in range(30)]
    assert order == expected
    s.close()


def test_full_queue_suspends_the_producer():
    """Backpressure: with the detector wedged mid-flush, a producer
    streaming more than capacity+batch items parks on await instead of
    completing (and finishes once the flush is released)."""
    wedge = threading.Event()
    s = make_system(ingest_capacity=4, ingest_batch=2)
    s.rule("slow", "tick",
           action=lambda occ: wedge.wait(timeout=30.0))
    produced = []
    done = threading.Event()

    def producer_thread():
        async def produce():
            for n in range(20):
                await s.ingest(("tick", {"n": n}))
                produced.append(n)
        asyncio.run(produce())
        done.set()

    thread = threading.Thread(target=producer_thread, daemon=True)
    thread.start()
    # The producer must stall: capacity (4) + one in-flight batch (2)
    # is all the system will take while the flush is wedged.
    deadline = threading.Event()
    deadline.wait(0.3)
    assert not done.is_set(), "producer finished against a wedged flush"
    assert len(produced) <= 4 + 2
    wedge.set()
    assert done.wait(timeout=10.0), "producer never resumed after release"
    s.ingest_flush()
    assert s.ingest_stats()["flushed"] == 20
    s.close()


def test_concurrent_producers_from_separate_loops():
    """Two threads, two event loops, one front door: every item is
    accepted and flushed exactly once."""
    s = make_system(ingest_capacity=8, ingest_batch=4)
    hits: list[int] = []
    lock = threading.Lock()

    def record(occ):
        with lock:
            hits.append(occ["n"])

    s.rule("count", "tick", action=record)

    def producer(base: int):
        async def produce():
            for n in range(base, base + 100):
                await s.ingest(("tick", {"n": n}))
        asyncio.run(produce())

    threads = [
        threading.Thread(target=producer, args=(base,), daemon=True)
        for base in (0, 1000)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30.0)
        assert not t.is_alive()
    s.ingest_flush()
    assert sorted(hits) == list(range(100)) + list(range(1000, 1100))
    # each producer's own order is preserved even when interleaved
    assert [n for n in hits if n < 1000] == list(range(100))
    assert [n for n in hits if n >= 1000] == list(range(1000, 1100))
    s.close()


def test_ingest_can_trigger_async_rules():
    """The drain must not deadlock the lane: a flush triggering an
    async-lane rule runs that coroutine on the same loop the queue
    lives on."""
    s = make_system()
    ran = threading.Event()

    async def act(occ):
        await asyncio.sleep(0.001)
        ran.set()

    s.rule("a", "tick", action=act)
    asyncio.run(s.ingest("tick"))
    s.ingest_flush()
    assert ran.is_set()
    s.close()


def test_close_drains_accepted_items_then_fails_fast():
    s = make_system(ingest_batch=8)
    hits: list[int] = []
    s.rule("count", "tick", action=lambda occ: hits.append(occ["n"]))

    async def produce():
        for n in range(50):
            await s.ingest(("tick", {"n": n}))

    asyncio.run(produce())
    s.close()  # no explicit flush: close() must drain the backlog
    assert hits == list(range(50))
    with pytest.raises(RuntimeError, match="closed"):
        asyncio.run(s.ingest("tick"))


def test_malformed_items_fail_in_the_callers_frame():
    s = make_system()
    with pytest.raises(TypeError, match="ingest\\(\\) items"):
        asyncio.run(s.ingest(42))
    with pytest.raises(TypeError, match="ingest\\(\\) items"):
        asyncio.run(s.ingest(("tick", 1, 2)))  # 3-tuple: neither kind
    # nothing was admitted by the failures
    assert s.ingest_stats()["accepted"] == 0
    s.close()


def test_flush_errors_are_recorded_not_raised():
    """A bad event name admitted to the stream surfaces in
    ingest_stats()["errors"], and the drain keeps serving."""
    s = make_system()
    hits: list[int] = []
    s.rule("count", "tick", action=lambda occ: hits.append(occ["n"]))

    async def produce():
        await s.ingest("no_such_event")
        # give the bad batch its own flush so the good item that
        # follows is not collateral damage of the same detector call
        s.ingest_flush()
        await s.ingest(("tick", {"n": 1}))

    asyncio.run(produce())
    s.ingest_flush()
    assert hits == [1]
    stats = s.ingest_stats()
    assert stats["errors"] == 1
    s.close()


def test_stats_are_all_zero_before_first_use():
    s = Sentinel(name="cold", ingest_capacity=7, ingest_batch=3)
    assert s.ingest_stats() == {
        "accepted": 0, "flushed": 0, "flushes": 0, "depth": 0,
        "errors": 0, "capacity": 7, "batch": 3,
    }
    s.close()
