"""Unit tests for the event graph: naming, sharing, flush, registry."""

import pytest

from repro.errors import DuplicateEvent, UnknownEvent
from tests.core.conftest import collect


@pytest.fixture()
def g(det):
    det.explicit_event("a")
    det.explicit_event("b")
    det.explicit_event("c")
    return det


class TestNaming:
    def test_define_binds_alias(self, g):
        node = (g.event('a') & g.event('b'))
        g.define("my_event", node)
        assert g.event("my_event") is node

    def test_multiple_names_one_node(self, g):
        node = g.define("first", (g.event('a') & g.event('b')))
        g.define("second", node)
        assert g.event("first") is g.event("second")

    def test_rebinding_name_rejected(self, g):
        g.define("x", (g.event('a') & g.event('b')))
        with pytest.raises(DuplicateEvent):
            g.define("x", (g.event('a') >> g.event('b')))

    def test_unknown_lookup_raises(self, g):
        with pytest.raises(UnknownEvent):
            g.event("nope")

    def test_names_listing(self, g):
        g.define("pair", (g.event('a') & g.event('b')))
        assert {"a", "b", "c", "pair"} <= set(g.graph.names())


class TestSharing:
    def test_same_children_same_operator_shared(self, g):
        assert (g.event('a') & g.event('b')) is (g.event('a') & g.event('b'))
        assert (g.event('a') >> g.event('b')) is (g.event('a') >> g.event('b'))

    def test_different_operator_not_shared(self, g):
        assert (g.event('a') & g.event('b')) is not (g.event('a') >> g.event('b'))

    def test_operand_order_matters(self, g):
        assert (g.event('a') >> g.event('b')) is not (g.event('b') >> g.event('a'))

    def test_periodic_period_part_of_key(self, g):
        p1 = g.periodic("a", 5.0, "b")
        p2 = g.periodic("a", 5.0, "b")
        p3 = g.periodic("a", 7.0, "b")
        assert p1 is p2
        assert p1 is not p3

    def test_shared_hit_counter(self, g):
        before = g.graph.stats.shared_hits
        (g.event('a') & g.event('b'))
        (g.event('a') & g.event('b'))
        (g.event('a') & g.event('b'))
        assert g.graph.stats.shared_hits == before + 2

    def test_nested_sharing(self, g):
        inner1 = (g.event('a') & g.event('b'))
        tree1 = (inner1 >> g.event('c'))
        tree2 = ((g.event('a') & g.event('b')) >> g.event('c'))
        assert tree1 is tree2


class TestSubtreeFlush:
    def test_flush_named_expression_only(self, g):
        ab = g.define("ab", (g.event('a') & g.event('b')))
        ac = g.define("ac", (g.event('a') & g.event('c')))
        fired_ab = collect(g, ab)
        fired_ac = collect(g, ac)
        g.raise_event("a")
        g.flush("ab")
        g.raise_event("b")
        g.raise_event("c")
        assert fired_ab == []
        assert len(fired_ac) == 1

    def test_flush_shared_leaf_affects_subtree_walk_once(self, g):
        """Flushing an expression containing a shared node terminates."""
        shared = (g.event('a') & g.event('b'))
        tree = g.define("diamond", (shared >> (shared | g.event('c'))))
        collect(g, tree)
        g.flush("diamond")  # must not loop on the diamond shape


class TestLabels:
    def test_expression_labels_read_like_snoop(self, g):
        assert (g.event('a') & g.event('b')).label == "(a ^ b)"
        assert (g.event('a') >> g.event('b')).label == "(a ; b)"
        assert (g.event('a') | g.event('b')).label == "(a | b)"
        assert g.not_("a", "b", "c").label == "NOT(b)[a, c]"
        assert g.aperiodic("a", "b", "c").label == "A(a, b, c)"
        assert g.aperiodic_star("a", "b", "c").label == "A*(a, b, c)"
        assert g.periodic("a", 5, "c").label == "P(a, 5, c)"
        assert g.plus("a", 3).label == "(a + 3)"

    def test_named_node_uses_its_name(self, g):
        node = g.define("pair", (g.event('a') & g.event('b')))
        assert node.label == "pair"


class TestTemporalRegistry:
    def test_temporal_nodes_listed(self, g):
        g.temporal_event("tick", every=5.0)
        g.plus("a", 2.0)
        g.periodic("a", 3.0, "b")
        kinds = {type(n).__name__ for n in g.graph.temporal_nodes()}
        assert kinds == {"TemporalEventNode", "PlusNode", "PeriodicNode"}

    def test_primitives_for_class_index(self, det):
        det.primitive_event("e1", "Widget", "end", "m1")
        det.primitive_event("e2", "Widget", "begin", "m2")
        det.primitive_event("e3", "Gadget", "end", "m1")
        assert len(det.graph.primitives_for("Widget")) == 2
        assert len(det.graph.primitives_for("Gadget")) == 1
        assert det.graph.primitives_for("Unknown") == []
