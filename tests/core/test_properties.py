"""Property-based tests (hypothesis) on detection semantics.

Each property pins an algebraic invariant of the Snoop operators
against a simple reference model computed directly from the input
interleaving, over randomized event streams.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detector import LocalEventDetector
from tests.core.conftest import collect

# Streams are strings over {a, b} (and sometimes c), one character per
# primitive occurrence, in order.
ab_streams = st.text(alphabet="ab", min_size=0, max_size=40)
abc_streams = st.text(alphabet="abc", min_size=0, max_size=40)


def run_stream(stream: str, build, context: str):
    """Build the expression, subscribe a collector, play the stream."""
    det = LocalEventDetector()
    for name in set("abc"):
        det.explicit_event(name)
    expr = build(det)
    fired = collect(det, expr, context=context)
    for i, ch in enumerate(stream):
        det.raise_event(ch, n=i)
    det.shutdown()
    return fired


class TestOrProperties:
    @settings(max_examples=60)
    @given(ab_streams)
    def test_or_fires_once_per_occurrence(self, stream):
        fired = run_stream(
            stream, lambda d: (d.event('a') | d.event('b')), context="recent"
        )
        assert len(fired) == len(stream)

    @settings(max_examples=60)
    @given(ab_streams)
    def test_or_preserves_order_and_payload(self, stream):
        fired = run_stream(
            stream, lambda d: (d.event('a') | d.event('b')), context="chronicle"
        )
        assert [f.params[0].event_name for f in fired] == list(stream)
        assert [f.params.value("n") for f in fired] == list(range(len(stream)))


class TestAndChronicleProperties:
    @settings(max_examples=60)
    @given(ab_streams)
    def test_detection_count_is_min_of_sides(self, stream):
        fired = run_stream(
            stream, lambda d: (d.event('a') & d.event('b')), context="chronicle"
        )
        assert len(fired) == min(stream.count("a"), stream.count("b"))

    @settings(max_examples=60)
    @given(ab_streams)
    def test_fifo_pairing_is_order_preserving(self, stream):
        fired = run_stream(
            stream, lambda d: (d.event('a') & d.event('b')), context="chronicle"
        )
        a_positions = [i for i, ch in enumerate(stream) if ch == "a"]
        b_positions = [i for i, ch in enumerate(stream) if ch == "b"]
        for k, occ in enumerate(fired):
            assert occ.params.value("n", event_name="a") == a_positions[k]
            assert occ.params.value("n", event_name="b") == b_positions[k]

    @settings(max_examples=60)
    @given(ab_streams)
    def test_each_occurrence_used_at_most_once(self, stream):
        fired = run_stream(
            stream, lambda d: (d.event('a') & d.event('b')), context="chronicle"
        )
        used = [p.seq for occ in fired for p in occ.params]
        assert len(used) == len(set(used))


class TestSeqChronicleProperties:
    @staticmethod
    def reference_pairs(stream):
        """Bracket matching: each b consumes the oldest unmatched a."""
        pending = []
        pairs = []
        for i, ch in enumerate(stream):
            if ch == "a":
                pending.append(i)
            elif pending:
                pairs.append((pending.pop(0), i))
        return pairs

    @settings(max_examples=60)
    @given(ab_streams)
    def test_matches_bracket_model(self, stream):
        fired = run_stream(
            stream, lambda d: (d.event('a') >> d.event('b')), context="chronicle"
        )
        expected = self.reference_pairs(stream)
        got = [
            (occ.params.value("n", event_name="a"),
             occ.params.value("n", event_name="b"))
            for occ in fired
        ]
        assert got == expected

    @settings(max_examples=60)
    @given(ab_streams)
    def test_ordering_invariant(self, stream):
        """In every detection the initiator strictly precedes the
        terminator."""
        fired = run_stream(
            stream, lambda d: (d.event('a') >> d.event('b')), context="chronicle"
        )
        for occ in fired:
            left, right = occ.constituents
            assert left.end < right.start


class TestCumulativeProperties:
    @settings(max_examples=60)
    @given(ab_streams)
    def test_cumulative_and_partitions_occurrences(self, stream):
        """Every input occurrence appears in at most one composite, and
        the composites' constituents are disjoint and complete up to
        the last detection."""
        fired = run_stream(
            stream, lambda d: (d.event('a') & d.event('b')), context="cumulative"
        )
        seen = [p.seq for occ in fired for p in occ.params]
        assert len(seen) == len(set(seen))
        # Between detections, counts must be consistent: each composite
        # has at least one of each side.
        for occ in fired:
            names = [p.event_name for p in occ.params]
            assert "a" in names and "b" in names

    @settings(max_examples=60)
    @given(ab_streams)
    def test_recent_constituents_always_latest(self, stream):
        """In recent context the 'a' inside any detection is the latest
        'a' so far."""
        fired = run_stream(
            stream, lambda d: (d.event('a') & d.event('b')), context="recent"
        )
        latest_by_prefix = {}
        last = -1
        for i, ch in enumerate(stream):
            if ch == "a":
                last = i
            latest_by_prefix[i] = last
        for occ in fired:
            a_n = occ.params.value("n", event_name="a")
            end_n = max(p["n"] for p in occ.params)
            assert a_n == latest_by_prefix[end_n]


class TestNotProperties:
    @settings(max_examples=60)
    @given(abc_streams)
    def test_not_never_contains_forbidden(self, stream):
        """NOT(b)[a, c] detections never span a 'b'."""
        fired = run_stream(
            stream, lambda d: d.not_("a", "b", "c"), context="chronicle"
        )
        for occ in fired:
            start_n = occ.params.value("n", event_name="a")
            end_n = occ.params.value("n", event_name="c")
            window = stream[start_n + 1 : end_n]
            assert "b" not in window


class TestDetectionInvariants:
    @settings(max_examples=40)
    @given(abc_streams, st.sampled_from(["recent", "chronicle",
                                         "continuous", "cumulative"]))
    def test_composite_intervals_well_formed(self, stream, context):
        fired = run_stream(
            stream,
            lambda d: (d.graph.get("a") & (d.event('b') >> d.event('c'))),
            context=context,
        )
        for occ in fired:
            assert occ.start <= occ.end
            primitives = list(occ.params)
            times = [p.at for p in primitives]
            assert times == sorted(times)  # chronological flattening
            assert occ.start == min(times)
            assert occ.end == max(times)

    @settings(max_examples=40)
    @given(ab_streams, st.sampled_from(["recent", "chronicle",
                                        "continuous", "cumulative"]))
    def test_determinism(self, stream, context):
        """Same stream, same context -> identical detection structure."""

        def signature():
            fired = run_stream(
                stream, lambda d: (d.event('a') & d.event('b')), context=context
            )
            return [
                tuple((p.event_name, p["n"]) for p in occ.params)
                for occ in fired
            ]

        assert signature() == signature()

    @settings(max_examples=40)
    @given(ab_streams)
    def test_sharing_does_not_change_semantics(self, stream):
        """Graph sharing on vs off yields identical detections."""

        def run(sharing):
            det = LocalEventDetector(sharing=sharing)
            det.explicit_event("a")
            det.explicit_event("b")
            fired1 = collect(det, (det.event('a') & det.event('b')))
            fired2 = collect(det, (det.event('a') & det.event('b')))
            for i, ch in enumerate(stream):
                det.raise_event(ch, n=i)
            det.shutdown()
            return (
                [tuple(p["n"] for p in occ.params) for occ in fired1],
                [tuple(p["n"] for p in occ.params) for occ in fired2],
            )

        shared = run(True)
        unshared = run(False)
        assert shared == unshared
        assert shared[0] == shared[1]

    @settings(max_examples=40)
    @given(ab_streams)
    def test_flush_resets_to_initial_state(self, stream):
        """Flushing mid-stream equals starting fresh from that point."""
        suffix = stream[len(stream) // 2:]

        det = LocalEventDetector()
        det.explicit_event("a")
        det.explicit_event("b")
        fired = collect(det, (det.event('a') & det.event('b')), context="chronicle")
        for i, ch in enumerate(stream[: len(stream) // 2]):
            det.raise_event(ch, n=i)
        det.flush()
        fired.clear()
        for i, ch in enumerate(suffix):
            det.raise_event(ch, n=i)
        after_flush = [
            tuple(p["n"] for p in occ.params) for occ in fired
        ]
        det.shutdown()

        fresh = run_stream(
            suffix, lambda d: (d.event('a') & d.event('b')), context="chronicle"
        )
        fresh_sig = [tuple(p["n"] for p in occ.params) for occ in fresh]
        assert after_flush == fresh_sig
