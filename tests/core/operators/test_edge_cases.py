"""Operator corner cases: composite children, window edges, context flush."""

import pytest

from repro.core.contexts import ParameterContext
from tests.core.conftest import collect, names


@pytest.fixture()
def evs(det):
    for name in ("a", "b", "c", "d"):
        det.explicit_event(name)
    return det


class TestCompositeChildren:
    def test_not_with_composite_window_bounds(self, evs):
        """NOT(c)[(a ^ b), d]: the window opens at the AND completion."""
        expr = evs.not_((evs.event('a') & evs.event('b')), "c", "d")
        fired = collect(evs, expr)
        evs.raise_event("a")
        evs.raise_event("b")  # AND completes: window open
        evs.raise_event("d")
        assert len(fired) == 1

    def test_not_spoiled_by_composite_forbidden(self, evs):
        expr = evs.not_("a", (evs.event('b') >> evs.event('c')), "d")
        fired = collect(evs, expr)
        evs.raise_event("a")
        evs.raise_event("b")
        evs.raise_event("c")  # b;c occurs -> spoils
        evs.raise_event("d")
        assert fired == []

    def test_aperiodic_with_composite_middle(self, evs):
        expr = evs.aperiodic("a", (evs.event('b') & evs.event('c')), "d")
        fired = collect(evs, expr)
        evs.raise_event("a")
        evs.raise_event("b")
        evs.raise_event("c")  # AND inside the window
        assert len(fired) == 1
        assert names(fired[0]) == ["a", "b", "c"]

    def test_and_of_two_composites(self, evs):
        expr = ((evs.event('a') >> evs.event('b')) & (evs.event('c') >> evs.event('d')))
        fired = collect(evs, expr)
        evs.raise_event("a")
        evs.raise_event("c")
        evs.raise_event("b")  # a;b complete
        evs.raise_event("d")  # c;d complete -> AND fires
        assert len(fired) == 1
        assert names(fired[0]) == ["a", "c", "b", "d"]


class TestWindowEdges:
    def test_terminator_at_window_open_instant_ignored(self, evs):
        """A(e1,e2,e3): e3 must strictly follow e1 to close anything."""
        expr = evs.aperiodic("a", "b", "c")
        fired = collect(evs, expr)
        evs.raise_event("c")  # close before any open: ignored
        evs.raise_event("a")
        evs.raise_event("b")
        assert len(fired) == 1

    def test_astar_reopening_does_not_leak_middles(self, evs):
        """In recent context a new initiator replaces the window; the
        old accumulation is discarded with it."""
        expr = evs.aperiodic_star("a", "b", "c")
        fired = collect(evs, expr, context="recent")
        evs.raise_event("a")
        evs.raise_event("b", n=1)
        evs.raise_event("a")  # replaces: n=1 belongs to the dead window
        evs.raise_event("b", n=2)
        evs.raise_event("c")
        assert len(fired) == 1
        assert fired[0].params.values("n") == [2]

    def test_seq_same_timestamp_not_sequence(self, evs):
        """Simultaneous occurrences cannot form a sequence: SEQ needs
        strictly increasing time (chronicle context: FIFO pairing)."""
        both = (evs.event('a') | evs.event('a'))  # same node twice: one occurrence each
        expr = (both >> both)
        fired = collect(evs, expr, context="chronicle")
        evs.raise_event("a")
        assert fired == []  # a single instant cannot follow itself
        evs.raise_event("a")
        assert len(fired) >= 1  # distinct instants do


class TestPerContextFlush:
    def test_flush_single_context_leaves_other(self, evs):
        node = (evs.event('a') & evs.event('b'))
        recent = collect(evs, node, context="recent")
        chronicle = collect(evs, node, context="chronicle")
        evs.raise_event("a")
        evs.flush(ctx=ParameterContext.RECENT)
        evs.raise_event("b")
        assert recent == []  # its pending 'a' was dropped
        assert len(chronicle) == 1  # untouched context still pairs


class TestDegenerateStreams:
    def test_empty_stream_detects_nothing(self, evs):
        import operator as op

        a, b = evs.event("a"), evs.event("b")
        for combine in (op.and_, op.or_, op.rshift):
            fired = collect(evs, combine(a, b))
            assert fired == []

    def test_rule_on_primitive_directly(self, evs):
        fired = collect(evs, "a")
        evs.raise_event("a", n=1)
        assert len(fired) == 1
        assert fired[0].params.value("n") == 1

    def test_self_and_requires_two_occurrences(self, evs):
        """a ^ a pairs two *occurrences* of the same event type."""
        node = evs.event("a")
        expr = (node & node)
        fired = collect(evs, expr, context="chronicle")
        evs.raise_event("a")
        assert len(fired) in (0, 1)  # port0/port1 delivery of one occ
        fired.clear()
        evs.raise_event("a")
        assert fired  # two occurrences definitely pair


class TestDeepTrees:
    def test_ten_level_left_deep_sequence(self, evs):
        expr = evs.event("a")
        stream = []
        for i in range(10):
            leaf = evs.explicit_event(f"s{i}")
            expr = (expr >> leaf)
            stream.append(f"s{i}")
        fired = collect(evs, expr)
        evs.raise_event("a")
        for name in stream:
            evs.raise_event(name)
        assert len(fired) == 1
        assert len(list(fired[0].params)) == 11

    def test_wide_or_tree(self, evs):
        leaves = [evs.explicit_event(f"w{i}") for i in range(16)]
        expr = leaves[0]
        for leaf in leaves[1:]:
            expr = (expr | leaf)
        fired = collect(evs, expr)
        for i in range(16):
            evs.raise_event(f"w{i}")
        assert len(fired) == 16
