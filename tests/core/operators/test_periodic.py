"""Semantics of the temporal operators P, P*, PLUS, and temporal events."""

import pytest

from repro.errors import EventError
from tests.core.conftest import collect


@pytest.fixture()
def win(tdet):
    for name in ("open", "close"):
        tdet.explicit_event(name)
    return tdet


class TestPeriodic:
    def test_fires_every_period_in_window(self, win):
        expr = win.periodic("open", 10.0, "close")
        fired = collect(win, expr)
        win.raise_event("open")
        win.advance_time(10.0)
        assert len(fired) == 1
        win.advance_time(10.0)
        assert len(fired) == 2

    def test_catches_up_over_long_advance(self, win):
        expr = win.periodic("open", 10.0, "close")
        fired = collect(win, expr)
        win.raise_event("open")
        win.advance_time(35.0)
        assert len(fired) == 3  # boundaries at +10, +20, +30

    def test_terminator_stops_firing(self, win):
        expr = win.periodic("open", 10.0, "close")
        fired = collect(win, expr)
        win.raise_event("open")
        win.advance_time(10.0)
        win.raise_event("close")
        win.advance_time(50.0)
        assert len(fired) == 1

    def test_no_window_no_firing(self, win):
        expr = win.periodic("open", 5.0, "close")
        fired = collect(win, expr)
        win.advance_time(100.0)
        assert fired == []

    def test_tick_carries_due_time(self, win):
        expr = win.periodic("open", 10.0, "close")
        fired = collect(win, expr)
        win.raise_event("open")
        opened_at = win.clock.now()
        win.advance_time(25.0)
        assert len(fired) == 2
        times = [f.params.value("time") for f in fired]
        assert times == [opened_at + 10.0, opened_at + 20.0]

    def test_rejects_nonpositive_period(self, win):
        with pytest.raises(ValueError):
            win.periodic("open", 0.0, "close")


class TestPeriodicStar:
    def test_accumulates_until_terminator(self, win):
        expr = win.periodic_star("open", 10.0, "close")
        fired = collect(win, expr)
        win.raise_event("open")
        win.advance_time(25.0)
        assert fired == []
        win.raise_event("close")
        assert len(fired) == 1
        # open + 2 ticks + close
        assert len(fired[0].params) == 4

    def test_no_ticks_no_signal(self, win):
        expr = win.periodic_star("open", 10.0, "close")
        fired = collect(win, expr)
        win.raise_event("open")
        win.advance_time(5.0)
        win.raise_event("close")
        assert fired == []


class TestPlus:
    def test_fires_after_delay(self, win):
        expr = win.plus("open", 7.0)
        fired = collect(win, expr)
        win.raise_event("open")
        win.advance_time(6.0)
        assert fired == []
        win.advance_time(1.0)
        assert len(fired) == 1

    def test_each_initiator_schedules_in_chronicle(self, win):
        expr = win.plus("open", 5.0)
        fired = collect(win, expr, context="chronicle")
        win.raise_event("open")
        win.advance_time(2.0)
        win.raise_event("open")
        win.advance_time(10.0)
        assert len(fired) == 2

    def test_recent_keeps_only_latest(self, win):
        expr = win.plus("open", 5.0)
        fired = collect(win, expr, context="recent")
        win.raise_event("open")
        win.advance_time(2.0)
        win.raise_event("open")  # replaces the pending one
        win.advance_time(10.0)
        assert len(fired) == 1

    def test_rejects_nonpositive_delay(self, win):
        with pytest.raises(ValueError):
            win.plus("open", -1.0)


class TestTemporalEvents:
    def test_absolute_event_fires_once(self, tdet):
        node = tdet.temporal_event("deadline", at=100.0)
        fired = collect(tdet, node)
        tdet.advance_time(99.0)
        assert fired == []
        tdet.advance_time(1.0)
        assert len(fired) == 1
        tdet.advance_time(100.0)
        assert len(fired) == 1  # never again

    def test_recurring_event(self, tdet):
        node = tdet.temporal_event("heartbeat", every=10.0)
        fired = collect(tdet, node)
        tdet.advance_time(25.0)
        assert len(fired) == 2

    def test_requires_exactly_one_spec(self, tdet):
        with pytest.raises(ValueError):
            tdet.temporal_event("bad")
        with pytest.raises(ValueError):
            tdet.temporal_event("bad2", at=1.0, every=2.0)

    def test_temporal_composes_with_operators(self, tdet):
        tdet.explicit_event("update")
        hb = tdet.temporal_event("tick", every=10.0)
        expr = (tdet.event('update') >> hb)
        fired = collect(tdet, expr)
        tdet.raise_event("update")
        tdet.advance_time(10.0)
        assert len(fired) == 1


class TestClockGuards:
    def test_advance_time_requires_simulated_clock(self, det):
        with pytest.raises(EventError):
            det.advance_time(1.0)
