"""Semantics of A and A* (the deferred-rule workhorse)."""

import pytest

from tests.core.conftest import collect, names


@pytest.fixture()
def win(det):
    """Events named like the deferred-rule rewrite: open, e, close."""
    for name in ("open", "e", "close"):
        det.explicit_event(name)
    return det


class TestAperiodic:
    def test_each_middle_in_window_signals(self, win):
        expr = win.aperiodic("open", "e", "close")
        fired = collect(win, expr)
        win.raise_event("open")
        win.raise_event("e", n=1)
        win.raise_event("e", n=2)
        assert len(fired) == 2
        assert fired[0].params.value("n") == 1
        assert fired[1].params.value("n") == 2

    def test_middle_outside_window_ignored(self, win):
        expr = win.aperiodic("open", "e", "close")
        fired = collect(win, expr)
        win.raise_event("e")  # before any window
        win.raise_event("open")
        win.raise_event("close")
        win.raise_event("e")  # after the window closed
        assert fired == []

    def test_terminator_closes_window(self, win):
        expr = win.aperiodic("open", "e", "close")
        fired = collect(win, expr)
        win.raise_event("open")
        win.raise_event("e")
        win.raise_event("close")
        win.raise_event("e")
        assert len(fired) == 1

    def test_recent_newest_window_replaces(self, win):
        expr = win.aperiodic("open", "e", "close")
        fired = collect(win, expr, context="recent")
        win.raise_event("open", w=1)
        win.raise_event("open", w=2)
        win.raise_event("e")
        assert len(fired) == 1
        assert fired[0].params.value("w") == 2

    def test_continuous_all_windows_pair(self, win):
        expr = win.aperiodic("open", "e", "close")
        fired = collect(win, expr, context="continuous")
        win.raise_event("open", w=1)
        win.raise_event("open", w=2)
        win.raise_event("e")
        assert len(fired) == 2

    def test_chronicle_oldest_window_pairs(self, win):
        expr = win.aperiodic("open", "e", "close")
        fired = collect(win, expr, context="chronicle")
        win.raise_event("open", w=1)
        win.raise_event("open", w=2)
        win.raise_event("e")
        assert len(fired) == 1
        assert fired[0].params.value("w") == 1

    def test_cumulative_accumulates_middles(self, win):
        expr = win.aperiodic("open", "e", "close")
        fired = collect(win, expr, context="cumulative")
        win.raise_event("open")
        win.raise_event("e", n=1)
        win.raise_event("e", n=2)
        assert len(fired) == 2
        assert fired[1].params.values("n") == [1, 2]


class TestAperiodicStar:
    def test_signals_once_at_terminator(self, win):
        expr = win.aperiodic_star("open", "e", "close")
        fired = collect(win, expr)
        win.raise_event("open")
        win.raise_event("e", n=1)
        win.raise_event("e", n=2)
        win.raise_event("e", n=3)
        assert fired == []  # nothing until the window closes
        win.raise_event("close")
        assert len(fired) == 1
        assert fired[0].params.values("n") == [1, 2, 3]
        assert names(fired[0]) == ["open", "e", "e", "e", "close"]

    def test_empty_window_does_not_signal(self, win):
        """No E in the window -> no occurrence (deferred-rule semantics:
        a rule whose event never happened must not fire at commit)."""
        expr = win.aperiodic_star("open", "e", "close")
        fired = collect(win, expr)
        win.raise_event("open")
        win.raise_event("close")
        assert fired == []

    def test_window_state_cleared_after_close(self, win):
        expr = win.aperiodic_star("open", "e", "close")
        fired = collect(win, expr)
        win.raise_event("open")
        win.raise_event("e", n=1)
        win.raise_event("close")
        win.raise_event("open")
        win.raise_event("e", n=2)
        win.raise_event("close")
        assert len(fired) == 2
        assert fired[1].params.values("n") == [2]

    def test_middle_without_open_window_ignored(self, win):
        expr = win.aperiodic_star("open", "e", "close")
        fired = collect(win, expr)
        win.raise_event("e")
        win.raise_event("open")
        win.raise_event("close")
        assert fired == []

    def test_continuous_multiple_windows_each_emit(self, win):
        expr = win.aperiodic_star("open", "e", "close")
        fired = collect(win, expr, context="continuous")
        win.raise_event("open", w=1)
        win.raise_event("open", w=2)
        win.raise_event("e")
        win.raise_event("close")
        assert len(fired) == 2

    def test_cumulative_merges_windows(self, win):
        expr = win.aperiodic_star("open", "e", "close")
        fired = collect(win, expr, context="cumulative")
        win.raise_event("open")
        win.raise_event("e", n=1)
        win.raise_event("e", n=2)
        win.raise_event("close")
        assert len(fired) == 1
        assert fired[0].params.values("n") == [1, 2]
