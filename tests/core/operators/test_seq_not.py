"""Semantics of SEQ (;) and NOT in all four parameter contexts."""

import pytest

from tests.core.conftest import collect, names


@pytest.fixture()
def abc(det):
    for name in ("a", "b", "c"):
        det.explicit_event(name)
    return det


class TestSeqRecent:
    def test_order_matters(self, abc):
        fired = collect(abc, (abc.event('a') >> abc.event('b')), context="recent")
        abc.raise_event("b")
        abc.raise_event("a")
        assert fired == []  # b before a does not satisfy a;b
        abc.raise_event("b")
        assert len(fired) == 1
        assert names(fired[0]) == ["a", "b"]

    def test_latest_initiator_pairs(self, abc):
        fired = collect(abc, (abc.event('a') >> abc.event('b')), context="recent")
        abc.raise_event("a", n=1)
        abc.raise_event("a", n=2)
        abc.raise_event("b")
        assert len(fired) == 1
        assert fired[0].params.value("n") == 2

    def test_initiator_survives_detection(self, abc):
        fired = collect(abc, (abc.event('a') >> abc.event('b')), context="recent")
        abc.raise_event("a")
        abc.raise_event("b")
        abc.raise_event("b")
        assert len(fired) == 2


class TestSeqChronicle:
    def test_fifo_consumption(self, abc):
        fired = collect(abc, (abc.event('a') >> abc.event('b')), context="chronicle")
        abc.raise_event("a", n=1)
        abc.raise_event("a", n=2)
        abc.raise_event("b")
        abc.raise_event("b")
        abc.raise_event("b")  # no initiator left
        assert len(fired) == 2
        assert fired[0].params.value("n") == 1
        assert fired[1].params.value("n") == 2


class TestSeqContinuous:
    def test_one_terminator_closes_all(self, abc):
        fired = collect(abc, (abc.event('a') >> abc.event('b')), context="continuous")
        abc.raise_event("a", n=1)
        abc.raise_event("a", n=2)
        abc.raise_event("b")
        assert len(fired) == 2
        abc.raise_event("b")  # everything consumed
        assert len(fired) == 2


class TestSeqCumulative:
    def test_initiators_folded(self, abc):
        fired = collect(abc, (abc.event('a') >> abc.event('b')), context="cumulative")
        abc.raise_event("a", n=1)
        abc.raise_event("a", n=2)
        abc.raise_event("b")
        assert len(fired) == 1
        assert fired[0].params.values("n") == [1, 2]
        assert names(fired[0]) == ["a", "a", "b"]


class TestSeqComposition:
    def test_three_step_sequence(self, abc):
        expr = ((abc.event('a') >> abc.event('b')) >> abc.event('c'))
        fired = collect(abc, expr)
        abc.raise_event("a")
        abc.raise_event("b")
        abc.raise_event("c")
        assert len(fired) == 1
        assert names(fired[0]) == ["a", "b", "c"]

    def test_wrong_internal_order_rejected(self, abc):
        expr = ((abc.event('a') >> abc.event('b')) >> abc.event('c'))
        fired = collect(abc, expr)
        abc.raise_event("b")
        abc.raise_event("a")
        abc.raise_event("c")
        assert fired == []

    def test_interval_semantics_of_composite_initiator(self, abc):
        """(a;b);c requires the *whole* a;b interval before c."""
        expr = ((abc.event('a') >> abc.event('b')) >> abc.event('c'))
        fired = collect(abc, expr)
        abc.raise_event("a")
        abc.raise_event("b")
        abc.raise_event("c")
        occ = fired[0]
        assert occ.start < occ.end
        inner = occ.constituents[0]
        assert inner.end < occ.constituents[1].start


class TestNot:
    def test_detects_absence(self, abc):
        expr = abc.not_("a", "b", "c")  # NOT(b)[a, c]
        fired = collect(abc, expr)
        abc.raise_event("a")
        abc.raise_event("c")
        assert len(fired) == 1
        assert names(fired[0]) == ["a", "c"]

    def test_middle_event_spoils_detection(self, abc):
        expr = abc.not_("a", "b", "c")
        fired = collect(abc, expr)
        abc.raise_event("a")
        abc.raise_event("b")
        abc.raise_event("c")
        assert fired == []

    def test_new_initiator_after_spoil_restarts(self, abc):
        expr = abc.not_("a", "b", "c")
        fired = collect(abc, expr)
        abc.raise_event("a")
        abc.raise_event("b")  # spoils
        abc.raise_event("a")  # fresh window
        abc.raise_event("c")
        assert len(fired) == 1

    def test_terminator_without_initiator_ignored(self, abc):
        expr = abc.not_("a", "b", "c")
        fired = collect(abc, expr)
        abc.raise_event("c")
        assert fired == []

    def test_chronicle_consumes_oldest(self, abc):
        expr = abc.not_("a", "b", "c")
        fired = collect(abc, expr, context="chronicle")
        abc.raise_event("a", n=1)
        abc.raise_event("a", n=2)
        abc.raise_event("c")
        abc.raise_event("c")
        assert len(fired) == 2
        assert fired[0].params.value("n") == 1
        assert fired[1].params.value("n") == 2

    def test_continuous_closes_all_windows(self, abc):
        expr = abc.not_("a", "b", "c")
        fired = collect(abc, expr, context="continuous")
        abc.raise_event("a", n=1)
        abc.raise_event("a", n=2)
        abc.raise_event("c")
        assert len(fired) == 2

    def test_cumulative_folds_initiators(self, abc):
        expr = abc.not_("a", "b", "c")
        fired = collect(abc, expr, context="cumulative")
        abc.raise_event("a", n=1)
        abc.raise_event("a", n=2)
        abc.raise_event("c")
        assert len(fired) == 1
        assert fired[0].params.values("n") == [1, 2]

    def test_spoil_clears_every_pending_window(self, abc):
        expr = abc.not_("a", "b", "c")
        fired = collect(abc, expr, context="continuous")
        abc.raise_event("a")
        abc.raise_event("a")
        abc.raise_event("b")
        abc.raise_event("c")
        assert fired == []
