"""Semantics of AND (^) and OR (|) in all four parameter contexts."""

import pytest

from tests.core.conftest import collect, names


@pytest.fixture()
def ab(det):
    det.explicit_event("a")
    det.explicit_event("b")
    return det


class TestAndRecent:
    def test_detects_in_either_order(self, ab):
        fired = collect(ab, (ab.event('a') & ab.event('b')), context="recent")
        ab.raise_event("a")
        ab.raise_event("b")
        assert len(fired) == 1
        assert names(fired[0]) == ["a", "b"]

    def test_b_then_a(self, ab):
        fired = collect(ab, (ab.event('a') & ab.event('b')), context="recent")
        ab.raise_event("b")
        ab.raise_event("a")
        assert len(fired) == 1
        assert names(fired[0]) == ["b", "a"]

    def test_most_recent_occurrence_pairs(self, ab):
        fired = collect(ab, (ab.event('a') & ab.event('b')), context="recent")
        ab.raise_event("a", n=1)
        ab.raise_event("a", n=2)  # replaces n=1
        ab.raise_event("b")
        assert len(fired) == 1
        assert fired[0].params.value("n") == 2

    def test_initiator_not_consumed(self, ab):
        """In recent context a stored occurrence pairs repeatedly."""
        fired = collect(ab, (ab.event('a') & ab.event('b')), context="recent")
        ab.raise_event("a")
        ab.raise_event("b")
        ab.raise_event("b")  # pairs again with the same (latest) a
        assert len(fired) == 2

    def test_single_side_never_fires(self, ab):
        fired = collect(ab, (ab.event('a') & ab.event('b')), context="recent")
        for __ in range(5):
            ab.raise_event("a")
        assert fired == []


class TestAndChronicle:
    def test_fifo_pairing(self, ab):
        fired = collect(ab, (ab.event('a') & ab.event('b')), context="chronicle")
        ab.raise_event("a", n=1)
        ab.raise_event("a", n=2)
        ab.raise_event("b", m=10)
        ab.raise_event("b", m=20)
        assert len(fired) == 2
        assert fired[0].params.value("n") == 1
        assert fired[0].params.value("m") == 10
        assert fired[1].params.value("n") == 2
        assert fired[1].params.value("m") == 20

    def test_occurrences_consumed(self, ab):
        fired = collect(ab, (ab.event('a') & ab.event('b')), context="chronicle")
        ab.raise_event("a")
        ab.raise_event("b")
        ab.raise_event("b")  # no a left to pair with
        assert len(fired) == 1


class TestAndContinuous:
    def test_terminator_completes_all_initiators(self, ab):
        fired = collect(ab, (ab.event('a') & ab.event('b')), context="continuous")
        ab.raise_event("a", n=1)
        ab.raise_event("a", n=2)
        ab.raise_event("b")
        assert len(fired) == 2
        assert sorted(f.params.value("n") for f in fired) == [1, 2]

    def test_initiators_consumed_by_detection(self, ab):
        fired = collect(ab, (ab.event('a') & ab.event('b')), context="continuous")
        ab.raise_event("a")
        ab.raise_event("b")
        ab.raise_event("b")  # nothing pending -> stored as initiator itself
        assert len(fired) == 1
        ab.raise_event("a")  # completes the pending b
        assert len(fired) == 2


class TestAndCumulative:
    def test_all_occurrences_folded_into_one(self, ab):
        fired = collect(ab, (ab.event('a') & ab.event('b')), context="cumulative")
        ab.raise_event("a", n=1)
        ab.raise_event("a", n=2)
        ab.raise_event("a", n=3)
        ab.raise_event("b")
        assert len(fired) == 1
        assert fired[0].params.values("n") == [1, 2, 3]
        assert len(fired[0].params) == 4

    def test_state_flushed_after_detection(self, ab):
        fired = collect(ab, (ab.event('a') & ab.event('b')), context="cumulative")
        ab.raise_event("a")
        ab.raise_event("b")
        ab.raise_event("b")  # accumulates alone; no a yet
        assert len(fired) == 1
        ab.raise_event("a")
        assert len(fired) == 2
        assert len(fired[1].params) == 2  # only the post-flush pair


class TestOr:
    @pytest.mark.parametrize(
        "context", ["recent", "chronicle", "continuous", "cumulative"]
    )
    def test_either_side_fires_in_every_context(self, ab, context):
        fired = collect(ab, (ab.event('a') | ab.event('b')), context=context)
        ab.raise_event("a")
        ab.raise_event("b")
        ab.raise_event("a")
        assert len(fired) == 3
        assert [names(f)[0] for f in fired] == ["a", "b", "a"]

    def test_occurrence_carries_single_constituent(self, ab):
        fired = collect(ab, (ab.event('a') | ab.event('b')))
        ab.raise_event("a", n=7)
        assert len(fired[0].params) == 1
        assert fired[0].params.value("n") == 7


class TestComposition:
    def test_nested_and_of_or(self, ab):
        ab.explicit_event("c")
        expr = ((ab.event('a') | ab.event('b')) & ab.event('c'))
        fired = collect(ab, expr)
        ab.raise_event("b")
        ab.raise_event("c")
        assert len(fired) == 1
        assert names(fired[0]) == ["b", "c"]

    def test_shared_subexpression_detected_once(self, ab):
        """Two rules over the same expression share one node."""
        expr1 = (ab.event('a') & ab.event('b'))
        expr2 = (ab.event('a') & ab.event('b'))
        assert expr1 is expr2
        fired1 = collect(ab, expr1)
        fired2 = collect(ab, expr2)
        ab.raise_event("a")
        ab.raise_event("b")
        assert len(fired1) == len(fired2) == 1
