"""Bounded detached-rule queue: backpressure policies and drain sync.

Determinism recipe: the runner (or rule action) blocks on a ``gate``
Event and signals ``started`` — the test waits for ``started`` so
exactly one activation is in flight, then overflows the queue with the
workers pinned.
"""

import threading
import time

import pytest

from repro.core.scheduler import DetachedRuleQueue, RuleActivation, eventlog_spill
from repro.eventlog.log import EventLog
from repro.eventlog.replay import replay
from repro.sentinel import Sentinel


class FakeRule:
    def __init__(self, name):
        self.name = name


def activation(name):
    return RuleActivation(rule=FakeRule(name), occurrence=None)


class GatedRunner:
    """Blocks every execution until ``gate`` is set; records rule names."""

    def __init__(self):
        self.gate = threading.Event()
        self.started = threading.Event()
        self.ran = []
        self.lock = threading.Lock()

    def __call__(self, act):
        self.started.set()
        assert self.gate.wait(timeout=30)
        with self.lock:
            self.ran.append(act.rule.name)


def test_validation():
    runner = lambda act: None
    with pytest.raises(ValueError):
        DetachedRuleQueue(runner, capacity=0)
    with pytest.raises(ValueError):
        DetachedRuleQueue(runner, policy="bogus")
    with pytest.raises(ValueError):
        DetachedRuleQueue(runner, workers=0)


def test_drop_oldest_discards_from_the_front():
    runner = GatedRunner()
    queue = DetachedRuleQueue(runner, capacity=2, policy="drop_oldest",
                              workers=1)
    try:
        queue.submit(activation("inflight"))
        assert runner.started.wait(timeout=10)  # worker holds it
        for name in ("old1", "old2", "new1", "new2"):
            queue.submit(activation(name))
        assert queue.stats.dropped == 2
        runner.gate.set()
        assert queue.join(timeout=10)
        assert runner.ran == ["inflight", "new1", "new2"]
        snap = queue.snapshot()
        assert snap["submitted"] == 5
        assert snap["executed"] == 3
        assert snap["dropped"] == 2
        assert snap["depth"] == 0 and snap["active"] == 0
    finally:
        runner.gate.set()
        queue.close(timeout=5)


def test_block_policy_applies_backpressure():
    runner = GatedRunner()
    queue = DetachedRuleQueue(runner, capacity=1, policy="block", workers=1)
    try:
        queue.submit(activation("inflight"))
        assert runner.started.wait(timeout=10)
        queue.submit(activation("queued"))  # fills the queue
        unblocked = threading.Event()

        def producer():
            queue.submit(activation("waited"))
            unblocked.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.1)
        assert not unblocked.is_set()  # producer is being held back
        assert queue.stats.blocked >= 1
        runner.gate.set()
        assert unblocked.wait(timeout=10)
        assert queue.join(timeout=10)
        assert runner.ran == ["inflight", "queued", "waited"]
        assert queue.stats.dropped == 0
    finally:
        runner.gate.set()
        queue.close(timeout=5)


def test_close_wakes_blocked_producer():
    """``close()`` must wake a producer parked in ``_not_full.wait()``
    (policy="block") so it raises instead of hanging forever."""
    runner = GatedRunner()
    queue = DetachedRuleQueue(runner, capacity=1, policy="block", workers=1)
    queue.submit(activation("inflight"))
    assert runner.started.wait(timeout=10)
    queue.submit(activation("queued"))  # fills the queue
    outcome = []

    def producer():
        try:
            queue.submit(activation("blocked"))
            outcome.append("submitted")
        except RuntimeError as exc:
            outcome.append(str(exc))

    producer_thread = threading.Thread(target=producer, daemon=True)
    producer_thread.start()
    deadline = time.monotonic() + 10
    while queue.stats.blocked < 1 and time.monotonic() < deadline:
        time.sleep(0.005)
    assert queue.stats.blocked >= 1  # producer is parked on the full queue

    closer_done = threading.Event()

    def closer():
        queue.close(timeout=None)
        closer_done.set()

    threading.Thread(target=closer, daemon=True).start()
    producer_thread.join(timeout=5)
    assert not producer_thread.is_alive(), (
        "close() left the producer parked in _not_full.wait()"
    )
    assert outcome == ["detached queue is closed"]
    # The backlog accepted before close still drains once the gate opens.
    runner.gate.set()
    assert closer_done.wait(timeout=10)
    assert runner.ran == ["inflight", "queued"]


def test_spill_defaults_to_the_spill_log():
    runner = GatedRunner()
    queue = DetachedRuleQueue(runner, capacity=1, policy="spill", workers=1)
    try:
        queue.submit(activation("inflight"))
        assert runner.started.wait(timeout=10)
        for name in ("victim", "survivor"):
            queue.submit(activation(name))
        assert queue.stats.spilled == 1
        assert [act.rule.name for act in queue.spill_log] == ["victim"]
        runner.gate.set()
        assert queue.join(timeout=10)
        assert runner.ran == ["inflight", "survivor"]
    finally:
        runner.gate.set()
        queue.close(timeout=5)


def test_worker_errors_are_recorded_not_fatal():
    def runner(act):
        if act.rule.name == "bad":
            raise RuntimeError("boom")

    queue = DetachedRuleQueue(runner, capacity=8, workers=1)
    try:
        queue.submit(activation("bad"))
        queue.submit(activation("good"))
        assert queue.join(timeout=10)
        assert queue.stats.errors == 1
        assert queue.stats.executed == 2
        assert [name for name, __ in queue.errors] == ["bad"]
    finally:
        queue.close(timeout=5)


# =========================================================================
# Facade integration
# =========================================================================

def test_wait_detached_timeout_reports_backlog():
    gate = threading.Event()
    started = threading.Event()

    def slow(occ):
        started.set()
        assert gate.wait(timeout=30)

    system = Sentinel(name="app", detached_workers=1)
    try:
        system.explicit_event("ev")
        system.rule("slow", "ev", coupling="detached", action=slow)
        system.raise_event("ev")
        assert started.wait(timeout=10)
        with pytest.raises(TimeoutError) as excinfo:
            system.wait_detached(timeout=0.05)
        message = str(excinfo.value)
        assert "pending" in message
        # the diagnostic carries the queue snapshot: depth, in-flight
        # count, and the configured capacity/overflow policy
        assert "queued=" in message
        assert "active=" in message
        assert "capacity=" in message
        assert "policy=" in message
        gate.set()
        system.wait_detached(timeout=10)  # drains cleanly now
        assert system.detached.backlog() == 0
    finally:
        gate.set()
        system.close()


def test_facade_overflow_counts_in_metrics():
    gate = threading.Event()
    started = threading.Event()

    def slow(occ):
        started.set()
        assert gate.wait(timeout=30)

    system = Sentinel(
        name="app", detached_capacity=1, detached_policy="drop_oldest",
        detached_workers=1,
    )
    try:
        system.explicit_event("ev")
        system.rule("slow", "ev", coupling="detached", action=slow)
        system.raise_event("ev")
        assert started.wait(timeout=10)
        for __ in range(3):  # 1 fills the queue, 2 overflow
            system.raise_event("ev")
        assert system.detached.stats.dropped == 2
        registry = system.metrics.registry
        assert registry.value("detached.overflows") == 2
        assert registry.value("detached.overflows.drop_oldest") == 2
        gate.set()
        system.wait_detached(timeout=10)
    finally:
        gate.set()
        system.close()


def test_spilled_activations_replay_from_the_event_log():
    """A spilled trigger is not lost: its primitive constituents land in
    an event log, and replaying that log re-fires the rule."""
    gate = threading.Event()
    started = threading.Event()
    spill = EventLog()
    executed = []

    def slow(occ):
        started.set()
        assert gate.wait(timeout=30)
        executed.append(occ.params.values("n"))

    system = Sentinel(
        name="app", detached_capacity=1, detached_policy="spill",
        detached_workers=1, detached_spill=eventlog_spill(spill),
    )
    try:
        system.explicit_event("ev")
        system.rule("slow", "ev", coupling="detached", action=slow)
        system.raise_event("ev", n=0)
        assert started.wait(timeout=10)
        system.raise_event("ev", n=1)  # fills the queue
        system.raise_event("ev", n=2)  # spills n=1
        assert system.detached.stats.spilled == 1
        assert len(spill) == 1
        gate.set()
        system.wait_detached(timeout=10)
        assert sorted(executed) == [[0], [2]]
    finally:
        gate.set()
        system.close()

    # Batch-replay the spill log on a fresh system: the victim re-fires.
    replayed = []
    fresh = Sentinel(name="replay")
    try:
        fresh.explicit_event("ev")
        fresh.rule("slow", "ev",
                   action=lambda occ: replayed.append(occ.params.values("n")))
        report = replay(spill, fresh.detector, mode="execute")
        assert report.events_replayed == 1
        assert replayed == [[1]]
    finally:
        fresh.close()


def test_queue_wait_time_surfaces_in_snapshot_and_health():
    """Satellite observability: how long activations sat in the queue
    is part of the queue snapshot and therefore of /health."""
    system = Sentinel(name="wait-metrics")
    try:
        system.explicit_event("ev")
        system.rule("r", "ev", coupling="detached", action=lambda occ: None)
        for i in range(3):
            system.raise_event("ev", n=i)
        system.wait_detached(timeout=10)
        snap = system.detached.snapshot()
        assert snap["wait_count"] == 3
        assert snap["wait_ms_avg"] >= 0.0
        assert snap["wait_ms_max"] >= snap["wait_ms_avg"]
        health = system.health()
        assert health["detached_queue"]["wait_count"] == 3
        assert "wait_ms_max" in health["detached_queue"]
        # The wait also lands in the detached_wait latency stage.
        assert health["latency"]["detached_wait"]["count"] == 3
    finally:
        system.close()


def test_wait_stats_zero_before_any_execution():
    system = Sentinel(name="wait-zero")
    try:
        snap = system.detached.snapshot()
        assert snap["wait_count"] == 0
        assert snap["wait_ms_avg"] == 0.0
        assert snap["wait_ms_max"] == 0.0
    finally:
        system.close()
