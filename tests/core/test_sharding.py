"""Sharded runtime: assignment, parity with the single-shard detector.

The acceptance oracle is the batch replayer: a stored event log run
through a 1-shard detector and an N-shard detector must produce the
same rule triggers in the same order and the same per-node detection
counts in every parameter context.
"""

import pytest

from repro.core.contexts import ParameterContext
from repro.core.detector import LocalEventDetector
from repro.core.sharding import ShardMap, ShardedRuntime
from repro.eventlog.log import EventLog, LoggedEvent
from repro.eventlog.replay import replay

CONTEXTS = ("recent", "chronicle", "continuous", "cumulative")


def build_system(shards: int, dispatch: str = "interpreted"):
    """A mixed graph (every binary operator plus NOT/A) with one rule
    per (expression, context) pair."""
    det = LocalEventDetector(shards=shards, dispatch=dispatch)
    for name in "abcdef":
        det.explicit_event(name)
    e = det.event
    exprs = {
        "and_ab": (e("a") & e("b")),
        "or_cd": (e("c") | e("d")),
        "seq_ef": (e("e") >> e("f")),
        "nested": ((e("a") & e("b")) >> (e("c") | e("d"))),
        "not_acb": det.not_("a", "c", "b"),
        "aper_abc": det.aperiodic("a", "b", "c"),
    }
    for ctx in CONTEXTS:
        for label, node in exprs.items():
            det.rule(f"r_{label}:{ctx}", node, context=ctx,
                     action=lambda occ: None)
    return det


def make_log() -> EventLog:
    log = EventLog()
    pattern = "abacbdcefabfdecbafcdeb" * 3
    for i, name in enumerate(pattern):
        log.append(LoggedEvent(
            event_name=name, at=float(i), class_name="$EXPLICIT",
            instance=None, method_name=None, modifier=None,
            arguments=[["n", i]], txn_id=None,
        ))
    return log


def detections_by_node(det) -> dict:
    return {
        node.display_name: {
            ctx.value: count
            for ctx, count in sorted(
                node.detections_by_context.items(), key=lambda kv: kv[0].value
            )
        }
        for node in det.graph._nodes
    }


# =========================================================================
# Replay parity: the headline acceptance criterion
# =========================================================================

@pytest.mark.parametrize("dispatch", ["interpreted", "compiled"])
@pytest.mark.parametrize("shards", [2, 4, 7])
def test_replay_parity_all_contexts(shards, dispatch):
    """Same log, same graph: N shards detect exactly what 1 shard does,
    in every parameter context, triggering rules in the same order —
    under both dispatch engines."""
    log = make_log()
    single = build_system(1, dispatch=dispatch)
    sharded = build_system(shards, dispatch=dispatch)
    baseline = replay(log, single, mode="collect")
    candidate = replay(log, sharded, mode="collect")
    assert candidate.events_replayed == baseline.events_replayed
    assert candidate.triggered_rules() == baseline.triggered_rules()
    assert detections_by_node(sharded) == detections_by_node(single)


@pytest.mark.parametrize("shards", [1, 4])
def test_replay_parity_across_dispatch_modes(shards):
    """The headline oracle for the compiled fast path: at the same
    shard count, compiled dispatch replays the log bit-for-bit like the
    interpreted engine — same trigger sequence, same per-node counts in
    all four parameter contexts."""
    log = make_log()
    interpreted = build_system(shards, dispatch="interpreted")
    compiled = build_system(shards, dispatch="compiled")
    baseline = replay(log, interpreted, mode="collect")
    candidate = replay(log, compiled, mode="collect")
    assert candidate.events_replayed == baseline.events_replayed
    assert candidate.triggered_rules() == baseline.triggered_rules()
    assert detections_by_node(compiled) == detections_by_node(interpreted)


def test_replay_parity_execute_mode():
    """Rules actually executing (not just collected) agree too."""
    log = make_log()
    results = {}
    for shards in (1, 4):
        det = LocalEventDetector(shards=shards)
        for name in "abcdef":
            det.explicit_event(name)
        fired = []
        det.rule(
            "r", ((det.event("a") & det.event("b")) >> det.event("c")),
            context="chronicle",
            action=lambda occ: fired.append(occ.params.values("n")),
        )
        replay(log, det, mode="execute")
        results[shards] = fired
    assert results[4] == results[1]
    assert results[1]  # the pattern does fire the rule


def test_sharded_occurrence_accounting():
    log = make_log()
    det = build_system(4)
    report = replay(log, det, mode="collect")
    rows = det.runtime.snapshot()
    assert sum(r["occurrences"] for r in rows) == report.events_replayed
    # the graph spreads over more than one shard
    assert sum(1 for r in rows if r["occurrences"]) > 1


# =========================================================================
# Assignment
# =========================================================================

def test_shard_map_is_deterministic():
    m1, m2 = ShardMap(8), ShardMap(8)
    for key in ("a", "STOCK", "end(set_price)", "x" * 50):
        assert m1.shard_for_key(key) == m2.shard_for_key(key)
        assert 0 <= m1.shard_for_key(key) < 8


def test_single_shard_map_pins_everything_to_zero():
    det = build_system(1)
    assert {node.shard for node in det.graph._nodes} == {0}


def test_composite_owned_by_min_child_shard():
    det = LocalEventDetector(shards=4)
    a, b = det.explicit_event("a"), det.explicit_event("b")
    both = (det.event("a") & det.event("b"))
    assert both.shard == min(a.shard, b.shard)


def test_same_class_events_colocate():
    det = LocalEventDetector(shards=4)
    begin = det.primitive_event("s_begin", "STOCK", "begin", "set_price")
    end = det.primitive_event("s_end", "STOCK", "end", "set_price")
    assert begin.shard == end.shard


def test_runtime_rejects_bad_shard_count():
    det = LocalEventDetector()
    with pytest.raises(ValueError):
        ShardedRuntime(det, 0)


# =========================================================================
# Runtime plumbing
# =========================================================================

def test_dormant_runtime_keeps_inline_propagation():
    det = LocalEventDetector(shards=1)
    assert det.runtime.active is False
    assert det.graph.runtime is None  # signal() recurses inline


def test_cross_shard_edges_counted():
    det = LocalEventDetector(shards=4)
    for name in "abcdef":
        det.explicit_event(name)
    fired = []
    det.rule("r", (det.event("a") & det.event("e")),
             action=fired.append, context="chronicle")
    det.raise_event("a")
    det.raise_event("e")
    assert len(fired) == 1
    rows = det.runtime.snapshot()
    crossings = sum(r["cross_shard_out"] for r in rows)
    assert crossings == sum(r["cross_shard_in"] for r in rows)
    # a and e live on different shards for this hash; if the hash ever
    # co-locates them the AND is same-shard and nothing crosses.
    a, e = det.graph.get("a"), det.graph.get("e")
    if a.shard != e.shard:
        assert crossings >= 1
        assert sum(r["forwarded"] for r in rows) == crossings


def test_flush_under_all_locks_sharded():
    det = build_system(4)
    det.raise_event("a")  # half an AND pending
    det.flush()
    det.raise_event("b")
    node = (det.event("a") & det.event("b"))
    assert node.detections_by_context.get(ParameterContext.RECENT, 0) == 0


def test_nested_notify_from_rule_action_sharded():
    """An action raising further events re-enters the driver cleanly
    (depth-first nested frames, as in the seed)."""
    det = LocalEventDetector(shards=4)
    for name in ("a", "b", "done"):
        det.explicit_event(name)
    order = []

    def chain(occ):
        order.append("outer")
        det.raise_event("done")

    det.rule("outer", (det.event("a") & det.event("b")), action=chain,
             context="chronicle")
    det.rule("inner", "done", action=lambda occ: order.append("inner"))
    det.raise_event("a")
    det.raise_event("b")
    assert order == ["outer", "inner"]
