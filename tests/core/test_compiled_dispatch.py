"""The compiled dispatch fast path: ``dispatch="compiled"``.

The compiled engine flattens the event graph into per-route subscriber
arrays at first use and rebuilds them when the graph's topology stamp
moves. Everything observable — returned occurrences, trigger order,
stats, error behavior, telemetry traces — must match the interpreted
engine bit-for-bit; these tests pin that contract beyond the replay
oracle in ``test_sharding.py``.
"""

import time

import pytest

from repro import Sentinel, TraceLogProcessor
from repro.core.contexts import ParameterContext
from repro.core.detector import LocalEventDetector
from repro.errors import RuleExecutionError


CONTEXTS = ("recent", "chronicle", "continuous", "cumulative")
DISPATCHES = ("interpreted", "compiled")


class Account:
    oid = 77


@pytest.fixture(params=DISPATCHES)
def det(request):
    detector = LocalEventDetector(dispatch=request.param)
    yield detector
    detector.shutdown()


# =========================================================================
# The dispatch= knob
# =========================================================================

def test_dispatch_defaults_to_interpreted(monkeypatch):
    monkeypatch.delenv("REPRO_DISPATCH", raising=False)
    det = LocalEventDetector()
    try:
        assert det.dispatch == "interpreted"
        assert det.engine is None
    finally:
        det.shutdown()


def test_dispatch_env_override(monkeypatch):
    """REPRO_DISPATCH selects the engine for call sites that don't
    pass dispatch= (whole-suite CI legs)."""
    monkeypatch.setenv("REPRO_DISPATCH", "compiled")
    det = LocalEventDetector()
    try:
        assert det.dispatch == "compiled"
        assert det.engine is not None
    finally:
        det.shutdown()


def test_explicit_dispatch_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_DISPATCH", "compiled")
    det = LocalEventDetector(dispatch="interpreted")
    try:
        assert det.dispatch == "interpreted"
    finally:
        det.shutdown()


def test_unknown_dispatch_rejected():
    with pytest.raises(ValueError, match="dispatch"):
        LocalEventDetector(dispatch="jit")


def test_sentinel_facade_threads_dispatch():
    system = Sentinel(name="fast", dispatch="compiled")
    try:
        assert system.dispatch == "compiled"
        assert system.detector.engine is not None
    finally:
        system.close()


def test_interpreted_path_carries_no_engine_overhead():
    """dispatch="interpreted" must not even consult the compiled
    engine: notify/raise_event stay the plain class methods."""
    det = LocalEventDetector(dispatch="interpreted")
    try:
        assert "notify" not in det.__dict__
        assert "raise_event" not in det.__dict__
    finally:
        det.shutdown()


# =========================================================================
# Cross-mode parity beyond the replay oracle
# =========================================================================

def _pump(det):
    """A workload touching method events, instance filters, explicit
    events, composites, and every parameter context."""
    fired = []
    node = det.primitive_event("deposit", "Account", "end", "deposit")
    det.primitive_event("other", "Other", "end", "op")
    det.explicit_event("alarm")
    combo = det.define("combo", (det.event("deposit") >> det.event("alarm")))
    for ctx in CONTEXTS:
        det.rule(f"r:{ctx}", node, context=ctx,
                 action=lambda occ, c=ctx: fired.append((c, occ.at)))
    det.rule("combo", combo,
             action=lambda occ: fired.append(("combo", occ.start, occ.end)))
    acct = Account()
    occurrences = []
    for i in range(5):
        occurrences += det.notify(acct, "Account", "deposit", "end",
                                  {"amount": 10 * i})
        if i % 2 == 0:
            occurrences.append(det.raise_event("alarm", i=i))
    det.notify(None, "Unwatched", "op", "end", {})  # no route
    return fired, occurrences, det


def test_notify_parity_across_modes():
    results = {}
    for dispatch in DISPATCHES:
        det = LocalEventDetector(dispatch=dispatch)
        try:
            fired, occurrences, det = _pump(det)
            results[dispatch] = {
                "fired": fired,
                "events": [
                    (o.event_name, o.at, o.class_name, o.instance,
                     o.method_name, o.modifier, o.arguments, o.txn_id)
                    for o in occurrences
                ],
                "notifications": det.stats.notifications,
                "triggers": det.stats.triggers,
                "detections": det.graph.stats.detections,
                "propagations": det.graph.stats.propagations,
                "by_context": {
                    node.display_name: dict(node.detections_by_context)
                    for node in det.graph._nodes
                },
            }
        finally:
            det.shutdown()
    assert results["compiled"] == results["interpreted"]


def test_instance_filter_parity(det):
    target, other = Account(), Account()
    node = det.primitive_event("dep", target, "end", "deposit")
    hits = []
    det.rule("r", node, action=lambda occ: hits.append(occ.instance))
    det.notify(other, "Account", "deposit", "end", {})
    det.notify(target, "Account", "deposit", "end", {})
    assert hits == [Account.oid]


def test_suppression_parity(det):
    det.explicit_event("probe")
    seen = []

    def nosy(occ):
        # notifications from inside a condition are suppressed
        assert det.notify(None, "Account", "deposit", "end", {}) == []
        return True

    det.primitive_event("dep", "Account", "end", "deposit")
    det.rule("r", "probe", condition=nosy, action=seen.append)
    det.raise_event("probe")
    assert len(seen) == 1
    assert det.stats.suppressed == 1


def test_unknown_modifier_parity(det):
    with pytest.raises(ValueError):
        det.notify(None, "Account", "deposit", "sideways", {})
    assert det.stats.notifications == 1  # counted before the parse


def test_raise_event_unknown_name_parity(det):
    from repro.errors import UnknownEvent

    with pytest.raises(UnknownEvent):
        det.raise_event("ghost")


def test_rule_error_policy_parity():
    results = {}
    for dispatch in DISPATCHES:
        det = LocalEventDetector(dispatch=dispatch, error_policy="abort_rule")
        try:
            det.explicit_event("e")

            def boom(occ):
                raise ValueError("boom")

            det.rule("bad", "e", action=boom)
            det.raise_event("e")
            results[dispatch] = (
                det.scheduler.stats.failures,
                [str(err) for err in det.scheduler.errors],
            )
        finally:
            det.shutdown()
    assert results["compiled"] == results["interpreted"]
    assert results["compiled"][0] == 1


def test_rule_error_raise_policy_compiled():
    det = LocalEventDetector(dispatch="compiled", error_policy="raise")
    try:
        det.explicit_event("e")

        def boom(occ):
            raise ValueError("boom")

        det.rule("bad", "e", action=boom)
        with pytest.raises(RuleExecutionError, match="action"):
            det.raise_event("e")
    finally:
        det.shutdown()


def test_nested_cascade_order_parity():
    """Actions raising further events nest depth-first identically."""
    results = {}
    for dispatch in DISPATCHES:
        det = LocalEventDetector(dispatch=dispatch)
        try:
            for name in ("a", "b", "done"):
                det.explicit_event(name)
            order = []

            def chain(occ):
                order.append("outer")
                det.raise_event("done")

            det.rule("outer", (det.event("a") & det.event("b")),
                     context="chronicle", action=chain)
            det.rule("inner", "done", action=lambda occ: order.append("inner"))
            det.raise_event("a")
            det.raise_event("b")
            results[dispatch] = order
        finally:
            det.shutdown()
    assert results["compiled"] == results["interpreted"] == ["outer", "inner"]


def test_priority_order_parity(det):
    det.explicit_event("e")
    order = []
    det.rule("low", "e", priority=1, action=lambda occ: order.append("low"))
    det.rule("high", "e", priority=9, action=lambda occ: order.append("high"))
    det.raise_event("e")
    assert order == ["high", "low"]


# =========================================================================
# Plan invalidation: topology edits take effect immediately
# =========================================================================

def test_rules_added_after_traffic_fire():
    det = LocalEventDetector(dispatch="compiled")
    try:
        det.explicit_event("e")
        det.raise_event("e")  # plan built with no subscribers
        hits = []
        det.rule("late", "e", action=hits.append)
        det.raise_event("e")
        assert len(hits) == 1
    finally:
        det.shutdown()


def test_disabled_rule_stops_firing():
    det = LocalEventDetector(dispatch="compiled")
    try:
        det.explicit_event("e")
        hits = []
        det.rule("r", "e", action=hits.append)
        det.raise_event("e")
        det.rules.disable("r")
        det.raise_event("e")
        det.rules.enable("r")
        det.raise_event("e")
        assert len(hits) == 2
    finally:
        det.shutdown()


def test_primitive_registered_after_traffic_routes():
    det = LocalEventDetector(dispatch="compiled")
    try:
        det.explicit_event("e")
        det.raise_event("e")
        node = det.primitive_event("dep", "Account", "end", "deposit")
        hits = []
        det.rule("r", node, action=hits.append)
        assert det.notify(Account(), "Account", "deposit", "end", {})
        assert len(hits) == 1
    finally:
        det.shutdown()


def test_context_change_rebuilds_fan():
    det = LocalEventDetector(dispatch="compiled")
    try:
        node = det.explicit_event("e")
        det.raise_event("e")
        hits = []
        det.rule("r", "e", context="cumulative", action=hits.append)
        det.raise_event("e")
        assert node.detections_by_context.get(
            ParameterContext.CUMULATIVE, 0) == 1
        assert len(hits) == 1
    finally:
        det.shutdown()


# =========================================================================
# Delegated paths keep full semantics
# =========================================================================

def test_detached_coupling_in_compiled_mode():
    system = Sentinel(name="fast-detached", dispatch="compiled")
    try:
        system.explicit_event("e")
        hits = []
        system.rule("d", "e", coupling="detached", action=hits.append)
        system.raise_event("e")
        system.wait_detached(timeout=10)
        assert len(hits) == 1
    finally:
        system.close()


def test_collect_mode_in_compiled_mode():
    from repro.eventlog.log import EventLog, LoggedEvent
    from repro.eventlog.replay import replay

    log = EventLog()
    log.append(LoggedEvent(
        event_name="e", at=0.0, class_name="$EXPLICIT", instance=None,
        method_name=None, modifier=None, arguments=[], txn_id=None,
    ))
    det = LocalEventDetector(dispatch="compiled")
    try:
        det.explicit_event("e")
        det.rule("r", "e", action=lambda occ: None)
        report = replay(log, det, mode="collect")
        assert report.triggered_rules() == ["r"]
    finally:
        det.shutdown()


def test_telemetry_traces_identically_in_compiled_mode():
    """With telemetry on, compiled mode hands the event to the
    interpreted path so every span and stage stamp survives."""
    shapes = {}
    for dispatch in DISPATCHES:
        system = Sentinel(name=f"traced-{dispatch}", dispatch=dispatch)
        try:
            trace = system.telemetry.attach(TraceLogProcessor())
            system.explicit_event("e")
            system.rule("r", "e", action=lambda occ: None)
            trace.clear()
            system.raise_event("e")
            shapes[dispatch] = [type(e).__name__ for e in trace.events()]
        finally:
            system.close()
    assert shapes["compiled"] == shapes["interpreted"]
    assert shapes["compiled"]  # tracing actually produced spans


def test_no_telemetry_emission_with_hub_idle():
    """Zero-overhead guard, correctness half: with no processor
    attached neither engine touches the telemetry hub."""
    for dispatch in DISPATCHES:
        det = LocalEventDetector(dispatch=dispatch)
        try:
            det.explicit_event("e")
            det.rule("r", "e", action=lambda occ: None)
            det.raise_event("e")
            assert det.telemetry.active is False
            trace = det.telemetry.attach(TraceLogProcessor())
            det.telemetry.detach(trace)
            assert trace.events() == []
        finally:
            det.shutdown()


def test_compiled_is_not_slower_than_interpreted():
    """Zero-overhead guard, timing half: the fast path must at minimum
    not lose to the interpreted engine (generous 1.5x band for noisy
    shared runners)."""

    def clock(dispatch, events=4000):
        det = LocalEventDetector(dispatch=dispatch)
        try:
            det.primitive_event("dep", "Account", "end", "deposit")
            det.rule("r", det.event("dep"), action=lambda occ: None)
            acct = Account()
            for __ in range(events // 4):  # warm caches and the plan
                det.notify(acct, "Account", "deposit", "end", {})
            start = time.perf_counter()
            for __ in range(events):
                det.notify(acct, "Account", "deposit", "end", {})
            return time.perf_counter() - start
        finally:
            det.shutdown()

    interpreted = min(clock("interpreted") for __ in range(3))
    compiled = min(clock("compiled") for __ in range(3))
    assert compiled < interpreted * 1.5
